#!/usr/bin/env python3
"""Dominating Set over a graph edge stream (the m = n special case).

Khanna–Konrad [19] studied Dominating Set in graph streams; it is
edge-arrival Set Cover where vertex v's set is its closed
neighbourhood.  This example builds a scale-free network, streams its
incidence edges in random order, and compares the KK-algorithm against
offline greedy — the scenario that motivated the paper's model.

Run:  python examples/dominating_set_stream.py
"""

from __future__ import annotations

import math

from repro import (
    KKAlgorithm,
    RandomOrder,
    RandomOrderAlgorithm,
    ReplayableStream,
    greedy_cover,
)
from repro.analysis.tables import render_kv
from repro.generators.dominating_set import (
    preferential_attachment_dominating_set,
    star_forest_dominating_set,
)


def solve(instance, title: str) -> None:
    print(f"--- {title} ---")
    stream = ReplayableStream(instance, RandomOrder(seed=7))

    kk = KKAlgorithm(seed=8).run(stream.fresh())
    kk.verify(instance)
    offline = greedy_cover(instance)

    print(
        render_kv(
            [
                ("graph (n = m)", instance.n),
                ("stream edges", instance.num_edges),
                ("KK dominating set", kk.cover_size),
                ("offline greedy", offline.cover_size),
                ("KK peak words", kk.space.peak_words),
                (
                    "input buffered instead",
                    instance.num_edges,
                ),
            ]
        )
    )
    print()


def main() -> None:
    # A hub-dominated scale-free network: small dominating sets exist.
    solve(
        preferential_attachment_dominating_set(800, attach=3, seed=1),
        "scale-free network (hubs dominate)",
    )

    # Disjoint stars: OPT is exactly the number of star centres, so the
    # approximation is measured against a known optimum.
    stars = star_forest_dominating_set(12, leaves_per_star=30, seed=2)
    solve(stars, "star forest (known OPT = 12 centres)")

    stream = ReplayableStream(stars, RandomOrder(seed=9))
    result = RandomOrderAlgorithm(seed=10).run(stream.fresh())
    result.verify(stars)
    ratio = result.cover_size / 12
    print(
        f"Algorithm 1 on the star forest: {result.cover_size} sets "
        f"({ratio:.1f}x OPT; Õ(√n) bound at √n = "
        f"{math.sqrt(stars.n):.0f})"
    )


if __name__ == "__main__":
    main()
