#!/usr/bin/env python3
"""The paper's headline separation: random vs adversarial arrival order.

On an m = Θ(n²) instance (Theorem 3's regime) this example shows:

1. Algorithm 1 matches the KK-algorithm's cover quality with a
   fraction of the space — on *random-order* streams;
2. the same Algorithm 1 run on an adversarially ordered stream carries
   no guarantee (Theorem 2: no algorithm can keep Õ(√n)-quality in o(m)
   space adversarially) — its measured cover is shown for context;
3. the KK/Alg1 space gap widens as n grows — the √n separation.

Run:  python examples/random_vs_adversarial.py
"""

from __future__ import annotations

import math

from repro import (
    KKAlgorithm,
    RandomOrder,
    RoundRobinInterleaveOrder,
    RandomOrderAlgorithm,
    ReplayableStream,
    quadratic_family,
)
from repro.analysis.tables import render_table


def main() -> None:
    rows = []
    for n in (64, 144, 256):
        instance = quadratic_family(n, density=0.5, seed=n)
        random_stream = ReplayableStream(instance, RandomOrder(seed=n))
        adversarial_stream = ReplayableStream(
            instance, RoundRobinInterleaveOrder(seed=n)
        )

        alg1_random = RandomOrderAlgorithm(seed=n).run(random_stream.fresh())
        alg1_adversarial = RandomOrderAlgorithm(seed=n).run(
            adversarial_stream.fresh()
        )
        kk = KKAlgorithm(seed=n).run(random_stream.fresh())
        for result in (alg1_random, alg1_adversarial, kk):
            result.verify(instance)

        rows.append(
            [
                n,
                instance.m,
                alg1_random.cover_size,
                alg1_adversarial.cover_size,
                kk.cover_size,
                alg1_random.space.peak_words,
                kk.space.peak_words,
                f"{kk.space.peak_words / alg1_random.space.peak_words:.1f}x",
                f"{math.sqrt(n):.0f}",
            ]
        )

    print(
        render_table(
            [
                "n",
                "m",
                "Alg1 cover (rand)",
                "Alg1 cover (adv)",
                "KK cover",
                "Alg1 words",
                "KK words",
                "space gap",
                "√n",
            ],
            rows,
            title="Theorem 3 vs Theorem 1: same quality, ~√n less space "
            "(random order only)\n",
        )
    )
    print(
        "\nThe 'space gap' column tracks √n — the separation Theorems 2+3 "
        "prove is impossible to achieve in adversarial order."
    )


if __name__ == "__main__":
    main()
