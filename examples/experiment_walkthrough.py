#!/usr/bin/env python3
"""Building your own experiment with the harness API.

The registered experiments (``repro-setcover list``) cover the paper's
claims; this walkthrough shows the pieces they are built from, so you
can measure your own questions:

1. describe a workload (`repro.analysis.stats`);
2. compare algorithms on identical streams (`ExperimentRunner`);
3. sweep a parameter with replication and fit a scaling exponent
   (`Sweep` + `fit_power_law`);
4. render the results (`render_table`, `render_scatter`).

The question answered here: *how does Algorithm 2's total state scale
with α on a Zipf workload, and where does it cross the KK-algorithm?*

Run:  python examples/experiment_walkthrough.py
"""

from __future__ import annotations

import math

from repro import KKAlgorithm, LowSpaceAdversarialAlgorithm, RandomOrder
from repro.analysis import (
    ExperimentRunner,
    Sweep,
    describe_instance,
    render_kv,
    render_table,
)
from repro.analysis.tables import render_scatter
from repro.generators.zipf import zipf_instance
from repro.streaming.stream import ReplayableStream


def main() -> None:
    n, m = 300, 3000
    instance = zipf_instance(n, m, seed=1)

    # 1. Know your workload.
    stats = describe_instance(instance, compute_opt=False)
    print(render_kv(stats.as_pairs(), title="workload:"))
    print()

    # 2. Head-to-head on identical streams.
    runner = ExperimentRunner(
        algorithms={
            "kk": lambda s: KKAlgorithm(seed=s),
            "alg2@2√n": lambda s: LowSpaceAdversarialAlgorithm(
                alpha=2 * math.sqrt(n), seed=s
            ),
        },
        seed=2,
    )
    rows = runner.compare(instance, "random", replications=2)
    print(
        render_table(
            ["algorithm", "cover", "peak words", "valid"],
            [
                [r.algorithm, r.cover_size, r.peak_words, r.valid]
                for r in rows
            ],
            title="head-to-head (same streams):",
        )
    )
    print()

    # 3. Sweep alpha, fit the space exponent.
    def measure(alpha: float, seed: int):
        stream = ReplayableStream(instance, RandomOrder(seed=seed))
        result = LowSpaceAdversarialAlgorithm(alpha=alpha, seed=seed).run(
            stream.fresh()
        )
        return {
            "level_words": max(1.0, result.diagnostics["level_map_peak"]),
            "cover": float(result.cover_size),
        }

    sweep = Sweep(
        "alpha",
        values=[20, 40, 80, 160],
        measure=measure,
        replications=2,
        seed=3,
    ).run()
    print(
        render_table(
            ["alpha", "level-map words", "cover"],
            sweep.rows(["level_words", "cover"]),
            title="alpha sweep:",
        )
    )
    print(
        f"\nfitted space exponent: {sweep.fit('level_words'):.2f} "
        "(the table1-row3 experiment measures ≈ -2 on planted workloads; "
        "heavy-tailed Zipf covers saturate early and flatten the curve — "
        "exactly the kind of workload effect this harness lets you see)\n"
    )

    # 4. Chart it.
    print(
        render_scatter(
            [
                (f"a{int(a)}", a, w)
                for a, w in zip(
                    sweep.parameters(), sweep.series("level_words")
                )
            ],
            x_label="alpha",
            y_label="level words",
            title="level-map state vs alpha (log-log):",
            height=10,
        )
    )


if __name__ == "__main__":
    main()
