#!/usr/bin/env python3
"""Theorem 2's lower-bound machinery, run end to end.

Walks through the whole construction:

1. sample a Lemma-1 family and verify its intersection property;
2. encode a t-party Set-Disjointness instance as edge streams (the
   same set id accumulates partial sets across parties!);
3. drive a *real* streaming algorithm (KK) through the one-way
   protocol, measuring the forwarded state at each party boundary;
4. decide disjoint vs uniquely-intersecting from the forked runs'
   cover sizes — the decision works because the algorithm approximates
   well, which is exactly what costs it space.

Run:  python examples/lower_bound_demo.py
"""

from __future__ import annotations

import math

from repro import KKAlgorithm
from repro.analysis.tables import render_kv
from repro.lowerbound import (
    DisjointnessReduction,
    build_family,
    disjoint_instance,
    intersecting_instance,
)
from repro.lowerbound.reduction import calibrate_threshold

N, M, T, SET_SIZE = 196, 24, 4, 3


def main() -> None:
    # 1. The Lemma-1 family.
    family = build_family(N, M, T, seed=1, intersection_slack=1.5)
    print(
        render_kv(
            [
                ("universe n", family.n),
                ("family size m", family.m),
                ("parties t", family.t),
                ("|T_i| = sqrt(n*t)", family.set_size),
                ("|T_i^r| = sqrt(n/t)", family.part_size),
                ("mean |T_i^r ∩ T_j| (Lemma 1: ≈1)", round(
                    family.mean_partial_intersection(), 2
                )),
                ("max |T_i^r ∩ T_j| (Lemma 1: O(log n))",
                 family.max_partial_intersection()),
                ("ln n", round(math.log(N), 2)),
            ],
            title="1. Lemma-1 family:",
        )
    )

    # Calibrate the decision threshold on reference *disjoint* inputs
    # (public information — it depends only on the family).  The paper
    # uses OPT₀ − 1 for an ideal α-approximator; a concrete algorithm's
    # constant is empirical.
    threshold = calibrate_threshold(
        family,
        algorithm_factory=lambda seed: KKAlgorithm(seed=seed),
        set_size=SET_SIZE,
        seed=10,
    )
    print(f"\n2. calibrated decision threshold: {threshold:.1f}")
    reduction = DisjointnessReduction(family, threshold=threshold)

    # 3 + 4: several trials per promise case.  Theorem 5 tolerates
    # protocol error up to 1/4, so occasional misclassification at this
    # tiny scale is within the theory's own budget; amplification=3
    # (the paper's parallel-copies remark) keeps it rare.
    correct = 0
    trials = 0
    last_outcome = None
    for trial_seed in (2, 3, 4):
        for label, instance in (
            (
                "intersecting",
                intersecting_instance(M, T, SET_SIZE, seed=trial_seed),
            ),
            ("disjoint", disjoint_instance(M, T, SET_SIZE, seed=trial_seed)),
        ):
            instance.check_promise()
            run_indices = reduction.default_run_indices(
                instance, sample=6, seed=trial_seed
            )
            outcome = reduction.execute(
                instance,
                algorithm_factory=lambda seed: KKAlgorithm(seed=seed),
                seed=trial_seed,
                run_indices=run_indices,
                amplification=3,
            )
            trials += 1
            correct += outcome.correct
            last_outcome = outcome
            mark = "ok " if outcome.correct else "ERR"
            print(
                f"   [{mark}] truth={label:12s} decision="
                f"{outcome.decision:12s} best cover="
                f"{outcome.best_run().cover_size}"
            )

    assert last_outcome is not None
    print()
    print(
        render_kv(
            [
                ("decision accuracy", f"{correct}/{trials}"),
                ("Theorem 5 error budget", "1/4"),
                (
                    "forwarded messages (words)",
                    " ".join(str(w) for w in last_outcome.message_words),
                ),
                ("max message = algorithm state", last_outcome.max_message_words),
            ],
            title="3. protocol summary:",
        )
    )
    print(
        "\nTheorem 2: because the decision works (within the error "
        "budget), the longest forwarded message — the algorithm's live "
        "state — must be Ω̃(m/t²) words; with t = Θ(α²·log²n/n) that is "
        "the Ω̃(m·n²/α⁴) space bound."
    )


if __name__ == "__main__":
    main()
