#!/usr/bin/env python3
"""Space as a first-class, *enforced* resource.

The paper's theorems are statements about words of memory; this library
meters them exactly and can enforce hard budgets.  This example:

1. dials the element-sampling algorithm's α knob and watches the
   measured space trade against cover quality (Table 1 row 1's
   Θ̃(m·n/α) ↔ α·OPT tradeoff);
2. attaches a hard :class:`SpaceBudget` to the KK-algorithm sized from
   Theorem 1's Õ(m) bound and shows it passes — then shrinks the budget
   below Θ(m) and shows the run is *rejected*, which is Theorem 2's
   lower bound experienced as an exception.

Run:  python examples/space_budget.py
"""

from __future__ import annotations

import math

from repro import (
    ElementSamplingAlgorithm,
    KKAlgorithm,
    RandomOrder,
    ReplayableStream,
    SpaceBudget,
    SpaceBudgetExceededError,
    planted_partition_instance,
)
from repro.analysis.tables import render_table


def main() -> None:
    planted = planted_partition_instance(n=400, m=4000, opt_size=20, seed=1)
    instance = planted.instance
    stream = ReplayableStream(instance, RandomOrder(seed=2))
    print(f"instance: {instance}, planted OPT = {planted.opt_upper_bound}\n")

    # 1. The alpha dial: space vs quality.
    rows = []
    for alpha in (9, 18, 36, 72):
        algorithm = ElementSamplingAlgorithm(
            alpha=alpha, sample_constant=0.5, seed=3
        )
        result = algorithm.run(stream.fresh())
        result.verify(instance)
        rows.append(
            [
                alpha,
                result.space.peak_of("projections"),
                result.space.peak_words,
                result.cover_size,
                f"{result.cover_size / planted.opt_upper_bound:.1f}x",
            ]
        )
    print(
        render_table(
            ["alpha", "projection words", "total peak", "cover", "vs OPT"],
            rows,
            title="element sampling: Θ̃(m·n/α) space ↔ α·OPT quality\n",
        )
    )

    # 2. Hard budgets: Theorem 1's Õ(m) is enough; o(m) is not.
    m, n = instance.m, instance.n
    generous = SpaceBudget(words=4 * (m + 4 * n), context="Õ(m) per Thm 1")
    result = KKAlgorithm(seed=4, space_budget=generous).run(stream.fresh())
    result.verify(instance)
    print(
        f"\nKK under a {generous.words}-word (≈4m) budget: "
        f"peak {result.space.peak_words} words — fits, as Theorem 1 promises."
    )

    starved = SpaceBudget(
        words=m // 10, context="o(m) — below the Theorem 2 bound"
    )
    try:
        KKAlgorithm(seed=4, space_budget=starved).run(stream.fresh())
    except SpaceBudgetExceededError as error:
        print(
            f"KK under a {starved.words}-word (m/10) budget: rejected "
            f"({error.used} words needed) — the Ω̃(m) lower bound of "
            "Theorem 2, experienced as an exception."
        )
    else:
        raise AssertionError("expected the starved budget to be exceeded")

    print(
        "\n(√n = {:.0f}; only the random-order Algorithm 1 may go below "
        "Θ̃(m) words at this quality — see "
        "examples/random_vs_adversarial.py.)".format(math.sqrt(n))
    )


if __name__ == "__main__":
    main()
