#!/usr/bin/env python3
"""Quickstart: solve one edge-arrival Set Cover stream three ways.

Builds a planted instance (known OPT), streams it in random order, and
runs the paper's three algorithms plus offline greedy, printing cover
sizes and measured space side by side.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import (
    KKAlgorithm,
    LowSpaceAdversarialAlgorithm,
    RandomOrder,
    RandomOrderAlgorithm,
    ReplayableStream,
    greedy_cover,
    planted_partition_instance,
)
from repro.analysis.tables import render_table


def main() -> None:
    # A universe of 400 elements covered by 10 planted blocks, hidden
    # among 4 990 decoy sets: OPT = 10.
    planted = planted_partition_instance(
        n=400, m=5000, opt_size=10, seed=1
    )
    instance = planted.instance
    print(f"instance: {instance}")
    print(f"planted OPT: {planted.opt_upper_bound}\n")

    # Freeze ONE random-order stream so every algorithm sees the same
    # edge sequence (each .fresh() view is an independent single pass).
    stream = ReplayableStream(instance, RandomOrder(seed=2))

    algorithms = [
        ("KK-algorithm (Thm 1)", KKAlgorithm(seed=3)),
        (
            "Algorithm 2, alpha=2*sqrt(n) (Thm 4)",
            LowSpaceAdversarialAlgorithm(alpha=2 * math.sqrt(400), seed=4),
        ),
        ("Algorithm 1, random order (Thm 3)", RandomOrderAlgorithm(seed=5)),
    ]

    rows = []
    for name, algorithm in algorithms:
        result = algorithm.run(stream.fresh())
        result.verify(instance)  # raises unless the cover is legal
        rows.append(
            [
                name,
                result.cover_size,
                f"{result.cover_size / planted.opt_upper_bound:.1f}x",
                result.space.peak_words,
                result.space.dominant_component() or "-",
            ]
        )

    offline = greedy_cover(instance)
    rows.append(
        [
            "offline greedy (baseline)",
            offline.cover_size,
            f"{offline.cover_size / planted.opt_upper_bound:.1f}x",
            offline.space.peak_words,
            "whole input",
        ]
    )

    print(
        render_table(
            ["algorithm", "cover", "vs OPT", "peak words", "space driver"],
            rows,
        )
    )
    print(
        "\nsqrt(n) = {:.0f}: the streaming covers sit within the Õ(√n) "
        "guarantee while using a fraction of the input's space.".format(
            math.sqrt(400)
        )
    )


if __name__ == "__main__":
    main()
