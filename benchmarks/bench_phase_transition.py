"""Benchmark for the approximation/space phase-transition chart."""

from __future__ import annotations

import pytest


def test_regenerates_phase_transition_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("phase-transition"), rounds=1, iterations=1
    )
    findings = report.findings
    assert findings["store_over_kk_space"] > 1.0
    assert findings["kk_over_alg1_space"] > 1.0
    assert findings["kk_over_alg2_space"] > 1.0
    assert findings["alg2_small_over_big_alpha_space"] > 1.0
