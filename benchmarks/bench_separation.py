"""Benchmark for the adversarial-vs-random-order separation (Thm 2 + 3).

Times Algorithm 1 on random vs adversarial orderings of the same
instance and regenerates the separation table.
"""

from __future__ import annotations

import pytest

from repro.core.random_order import RandomOrderAlgorithm
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import LargeSetsLastOrder, RandomOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def instance():
    return quadratic_family(144, density=0.5, seed=19)


def test_random_order_pass(benchmark, instance):
    workload = ReplayableStream(instance, RandomOrder(seed=19))

    def run():
        return RandomOrderAlgorithm(seed=19).run(workload.fresh())

    benchmark(run).verify(instance)


def test_adversarial_order_pass(benchmark, instance):
    workload = ReplayableStream(instance, LargeSetsLastOrder(seed=19))

    def run():
        return RandomOrderAlgorithm(seed=19).run(workload.fresh())

    benchmark(run).verify(instance)


def test_regenerates_separation_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("separation"), rounds=1, iterations=1
    )
    assert report.findings["space_advantage_at_max_n"] > 4.0
    assert report.findings["space_advantage_growth"] > 1.3
