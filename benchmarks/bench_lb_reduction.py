"""Benchmark for the Theorem-2 reduction run end to end."""

from __future__ import annotations

import pytest

from repro.core.kk import KKAlgorithm
from repro.lowerbound.disjointness import intersecting_instance
from repro.lowerbound.family import build_family
from repro.lowerbound.reduction import DisjointnessReduction


@pytest.fixture(scope="module")
def setup():
    family = build_family(100, 24, 4, seed=29)
    reduction = DisjointnessReduction(family, threshold=7.0)
    disjointness = intersecting_instance(24, 4, 3, seed=29)
    return reduction, disjointness


def test_single_parallel_run_throughput(benchmark, setup):
    """Time one forked parallel run of the reduction (the unit of work)."""
    reduction, disjointness = setup
    witness = disjointness.intersecting_element

    def run():
        return reduction.execute(
            disjointness,
            algorithm_factory=lambda seed: KKAlgorithm(seed=seed),
            seed=29,
            run_indices=[witness],
        )

    outcome = benchmark(run)
    assert outcome.runs[0].feasible


def test_regenerates_reduction_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("lb-reduction"), rounds=1, iterations=1
    )
    assert report.findings["decision_accuracy"] >= 0.75
    assert report.findings["cover_gap_disjoint_over_intersecting"] > 1.2
