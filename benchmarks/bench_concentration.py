"""Benchmark for the Lemma-2 concentration simulations."""

from __future__ import annotations

import pytest

from repro.analysis.concentration import simulate_occupancy


def test_occupancy_simulation_throughput(benchmark):
    """Time 10k hypergeometric window-count draws (the lemma's process)."""
    counts = benchmark(
        lambda: simulate_occupancy(
            stream_length=10**6,
            subset_size=200_000,
            window=1000,
            trials=10_000,
            seed=61,
        )
    )
    assert counts.shape == (10_000,)


def test_regenerates_concentration_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("concentration"), rounds=1, iterations=1
    )
    assert report.findings["worst_violation_rate"] <= 0.01
