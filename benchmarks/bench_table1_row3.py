"""Benchmark for Table 1 row 3 (Theorem 4): Algorithm 2.

Times one low-space pass at α = 2√n and regenerates the α-sweep table
(level-map space ∝ α⁻², cover ∝ α).
"""

from __future__ import annotations

import math

import pytest

from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.generators.planted import planted_partition_instance
from repro.streaming.orders import RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def workload():
    planted = planted_partition_instance(256, 4096, opt_size=16, seed=13)
    return ReplayableStream(
        planted.instance, RoundRobinInterleaveOrder(seed=13)
    )


def test_algorithm2_pass_throughput(benchmark, workload):
    """Time one Algorithm-2 pass at the theorem's minimum α = 2√n."""
    alpha = 2 * math.sqrt(workload.instance.n)

    def run():
        return LowSpaceAdversarialAlgorithm(alpha=alpha, seed=13).run(
            workload.fresh()
        )

    result = benchmark(run)
    result.verify(workload.instance)


def test_regenerates_row3_table(benchmark, experiment_report):
    """Regenerate the Table-1 row-3 α-sweep and check the exponents."""
    report = benchmark.pedantic(
        lambda: experiment_report("table1-row3"), rounds=1, iterations=1
    )
    assert -2.6 <= report.findings["level_map_vs_alpha_exponent"] <= -1.4
    assert report.findings["cover_vs_alpha_exponent"] > 0.3
