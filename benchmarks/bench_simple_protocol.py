"""Benchmark for the deterministic 2√(nt) t-party protocol."""

from __future__ import annotations

import pytest

from repro.generators.planted import planted_partition_instance
from repro.lowerbound.simple_protocol import (
    run_simple_protocol,
    split_instance_among_parties,
)


@pytest.fixture(scope="module")
def parties():
    planted = planted_partition_instance(225, 1800, opt_size=15, seed=31)
    return split_instance_among_parties(planted.instance, 8, seed=31)


def test_protocol_throughput(benchmark, parties):
    """Time one full 8-party protocol execution."""
    result = benchmark(lambda: run_simple_protocol(225, parties))
    assert result.cover_size >= 1


def test_regenerates_protocol_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("simple-protocol"), rounds=1, iterations=1
    )
    assert report.findings["worst_cover_over_bound"] <= 1.0
    assert report.findings["worst_message_over_n"] <= 8.0
