"""Benchmark for the semi-random order-robustness extension."""

from __future__ import annotations

import pytest

from repro.core.random_order import RandomOrderAlgorithm
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import LocallyShuffledOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def instance():
    return quadratic_family(100, density=0.5, seed=71)


@pytest.mark.parametrize("randomness", [0.0, 1.0])
def test_semi_random_pass_throughput(benchmark, instance, randomness):
    workload = ReplayableStream(
        instance, LocallyShuffledOrder(randomness, seed=71)
    )

    def run():
        return RandomOrderAlgorithm(seed=71).run(workload.fresh())

    benchmark(run).verify(instance)


def test_regenerates_order_robustness_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("order-robustness"), rounds=1, iterations=1
    )
    assert 0.7 <= report.findings["full_shuffle_over_uniform_cover"] <= 1.3
    assert report.findings["adversarial_over_uniform_cover"] >= 0.9
