"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one experiment's table (written to
``benchmarks/reports/<id>.txt``) and times the underlying algorithm
runs with pytest-benchmark.  Absolute timings are machine-specific;
the *findings* asserted in each module are the paper-shape checks.
"""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def report_dir() -> Path:
    """Directory collecting the regenerated experiment tables."""
    path = Path(__file__).parent / "reports"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def experiment_report(report_dir):
    """Run an experiment once per session, persist and cache its report."""
    cache = {}

    def run(experiment_id: str, seed: int = 0):
        if experiment_id not in cache:
            from repro.experiments.registry import get_experiment

            report = get_experiment(experiment_id).run(quick=True, seed=seed)
            (report_dir / f"{experiment_id}.txt").write_text(
                report.render() + "\n", encoding="utf-8"
            )
            cache[experiment_id] = report
        return cache[experiment_id]

    return run
