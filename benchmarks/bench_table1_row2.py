"""Benchmark for Table 1 row 2 (Theorem 1): the KK-algorithm.

Regenerates the row's space/approximation table and times one KK pass
on a planted adversarial-order stream.
"""

from __future__ import annotations

import pytest

from repro.core.kk import KKAlgorithm
from repro.generators.planted import planted_partition_instance
from repro.streaming.orders import RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def workload():
    planted = planted_partition_instance(144, 4000, opt_size=12, seed=7)
    return ReplayableStream(
        planted.instance, RoundRobinInterleaveOrder(seed=7)
    )


def test_kk_pass_throughput(benchmark, workload):
    """Time one full KK pass (counters + probabilistic inclusion)."""

    def run():
        return KKAlgorithm(seed=7).run(workload.fresh())

    result = benchmark(run)
    result.verify(workload.instance)


def test_regenerates_row2_table(benchmark, experiment_report):
    """Regenerate the Table-1 row-2 measurements and check the shape."""
    report = benchmark.pedantic(
        lambda: experiment_report("table1-row2"), rounds=1, iterations=1
    )
    assert 0.7 <= report.findings["space_vs_m_exponent"] <= 1.2
    assert report.findings["max_normalized_ratio"] < 8.0
