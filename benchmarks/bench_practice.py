"""Benchmark for the practical-workloads comparison (Section 1.3)."""

from __future__ import annotations

import pytest

from repro.baselines.greedy import greedy_cover
from repro.baselines.lazy_greedy import lazy_greedy_cover
from repro.generators.zipf import zipf_instance


@pytest.fixture(scope="module")
def zipf():
    return zipf_instance(400, 2000, seed=37)


def test_plain_greedy_throughput(benchmark, zipf):
    result = benchmark(lambda: greedy_cover(zipf))
    assert result.cover_size >= 1


def test_lazy_greedy_throughput(benchmark, zipf):
    """Lazy greedy should be markedly faster on heavy-tailed inputs."""
    result = benchmark(lambda: lazy_greedy_cover(zipf))
    assert result.cover_size >= 1


def test_regenerates_practice_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("practice"), rounds=1, iterations=1
    )
    assert report.findings["max_cover_blowup"] < 10.0
    assert report.findings["min_lazy_speedup"] > 2.0
