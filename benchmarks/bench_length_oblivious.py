"""Benchmark for the §4.1 stream-length-oblivious wrapper."""

from __future__ import annotations

import pytest

from repro.core.random_order import StreamLengthOblivious
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def workload():
    instance = quadratic_family(100, density=0.5, seed=43)
    return ReplayableStream(instance, RandomOrder(seed=43))


def test_oblivious_pass_throughput(benchmark, workload):
    """Time one oblivious run (guess selection + inner Algorithm 1)."""

    def run():
        return StreamLengthOblivious(seed=43).run(workload.fresh())

    result = benchmark(run)
    result.verify(workload.instance)


def test_regenerates_length_oblivious_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("length-oblivious"), rounds=1, iterations=1
    )
    assert report.findings["worst_guess_factor"] <= 2.1
    assert report.findings["mean_cover_ratio"] <= 2.0
