"""Benchmark for Table 1 row 1: element sampling (α = o(√n) regime).

Times one element-sampling pass and regenerates the row-1 α-sweep
table (projection space ∝ 1/α, cover within α·OPT).
"""

from __future__ import annotations

import pytest

from repro.core.element_sampling import ElementSamplingAlgorithm
from repro.generators.planted import planted_partition_instance
from repro.streaming.orders import RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def workload():
    planted = planted_partition_instance(400, 4000, opt_size=20, seed=11)
    return ReplayableStream(
        planted.instance, RoundRobinInterleaveOrder(seed=11)
    )


def test_element_sampling_pass_throughput(benchmark, workload):
    """Time one projection-storing pass plus the offline greedy phase."""

    def run():
        return ElementSamplingAlgorithm(
            alpha=18, sample_constant=0.5, seed=11
        ).run(workload.fresh())

    result = benchmark(run)
    result.verify(workload.instance)


def test_regenerates_row1_table(benchmark, experiment_report):
    """Regenerate the Table-1 row-1 α-sweep and check the exponents."""
    report = benchmark.pedantic(
        lambda: experiment_report("table1-row1"), rounds=1, iterations=1
    )
    assert -1.5 <= report.findings["projection_vs_alpha_exponent"] <= -0.6
    assert report.findings["worst_cover_over_alpha_opt"] <= 2.0
