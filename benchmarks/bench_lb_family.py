"""Benchmark for Lemma 1: sampling and verifying the partitioned family."""

from __future__ import annotations

import pytest

from repro.lowerbound.family import build_family


def test_family_construction_throughput(benchmark):
    """Time sampling + verification of a Lemma-1 family."""
    family = benchmark(lambda: build_family(400, 40, 4, seed=23))
    assert family.m == 40


def test_intersection_verification_throughput(benchmark):
    """Time the O(m²·t) max-partial-intersection verification."""
    family = build_family(400, 40, 4, seed=23)
    worst = benchmark(family.max_partial_intersection)
    assert worst >= 0


def test_regenerates_family_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("lb-family"), rounds=1, iterations=1
    )
    assert report.findings["max_intersection_over_log_n"] <= 4.0
    assert 0.5 <= report.findings["mean_intersection_overall"] <= 2.0
