"""Benchmark for Algorithm 1's (I1)/(I2)/(I3) invariant probes."""

from __future__ import annotations

import pytest

from repro.core.random_order import RandomOrderAlgorithm
from repro.generators.random_instances import two_tier_instance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def workload():
    instance = two_tier_instance(2500, num_small=20000, num_big=60, seed=41)
    return ReplayableStream(instance, RandomOrder(seed=41))


def test_instrumented_pass_throughput(benchmark, workload):
    """Time one instrumented Algorithm-1 pass on the two-tier workload."""

    def run():
        algorithm = RandomOrderAlgorithm(seed=41)
        result = algorithm.run(workload.fresh())
        return algorithm.last_probe, result

    probe, result = benchmark(run)
    result.verify(workload.instance)
    assert probe is not None


def test_regenerates_invariants_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("invariants"), rounds=1, iterations=1
    )
    assert report.findings["mean_special_decay_rate"] < 1.0
    assert report.findings["max_additions_over_sqrtn_log2m"] < 5.0
    assert report.findings["max_marked_uncovered_fraction"] < 0.05
