"""Benchmark for the multi-pass pass/quality tradeoff."""

from __future__ import annotations

import pytest

from repro.generators.zipf import zipf_instance
from repro.multipass import MultiPassThresholdGreedy
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def workload():
    return ReplayableStream(zipf_instance(300, 1200, seed=67), RandomOrder(seed=67))


@pytest.mark.parametrize("passes", [1, 4])
def test_multipass_throughput(benchmark, workload, passes):
    """Time a p-pass run (cost scales ~linearly with passes)."""

    def run():
        return MultiPassThresholdGreedy(passes=passes, seed=67).run(workload)

    result = benchmark(run)
    result.verify(workload.instance)


def test_regenerates_multipass_table(benchmark, experiment_report):
    report = benchmark.pedantic(
        lambda: experiment_report("multipass"), rounds=1, iterations=1
    )
    assert report.findings["improvement_factor"] > 1.05
    assert report.findings["max_passes_over_greedy"] < 1.5
