"""Benchmark for the set-arrival context baseline (Section 1).

Times the Õ(n)-space threshold-greedy pass on a set-grouped stream and
regenerates the baseline table (space flat in m, ratio ≤ 2√n).
"""

from __future__ import annotations

import pytest

from repro.baselines.emek_rosen import SetArrivalThresholdGreedy
from repro.generators.planted import planted_partition_instance
from repro.streaming.orders import SetGroupedOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def workload():
    planted = planted_partition_instance(144, 4000, opt_size=12, seed=11)
    return ReplayableStream(planted.instance, SetGroupedOrder(seed=11))


def test_set_arrival_pass_throughput(benchmark, workload):
    """Time one threshold-greedy pass over a set-grouped stream."""

    def run():
        return SetArrivalThresholdGreedy(seed=11).run(workload.fresh())

    result = benchmark(run)
    result.verify(workload.instance)


def test_regenerates_set_arrival_table(benchmark, experiment_report):
    """Regenerate the set-arrival context table and check the shape."""
    report = benchmark.pedantic(
        lambda: experiment_report("set-arrival-baseline"), rounds=1, iterations=1
    )
    assert abs(report.findings["space_vs_m_exponent"]) < 0.3
    assert report.findings["worst_ratio_over_2sqrt_n"] <= 1.0
    assert report.findings["interleaved_stream_rejected"] == 1.0
