"""Benchmark for Table 1 row 4 (Theorem 3): Algorithm 1, the main result.

Times one random-order pass on an m = Θ(n²) instance and regenerates
the space-scaling table (Alg1 ~ m/√n vs KK ~ m).
"""

from __future__ import annotations

import pytest

from repro.core.random_order import RandomOrderAlgorithm
from repro.generators.random_instances import quadratic_family
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def workload():
    instance = quadratic_family(144, density=0.5, seed=17)
    return ReplayableStream(instance, RandomOrder(seed=17))


def test_algorithm1_pass_throughput(benchmark, workload):
    """Time one Algorithm-1 pass (epoch 0 + A(1..K) + remainder)."""

    def run():
        return RandomOrderAlgorithm(seed=17).run(workload.fresh())

    result = benchmark(run)
    result.verify(workload.instance)


def test_regenerates_row4_table(benchmark, experiment_report):
    """Regenerate the Table-1 row-4 scaling and check the separation."""
    report = benchmark.pedantic(
        lambda: experiment_report("table1-row4"), rounds=1, iterations=1
    )
    assert (
        report.findings["alg1_space_vs_n_exponent"]
        < report.findings["kk_space_vs_n_exponent"]
    )
    assert report.findings["space_advantage_at_max_n"] > 3.0
    assert report.findings["max_normalized_ratio"] < 8.0
