"""Hot-path throughput benchmark (smoke tier) with a regression gate.

Times one pass of each core algorithm on the ``smoke`` workload from
:mod:`repro.analysis.perfbench` and compares the measured edges/sec
against the numbers committed in ``BENCH_perf.json``.  A cell that is
more than 2x slower than the committed measurement fails the run — this
is the guardrail CI applies to every PR.  ``scripts/run_perf_bench.py``
runs the same harness standalone (and the ``full`` tier that produces
the committed file).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.perfbench import (
    TIERS,
    check_regression,
    load_bench_file,
    run_bench,
)

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

SMOKE_ALGORITHMS = ["kk", "random-order", "adversarial"]


@pytest.fixture(scope="module")
def committed():
    return load_bench_file(BENCH_FILE)


@pytest.mark.parametrize("algorithm", SMOKE_ALGORITHMS)
def test_smoke_throughput(benchmark, algorithm):
    """Time one smoke-tier pass of a single algorithm."""
    records = benchmark.pedantic(
        lambda: run_bench(tier="smoke", seed=0, algorithms=[algorithm]),
        rounds=1,
        iterations=1,
    )
    assert len(records) == len(TIERS["smoke"])
    for record in records:
        assert record.algorithm == algorithm
        assert record.edges_per_sec > 0
        assert record.peak_words > 0
        assert record.cover_size >= 1


def test_no_regression_vs_committed(committed):
    """Smoke run must stay within 2x of the committed edges/sec."""
    if not committed.get("smoke"):
        pytest.skip("no committed smoke numbers in BENCH_perf.json")
    current = run_bench(tier="smoke", seed=0)
    failures = check_regression(current, committed["smoke"], factor=2.0)
    assert not failures, "; ".join(failures)
