"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation toggles one mechanism and measures the consequence:

* Algorithm 1's tracked-sample optimistic marking (lines 24–31) on/off;
* Algorithm 1's special-set threshold factor (the collapsed ``log⁶ m``);
* the KK level width ``√n`` (halving/doubling it shifts the
  space/quality tradeoff);
* Theorem 4's expectation-to-high-probability amplification (parallel
  copies shrink the cover-size spread).
"""

from __future__ import annotations

import statistics

import pytest

from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.amplification import AmplifiedAlgorithm
from repro.core.kk import KKAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.core.scaling import Scaling
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import two_tier_instance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream


@pytest.fixture(scope="module")
def two_tier():
    instance = two_tier_instance(2500, num_small=20000, num_big=60, seed=47)
    return ReplayableStream(instance, RandomOrder(seed=47))


def test_ablation_tracking_disabled(benchmark, two_tier):
    """Line 24–31 machinery off: no optimistic marking may occur."""
    scaling = Scaling.practical().with_overrides(enable_tracking=False)

    def run():
        algorithm = RandomOrderAlgorithm(scaling=scaling, seed=47)
        result = algorithm.run(two_tier.fresh())
        return algorithm.last_probe, result

    probe, result = benchmark(run)
    result.verify(two_tier.instance)
    assert all(s.marked_by_tracking == 0 for s in probe.epoch_stats)


def test_ablation_tracking_enabled_reference(benchmark, two_tier):
    """Reference run with tracking on, for comparison with the ablation."""

    def run():
        algorithm = RandomOrderAlgorithm(seed=47)
        return algorithm.run(two_tier.fresh())

    result = benchmark(run)
    result.verify(two_tier.instance)


@pytest.mark.parametrize("factor", [1.0, 2.0, 4.0])
def test_ablation_special_threshold(benchmark, two_tier, factor):
    """Raising the special threshold makes detection rarer (fewer specials)."""
    scaling = Scaling.practical().with_overrides(
        special_threshold_factor=factor
    )

    def run():
        algorithm = RandomOrderAlgorithm(scaling=scaling, seed=47)
        result = algorithm.run(two_tier.fresh())
        assert algorithm.last_probe is not None
        return sum(s.special_sets for s in algorithm.last_probe.epoch_stats)

    specials = benchmark.pedantic(run, rounds=1, iterations=1)
    assert specials >= 0


@pytest.mark.parametrize("width_factor", [0.5, 1.0, 2.0])
def test_ablation_kk_level_width(benchmark, width_factor):
    """Narrower KK levels promote sets earlier (more inclusion events)."""
    planted = planted_partition_instance(144, 2000, opt_size=12, seed=53)
    stream = ReplayableStream(planted.instance, RandomOrder(seed=53))
    scaling = Scaling.practical().with_overrides(
        kk_level_width_factor=width_factor
    )

    def run():
        return KKAlgorithm(scaling=scaling, seed=53).run(stream.fresh())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    result.verify(planted.instance)
    assert result.diagnostics["level_width"] == int(
        width_factor * 12
    )


@pytest.mark.parametrize("cache_size", [0, None])
def test_ablation_element_sampling_witness_cache(benchmark, cache_size):
    """Witness-cache off vs on: the cache can only reduce patching."""
    from repro.core.element_sampling import ElementSamplingAlgorithm

    planted = planted_partition_instance(256, 2000, opt_size=16, seed=61)
    stream = ReplayableStream(planted.instance, RandomOrder(seed=61))

    def run():
        algorithm = ElementSamplingAlgorithm(
            alpha=16,
            sample_constant=0.5,
            witness_cache_size=cache_size,
            seed=61,
        )
        return algorithm.run(stream.fresh())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    result.verify(planted.instance)
    if cache_size == 0:
        assert result.diagnostics["cached_certifications"] == 0


def test_ablation_amplification_shrinks_spread(benchmark):
    """Thm 4 remark: parallel copies turn expectation into concentration."""
    planted = planted_partition_instance(100, 1000, opt_size=10, seed=59)
    stream = ReplayableStream(planted.instance, RandomOrder(seed=59))

    def covers_with(copies, trials=6):
        sizes = []
        for trial in range(trials):
            algorithm = AmplifiedAlgorithm(
                factory=lambda s: LowSpaceAdversarialAlgorithm(
                    alpha=20, seed=s
                ),
                copies=copies,
                seed=1000 + trial,
            )
            sizes.append(algorithm.run(stream.fresh()).cover_size)
        return sizes

    def run():
        return covers_with(1), covers_with(6)

    singles, amplified = benchmark.pedantic(run, rounds=1, iterations=1)
    # The best-of-6 covers concentrate at/below the single-copy runs.
    assert statistics.fmean(amplified) <= statistics.fmean(singles)
    assert max(amplified) <= max(singles)
