#!/usr/bin/env python
"""Backend-parity smoke: serial, thread, and process must agree byte-for-byte.

The distributed determinism contract says the execution backend is
operational: for a fixed (instance, workers, order, seed, algorithm,
strategy, coordinator) every backend must produce a dataclass-equal
``DistributedResult`` and a byte-identical merged trace JSONL.  This
script checks exactly that on a small planted instance at W=4 across
all registered backends and both ingest modes, then pins the process
backend's two *shipping* modes — shared-memory spans and classic
pickled edges (``REPRO_SHM=0``) — to the same reference, asserting the
shared-memory dispatch really shipped O(descriptor) task pickles.
Exits 1 on the first divergence.  CI runs it on every push::

    PYTHONPATH=src python scripts/check_backend_parity.py
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distributed import (  # noqa: E402
    INGEST_MODES,
    registered_backends,
    run_distributed,
    shared_memory_available,
)
from repro.generators.planted import planted_partition_instance  # noqa: E402
from repro.obs.tracer import TraceCollector  # noqa: E402

WORKERS = 4
SEED = 20260807


def run_cell(instance, backend: str, ingest: str, max_workers: int):
    collector = TraceCollector()
    result = run_distributed(
        instance,
        workers=WORKERS,
        algorithm="kk",
        seed=SEED,
        max_workers=max_workers,
        backend=backend,
        ingest=ingest,
        chunk_size=64,
        queue_depth=2,
        collector=collector,
    )
    result.verify(instance)
    return result, collector.to_jsonl()


def main() -> int:
    instance = planted_partition_instance(
        n=400, m=80, opt_size=12, seed=SEED
    ).instance
    reference_result, reference_trace = run_cell(
        instance, "serial", "materialize", max_workers=1
    )
    print(
        f"reference: serial/materialize cover={reference_result.cover_size} "
        f"trace={len(reference_trace)} bytes"
    )
    failures = 0
    for backend in registered_backends():
        for ingest in sorted(INGEST_MODES):
            for max_workers in (1, WORKERS):
                result, trace = run_cell(instance, backend, ingest, max_workers)
                cell = f"{backend}/{ingest}/max_workers={max_workers}"
                if result != reference_result:
                    print(f"FAIL {cell}: DistributedResult diverged")
                    failures += 1
                elif trace != reference_trace:
                    print(f"FAIL {cell}: merged trace JSONL not byte-identical")
                    failures += 1
                else:
                    print(f"ok   {cell}")

    # Shipping modes: how the process backend moves shard edges must be
    # operational too.  Shared-memory spans and pickled edges get the
    # same answer, and the span dispatch pickles O(descriptor) tasks.
    max_descriptor_bytes = 8192
    for label, flag in (("shared-memory", "1"), ("pickle", "0")):
        os.environ["REPRO_SHM"] = flag
        try:
            result, trace = run_cell(
                instance, "process", "materialize", max_workers=WORKERS
            )
        finally:
            del os.environ["REPRO_SHM"]
        cell = f"process/shipping={label}/max_workers={WORKERS}"
        expected = label
        if label == "shared-memory" and not shared_memory_available():
            expected = "pickle"  # platform fallback is part of the contract
        shipping = result.shipping
        if result != reference_result:
            print(f"FAIL {cell}: DistributedResult diverged")
            failures += 1
        elif trace != reference_trace:
            print(f"FAIL {cell}: merged trace JSONL not byte-identical")
            failures += 1
        elif shipping is None or shipping.mode != expected:
            got = None if shipping is None else shipping.mode
            print(f"FAIL {cell}: expected shipping mode {expected}, got {got}")
            failures += 1
        elif (
            expected == "shared-memory"
            and shipping.max_task_bytes > max_descriptor_bytes
        ):
            print(
                f"FAIL {cell}: shipped task pickled to "
                f"{shipping.max_task_bytes} bytes — not O(descriptor)"
            )
            failures += 1
        else:
            print(
                f"ok   {cell} (max task pickle "
                f"{shipping.max_task_bytes:,} bytes)"
            )

    if failures:
        print(f"{failures} parity failure(s)")
        return 1
    print("backend parity holds: results dataclass-equal, traces byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
