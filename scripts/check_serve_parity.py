#!/usr/bin/env python
"""Serve-parity gate: concurrent served runs must equal their batch twins.

The service's load-bearing invariant is *batch-twin parity*: a solve or
distribute served through the admission-controlled TCP path must be
byte-identical to the same request run directly against the library —
same cover, same certificate, same trace JSONL, same comm totals — even
when N clients hit the same instance simultaneously and contend for
pool leases.  This script computes the batch twins first, then replays
every request through N concurrent client connections (several rounds,
shuffled assignment) and compares byte-for-byte.  Exits 1 on the first
divergence.  CI runs it on every push::

    PYTHONPATH=src python scripts/check_serve_parity.py

A sandbox that forbids binding localhost TCP makes the server's
``start`` raise the typed ``TransportError``; that is reported as
``SKIP`` and exits 0, mirroring the PR-8 socket-transport gate.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.algorithms import make_algorithm  # noqa: E402
from repro.distributed import run_distributed  # noqa: E402
from repro.errors import TransportError  # noqa: E402
from repro.generators.planted import planted_partition_instance  # noqa: E402
from repro.obs.tracer import RecordingTracer, events_to_jsonl  # noqa: E402
from repro.serve import (  # noqa: E402
    InstanceRegistry,
    ServeClient,
    ServeConfig,
    start_server_thread,
)
from repro.streaming.orders import make_order  # noqa: E402
from repro.streaming.stream import stream_of  # noqa: E402

SEED = 20260808
CLIENTS = 4
ROUNDS = 3
SOLVE_CASES = [
    ("kk", "canonical", 1),
    ("kk", "random", 7),
    ("first-fit", "large-sets-last", 3),
    ("store-all", "canonical", 0),
]
DISTRIBUTE_CASES = [
    (3, "chain"),
    (4, "greedy"),
    (2, "union"),
]


def batch_solve_twin(instance, algorithm: str, order_name: str, seed: int):
    """The exact batch run the server promises to reproduce."""
    order = make_order(order_name, seed=seed)
    stream = stream_of(instance, order)
    tracer = RecordingTracer()
    result = make_algorithm(
        algorithm, instance, seed=seed, alpha=None, tracer=tracer
    ).run(stream)
    result.verify(instance)
    tracer.finish()
    return {
        "cover": tuple(sorted(result.cover)),
        "certificate": tuple(sorted(result.certificate.items())),
        "peak_words": result.space.peak_words,
        "trace_jsonl": events_to_jsonl(tracer.events),
    }


def batch_distribute_twin(instance, workers: int, coordinator: str):
    result = run_distributed(
        instance,
        workers=workers,
        algorithm="kk",
        coordinator=coordinator,
        seed=SEED,
    )
    result.verify(instance)
    return {
        "cover": tuple(sorted(result.cover)),
        "certificate": tuple(sorted(result.certificate.items())),
        "total_comm_words": result.total_comm_words,
        "max_message_words": result.max_message_words,
    }


def served_requests(host, port, requests, failures):
    """One client connection working through its share of requests."""
    try:
        client = ServeClient(host=host, port=port)
    except TransportError as exc:
        failures.append(f"client connect failed: {exc}")
        return
    try:
        for label, kind, kwargs, twin in requests:
            try:
                if kind == "solve":
                    response = client.solve("parity", **kwargs)
                    got = {
                        "cover": tuple(response["cover"]),
                        "certificate": tuple(
                            tuple(pair) for pair in response["certificate"]
                        ),
                        "peak_words": response["peak_words"],
                        "trace_jsonl": response["trace_jsonl"],
                    }
                else:
                    response = client.distribute("parity", **kwargs)
                    got = {
                        "cover": tuple(response["cover"]),
                        "certificate": tuple(
                            tuple(pair) for pair in response["certificate"]
                        ),
                        "total_comm_words": response["total_comm_words"],
                        "max_message_words": response["max_message_words"],
                    }
            except Exception as exc:  # noqa: BLE001 — report, don't die
                failures.append(f"{label}: request failed: {exc!r}")
                continue
            for key, expected in twin.items():
                if got[key] != expected:
                    failures.append(
                        f"{label}: {key} diverged from batch twin "
                        f"(served {got[key]!r} != batch {expected!r})"
                    )
    finally:
        client.close()


def main() -> int:
    instance = planted_partition_instance(
        n=300, m=60, opt_size=10, seed=SEED
    ).instance

    print("computing batch twins ...")
    requests = []
    for algorithm, order_name, seed in SOLVE_CASES:
        twin = batch_solve_twin(instance, algorithm, order_name, seed)
        requests.append(
            (
                f"solve[{algorithm}/{order_name}/seed={seed}]",
                "solve",
                dict(
                    algorithm=algorithm,
                    order=order_name,
                    seed=seed,
                    include_trace=True,
                ),
                twin,
            )
        )
    for workers, coordinator in DISTRIBUTE_CASES:
        twin = batch_distribute_twin(instance, workers, coordinator)
        requests.append(
            (
                f"distribute[W={workers}/{coordinator}]",
                "distribute",
                dict(workers=workers, coordinator=coordinator, seed=SEED),
                twin,
            )
        )

    registry = InstanceRegistry()
    registry.load_instance("parity", instance)
    try:
        handle = start_server_thread(ServeConfig(port=0), registry)
    except TransportError as exc:
        print(f"SKIP: cannot bind localhost TCP in this sandbox ({exc})")
        return 0

    failures: list = []
    with handle:
        for round_index in range(ROUNDS):
            # Rotate the request->client assignment so every request is
            # eventually exercised alongside different contenders.
            shares = [
                [
                    req
                    for i, req in enumerate(requests)
                    if (i + round_index) % CLIENTS == worker
                ]
                for worker in range(CLIENTS)
            ]
            threads = [
                threading.Thread(
                    target=served_requests,
                    args=(handle.host, handle.port, share, failures),
                )
                for share in shares
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            print(
                f"round {round_index + 1}/{ROUNDS}: "
                f"{len(requests)} requests across {CLIENTS} clients, "
                f"{len(failures)} failures"
            )

    if failures:
        print(f"\nFAIL: {len(failures)} parity divergence(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"\nOK: {ROUNDS * len(requests)} served requests byte-identical "
        f"to their batch twins under {CLIENTS}-way client concurrency"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
