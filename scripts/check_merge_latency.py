#!/usr/bin/env python
"""Merge-latency gate: the tournament's critical path must be O(log W).

The tentpole claim of the tree coordinator is structural, so the gate
asserts it structurally: on fault-free default schedules the chain's
state relay costs exactly ``W - 1`` sequential hand-offs (``W - 1``
idle ticks, ``2(W - 1)`` logical steps with the default unit delay)
while the tournament's round-batched hand-offs finish in
``⌈log₂ W⌉`` rounds (``≤ 2·⌈log₂ W⌉ + 2`` logical steps).  Both bounds
are checked at W ∈ {4, 8, 16} for fixed and adaptive τ, and from W = 8
up the tree must beat the chain outright.  Every cell's cover is
verified and asserted identical to the synchronous run.

Exits 1 on the first violated bound.  CI runs it on every push::

    PYTHONPATH=src python scripts/check_merge_latency.py
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distributed import (  # noqa: E402
    run_distributed,
    run_distributed_async,
)
from repro.generators.planted import planted_partition_instance  # noqa: E402

SEED = 20260808
WORKER_GRID = (4, 8, 16)
#: Slack on the tree bound: one tick to post the leaves' results and
#: one for the root's final settle — topology-independent constants.
TREE_SLACK = 2


def main() -> int:
    instance = planted_partition_instance(
        n=120, m=480, opt_size=10, seed=SEED
    ).instance
    failures = 0
    for workers in WORKER_GRID:
        rounds = math.ceil(math.log2(workers))
        steps_at = {}
        for coordinator in ("chain", "tree"):
            for adaptive in (False, True):
                mode = "adaptive" if adaptive else "fixed"
                cell = f"{coordinator}/{mode} W={workers}"
                result = run_distributed_async(
                    instance,
                    workers=workers,
                    algorithm="kk",
                    coordinator=coordinator,
                    adaptive_threshold=adaptive,
                    seed=SEED,
                    backend="serial",
                    schedule_seed=SEED,
                )
                result.verify(instance)
                sync = run_distributed(
                    instance,
                    workers=workers,
                    algorithm="kk",
                    coordinator=coordinator,
                    adaptive_threshold=adaptive,
                    seed=SEED,
                    backend="serial",
                )
                if result.cover != sync.cover:
                    print(f"FAIL {cell}: async cover diverges from sync")
                    failures += 1
                    continue
                steps = int(result.diagnostics["logical_steps"])
                idle = int(result.diagnostics["idle_ticks"])
                steps_at[(coordinator, mode)] = steps
                if coordinator == "chain" and idle != workers - 1:
                    print(
                        f"FAIL {cell}: chain idled {idle} ticks, expected "
                        f"exactly W-1 = {workers - 1} — the relay's "
                        "dependency depth changed"
                    )
                    failures += 1
                elif coordinator == "tree" and steps > 2 * rounds + TREE_SLACK:
                    print(
                        f"FAIL {cell}: {steps} logical steps exceed the "
                        f"2*ceil(log2 W)+{TREE_SLACK} = "
                        f"{2 * rounds + TREE_SLACK} bound — round batching "
                        "is not happening"
                    )
                    failures += 1
                else:
                    print(
                        f"ok   {cell}: {steps} steps, {idle} idle ticks, "
                        f"cover {result.cover_size} (= sync)"
                    )
        if workers >= 8:
            for mode in ("fixed", "adaptive"):
                tree = steps_at.get(("tree", mode))
                chain = steps_at.get(("chain", mode))
                if tree is None or chain is None:
                    continue
                if tree >= chain:
                    print(
                        f"FAIL {mode} W={workers}: tree {tree} steps does "
                        f"not beat chain {chain} — no latency win"
                    )
                    failures += 1
    if failures:
        print(f"{failures} merge-latency failure(s)")
        return 1
    print(
        "merge-latency gate passed: chain critical path is Theta(W), "
        "tournament Theta(log W), covers sync-identical throughout"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
