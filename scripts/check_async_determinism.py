#!/usr/bin/env python
"""Async-schedule determinism gate: replay one schedule twice, diff bytes.

The asynchronous simulator's contract is that a schedule is a pure
function of its seed: two runs of ``run_distributed_async`` with the
same (instance, workers, seed, schedule_seed, faults) must produce a
dataclass-equal ``DistributedResult`` *and* a byte-identical merged
trace JSONL — delivery order, logical clock, idle ticks and all.  On
top of the replay, every fault-free async run must match the
synchronous path's cover, certificate, and comm report exactly.

This script checks both on a small planted instance at W=4, across all
three coordinators, for a clean schedule and a crash-degraded one.
Exits 1 on the first divergence.  CI runs it on every push::

    PYTHONPATH=src python scripts/check_async_determinism.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distributed import (  # noqa: E402
    registered_coordinators,
    run_distributed,
    run_distributed_async,
)
from repro.faults.shards import ShardFaultPlan  # noqa: E402
from repro.generators.planted import planted_partition_instance  # noqa: E402
from repro.obs.tracer import TraceCollector  # noqa: E402

WORKERS = 4
SEED = 20260808
SCHEDULE_SEED = 424242


def run_cell(instance, coordinator: str, shard_faults, min_shards):
    collector = TraceCollector()
    result = run_distributed_async(
        instance,
        workers=WORKERS,
        algorithm="kk",
        strategy="by-set",
        coordinator=coordinator,
        seed=SEED,
        backend="serial",
        collector=collector,
        comm_log=True,
        schedule_seed=SCHEDULE_SEED,
        shard_faults=shard_faults,
        min_shards=min_shards,
    )
    return result, collector.to_jsonl().encode()


def main() -> int:
    planted = planted_partition_instance(60, 240, opt_size=6, seed=SEED)
    instance = planted.instance
    crash_plan = ShardFaultPlan.seeded(
        WORKERS, seed=SEED, crash_rate=0.35, flaky_rate=0.3
    )
    failures = 0
    for coordinator in registered_coordinators():
        for label, faults, min_shards in (
            ("clean", None, None),
            ("crash-degraded", crash_plan, 1),
        ):
            first, trace_a = run_cell(instance, coordinator, faults, min_shards)
            second, trace_b = run_cell(instance, coordinator, faults, min_shards)
            if first != second:
                print(
                    f"FAIL {coordinator}/{label}: replayed results differ"
                )
                failures += 1
                continue
            if trace_a != trace_b:
                print(
                    f"FAIL {coordinator}/{label}: replayed trace bytes differ"
                )
                failures += 1
                continue
            if faults is None:
                sync = run_distributed(
                    instance,
                    workers=WORKERS,
                    algorithm="kk",
                    strategy="by-set",
                    coordinator=coordinator,
                    seed=SEED,
                    backend="serial",
                    comm_log=True,
                )
                if (
                    first.cover != sync.cover
                    or first.certificate != sync.certificate
                    or first.comm != sync.comm
                ):
                    print(
                        f"FAIL {coordinator}/{label}: async diverges from sync"
                    )
                    failures += 1
                    continue
            first.verify(instance, allow_partial=bool(first.degradations))
            steps = first.diagnostics["logical_steps"]
            print(
                f"ok   {coordinator}/{label}: {steps:.0f} logical steps, "
                f"{len(trace_a)} trace bytes stable"
            )
    if failures:
        print(f"{failures} divergence(s)")
        return 1
    print("async determinism gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
