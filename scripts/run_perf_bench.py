#!/usr/bin/env python
"""Run the hot-path throughput benchmark and maintain BENCH_perf.json.

Usage
-----
Full benchmark (three sizes up to ~1e6 edges), updating BENCH_perf.json
in place while preserving the recorded seed baseline::

    PYTHONPATH=src python scripts/run_perf_bench.py

CI smoke tier — quick run, fail (exit 1) on a >2x edges/sec regression
against the committed smoke numbers::

    PYTHONPATH=src python scripts/run_perf_bench.py --smoke --check

Record the current code as the "seed baseline" (done once, before the
hot-path optimization, so the speedup trajectory stays in the file)::

    PYTHONPATH=src python scripts/run_perf_bench.py --record-seed-baseline
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perfbench import (  # noqa: E402
    check_kk_floor,
    check_regression,
    load_bench_file,
    records_to_json,
    run_bench,
    run_distributed_scaling,
    run_kk_kernel_bench,
    run_merge_bench,
    run_shipping_bench,
    run_trace_overhead,
    run_transport_bench,
    speedup_table,
    write_bench_file,
)

BENCH_FILE = REPO_ROOT / "BENCH_perf.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="run only the small smoke tier"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against committed BENCH_perf.json; exit 1 on >FACTOR"
        " regression (implies --no-write)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="allowed edges/sec regression factor for --check (default 2.0)",
    )
    parser.add_argument(
        "--record-seed-baseline",
        action="store_true",
        help="store this run's full-tier numbers as the immutable "
        "pre-optimization baseline",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="do not touch BENCH_perf.json"
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="measure structured-tracing cost (off vs on) instead of the "
        "throughput ladder; fails if tracing perturbs any cover",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help="measure the sharded executor's backend x W scaling surface "
        "(backends serial/thread/process, W in {1,2,4,8}) instead of the "
        "throughput ladder; updates the 'distributed' section of "
        "BENCH_perf.json unless --no-write",
    )
    parser.add_argument(
        "--kk-kernel",
        action="store_true",
        help="benchmark the vectorized kk kernel against kk-reference on "
        "identical streams (asserts byte-identical outputs); updates the "
        "'kk_kernel' section of BENCH_perf.json unless --no-write",
    )
    parser.add_argument(
        "--shipping",
        action="store_true",
        help="measure process-backend per-task serialized bytes, pickled "
        "edges vs shared-memory spans; updates the 'shipping' section of "
        "BENCH_perf.json unless --no-write",
    )
    parser.add_argument(
        "--transport",
        action="store_true",
        help="measure wire bytes/frames per (transport, coordinator) cell "
        "(asserts cover/comm parity with inproc; socket cells skipped "
        "where binding is forbidden); updates the 'transport' section of "
        "BENCH_perf.json unless --no-write",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="measure the merge critical path, chain vs tournament over "
        "fixed/adaptive tau (asserts tree < chain logical steps at W>=8 "
        "and sync/async cover parity); updates the 'merge' section of "
        "BENCH_perf.json unless --no-write",
    )
    parser.add_argument(
        "--check-kk-floor",
        action="store_true",
        help="run the smoke tier's kk cell and exit 1 if its throughput "
        "falls below the committed scalar seed baseline (CI smoke gate "
        "for the vectorized kernel; implies --no-write)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    def progress(line: str) -> None:
        print(line, flush=True)

    if args.check_kk_floor:
        # Two measured runs, best-of per cell: the first pass pays
        # import/cache warmup that a regression gate should not count.
        warm = run_bench(tier="smoke", seed=args.seed, algorithms=["kk"])
        second = run_bench(
            tier="smoke", seed=args.seed, algorithms=["kk"], progress=progress
        )
        best = {
            (r.config, r.algorithm): r for r in warm
        }
        for record in second:
            key = (record.config, record.algorithm)
            if record.edges_per_sec > best[key].edges_per_sec:
                best[key] = record
        current = list(best.values())
        baseline = load_bench_file(BENCH_FILE).get("seed_baseline", [])
        if not baseline:
            print("no committed seed baseline in BENCH_perf.json; nothing to check")
            return 0
        failures = check_kk_floor(current, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
        print("ok: kk throughput clears the scalar seed-baseline floor")
        return 0

    if args.kk_kernel or args.shipping:
        tier = "smoke" if args.smoke else "full"
        kernel_records = None
        shipping_records = None
        if args.kk_kernel:
            kernel_records = run_kk_kernel_bench(
                tier=tier, seed=args.seed, progress=progress
            )
            best = max(kernel_records, key=lambda r: r.speedup)
            print(
                f"ok: {len(kernel_records)} kk-kernel cells byte-identical; "
                f"best speedup x{best.speedup:.1f} ({best.config})"
            )
        if args.shipping:
            shipping_records = run_shipping_bench(
                tier=tier, seed=args.seed, progress=progress
            )
            best = max(shipping_records, key=lambda r: r.reduction_factor)
            print(
                f"ok: {len(shipping_records)} shipping cells; best task-bytes "
                f"reduction x{best.reduction_factor:,.0f} ({best.config})"
            )
        if not args.no_write:
            write_bench_file(
                BENCH_FILE, kk_kernel=kernel_records, shipping=shipping_records
            )
            print(f"updated kk_kernel/shipping sections of {BENCH_FILE}")
        return 0

    if args.transport:
        tier = "smoke" if args.smoke else "full"
        records = run_transport_bench(
            tier=tier, seed=args.seed, progress=progress
        )
        worst = max(records, key=lambda r: r.overhead_ratio)
        print(
            f"ok: {len(records)} transport cells parity-identical; worst "
            f"bytes/word overhead x{worst.overhead_ratio:.3f} "
            f"({worst.transport}/{worst.coordinator})"
        )
        if not any(r.transport == "socket" for r in records):
            print("note: socket cells skipped (bind forbidden)")
        if not args.no_write:
            write_bench_file(BENCH_FILE, transport=records)
            print(f"updated transport section of {BENCH_FILE}")
        return 0

    if args.merge:
        tier = "smoke" if args.smoke else "full"
        workers_grid = (2, 4, 8) if args.smoke else (2, 4, 8, 16)
        records = run_merge_bench(
            tier=tier,
            seed=args.seed,
            workers_grid=workers_grid,
            progress=progress,
        )
        w_hi = max(r.workers for r in records)
        by_cell = {
            (r.coordinator, r.threshold_mode): r
            for r in records
            if r.workers == w_hi
        }
        chain = by_cell[("chain", "fixed")]
        tree = by_cell[("tree", "adaptive")]
        print(
            f"ok: {len(records)} merge cells verified; at W={w_hi} the "
            f"tree's critical path is {tree.logical_steps} steps vs the "
            f"chain's {chain.logical_steps} "
            f"(x{chain.logical_steps / max(tree.logical_steps, 1):.1f}), "
            f"adaptive-tau cover {tree.cover_size} vs chain "
            f"{chain.cover_size}"
        )
        if not args.no_write:
            write_bench_file(BENCH_FILE, merge=records)
            print(f"updated merge section of {BENCH_FILE}")
        return 0

    if args.distributed:
        tier = "smoke" if args.smoke else "full"
        records = run_distributed_scaling(
            tier=tier, seed=args.seed, progress=progress
        )
        fastest = max(records, key=lambda r: r.edges_per_sec)
        print(
            f"ok: {len(records)} scaling points; fastest "
            f"{fastest.config}/{fastest.backend}/W={fastest.workers} at "
            f"{fastest.edges_per_sec:,.0f} edges/s"
        )
        best_speedups = {}
        for record in records:
            if record.speedup_vs_serial is None:
                continue
            key = record.backend
            if (
                key not in best_speedups
                or record.speedup_vs_serial
                > best_speedups[key].speedup_vs_serial
            ):
                best_speedups[key] = record
        for backend in sorted(best_speedups):
            best = best_speedups[backend]
            print(
                f"  best {backend} speedup: x{best.speedup_vs_serial:.2f} "
                f"vs serial ({best.config}, W={best.workers})"
            )
        if not args.no_write:
            write_bench_file(BENCH_FILE, distributed=records)
            print(f"updated distributed section of {BENCH_FILE}")
        return 0

    if args.trace_overhead:
        tier = "smoke" if args.smoke else "full"
        records = run_trace_overhead(
            tier=tier, seed=args.seed, progress=progress
        )
        worst = max(records, key=lambda r: r.overhead_fraction)
        print(
            f"ok: tracing left all {len(records)} covers bit-identical; "
            f"worst overhead {100 * worst.overhead_fraction:.1f}% "
            f"({worst.config}/{worst.algorithm})"
        )
        return 0

    if args.check:
        current = run_bench(tier="smoke", seed=args.seed, progress=progress)
        committed = load_bench_file(BENCH_FILE).get("smoke", [])
        if not committed:
            print("no committed smoke numbers in BENCH_perf.json; nothing to check")
            return 0
        failures = check_regression(current, committed, factor=args.factor)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
        print(f"ok: no >{args.factor}x regression against committed smoke numbers")
        return 0

    smoke = run_bench(tier="smoke", seed=args.seed, progress=progress)
    full = [] if args.smoke else run_bench(tier="full", seed=args.seed, progress=progress)

    if args.record_seed_baseline:
        if not full:
            full = run_bench(tier="full", seed=args.seed, progress=progress)
        write_bench_file(
            BENCH_FILE, smoke, full, seed_baseline=records_to_json(full)
        )
        print(f"recorded seed baseline in {BENCH_FILE}")
        return 0

    if not args.no_write and not args.smoke:
        payload = write_bench_file(BENCH_FILE, smoke, full)
        rows = speedup_table(payload.get("seed_baseline", []), full)
        if rows:
            print("\nspeedup vs seed baseline:")
            for config, algorithm, before, after, speedup in rows:
                print(
                    f"  {config:>7} {algorithm:<13} "
                    f"{before:>12,.0f} -> {after:>12,.0f} edges/s  "
                    f"({speedup:.1f}x)"
                )
        print(f"\nwrote {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
