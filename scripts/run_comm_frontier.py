#!/usr/bin/env python
"""Comm-budget frontier: smallest word budget each coordinator fits in.

For every coordinator (union, greedy, chain, tree — the protocol merges
in both fixed- and adaptive-τ modes) this sweep binary-searches the
smallest :class:`~repro.distributed.comm.CommBudget` under which the
full route → shard → merge run still completes — ``feasible(b)`` means
no :class:`~repro.errors.CommBudgetError`.  Budget enforcement fires
the moment the running total crosses the cap, so the frontier of a
deterministic run must land exactly on its unmetered
``total_comm_words``; the search verifies the enforcement path agrees
with the meter instead of trusting it.

Each frontier is reported against the worst-case comm the paper's
``2√(nW)·OPT`` analysis permits: one hand-off state carries at most
``n`` uncovered elements, ``2n`` witness words, and two words per
chosen key with at most ``2√(nW)·OPT`` keys chosen, so ``W - 1``
hand-offs total ``(W-1)·(3n + 4√(nW)·OPT)`` words.  The protocol
merges (chain and tree, either τ mode) are asserted to sit under that
ceiling; the union and greedy baselines ship Θ(candidate sets) and
carry their ratio as context only.

Usage::

    PYTHONPATH=src python scripts/run_comm_frontier.py [--quick]
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distributed import run_distributed  # noqa: E402
from repro.distributed.comm import CommBudget  # noqa: E402
from repro.errors import CommBudgetError  # noqa: E402
from repro.generators.planted import planted_partition_instance  # noqa: E402

SEED = 20260808

#: (coordinator, adaptive τ) cells — adaptive only where the merge
#: actually re-estimates (the one-shot union/greedy merges have no τ).
CELLS = (
    ("union", False),
    ("greedy", False),
    ("chain", False),
    ("chain", True),
    ("tree", False),
    ("tree", True),
)


def feasible(instance, workers: int, cell, budget_words: int) -> bool:
    coordinator, adaptive = cell
    try:
        run_distributed(
            instance,
            workers=workers,
            algorithm="kk",
            coordinator=coordinator,
            adaptive_threshold=adaptive,
            seed=SEED,
            backend="serial",
            comm_budget=CommBudget(budget_words, context="frontier probe"),
        )
    except CommBudgetError:
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller instance and W grid (seconds, for CI/smoke use)",
    )
    args = parser.parse_args(argv)

    n, m, opt = (80, 320, 8) if args.quick else (200, 800, 12)
    worker_grid = (4,) if args.quick else (4, 8, 16)
    instance = planted_partition_instance(
        n=n, m=m, opt_size=opt, seed=SEED
    ).instance

    failures = 0
    print(
        f"{'W':>3} {'coordinator':<14} {'frontier':>9} {'metered':>9} "
        f"{'comm bound':>11} {'ratio':>6}  probes"
    )
    for workers in worker_grid:
        bound = (workers - 1) * (
            3 * n + 4 * math.sqrt(n * workers) * opt
        )
        for cell in CELLS:
            coordinator, adaptive = cell
            label = coordinator + ("+adaptive" if adaptive else "")
            unmetered = run_distributed(
                instance,
                workers=workers,
                algorithm="kk",
                coordinator=coordinator,
                adaptive_threshold=adaptive,
                seed=SEED,
                backend="serial",
            )
            unmetered.verify(instance)
            metered = unmetered.total_comm_words
            lo, hi, probes = 1, max(metered, 1), 0
            if not feasible(instance, workers, cell, hi):
                print(f"FAIL W={workers} {label}: infeasible at its own total")
                failures += 1
                continue
            while lo < hi:
                mid = (lo + hi) // 2
                probes += 1
                if feasible(instance, workers, cell, mid):
                    hi = mid
                else:
                    lo = mid + 1
            frontier = lo
            ratio = frontier / bound
            flag = ""
            if frontier != metered:
                flag = "  MISMATCH"
                failures += 1
            elif coordinator in ("chain", "tree") and ratio > 1.0:
                flag = "  OVER BOUND"
                failures += 1
            print(
                f"{workers:>3} {label:<14} {frontier:>9,} {metered:>9,} "
                f"{bound:>11,.0f} {ratio:>6.2f}  {probes}{flag}"
            )
    if failures:
        print(f"{failures} frontier failure(s)")
        return 1
    print(
        "frontier complete: every coordinator's smallest feasible budget "
        "equals its metered total, and the protocol merges sit under the "
        "(W-1)*(3n + 4*sqrt(nW)*OPT) comm ceiling"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
