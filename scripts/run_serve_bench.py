#!/usr/bin/env python
"""Serve-mode load benchmark: write the BENCH_serve.json load surface.

Starts an in-process server, loads a small workload of instances, and
replays one seeded mixed schedule (solve / distribute / chaos cells)
across a grid of (QPS, concurrency) cells — the *same* requests in
every cell, so the surface isolates pacing and contention from
workload.  Each cell records nearest-rank latency percentiles (p50 /
p95 / p99), achieved throughput, outcome counts, admission/rejection
counters, and the server's pool-utilization snapshot into
``BENCH_serve.json`` (schema 1)::

    PYTHONPATH=src python scripts/run_serve_bench.py            # full grid
    PYTHONPATH=src python scripts/run_serve_bench.py --smoke    # CI tier

The benchmark *fails* (exit 1) if any cell records an invalid served
cover — load may slow requests or reject them with typed admission
errors, never corrupt them.  A sandbox that forbids binding localhost
TCP is reported as ``SKIP`` with exit 0 (the PR-8 socket contract).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import TransportError  # noqa: E402
from repro.generators.planted import planted_partition_instance  # noqa: E402
from repro.generators.zipf import zipf_instance  # noqa: E402
from repro.serve import (  # noqa: E402
    InstanceRegistry,
    ServeConfig,
    build_schedule,
    render_serve_report,
    run_load,
    start_server_thread,
    write_serve_report,
)

SEED = 20260808
#: (QPS, concurrency) grid — ≥2 QPS levels × ≥2 concurrency levels.
FULL_GRID = [(25, 2), (25, 8), (100, 2), (100, 8)]
SMOKE_GRID = [(20, 2), (20, 4), (60, 2), (60, 4)]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small request count + low QPS grid (CI tier)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="requests per cell (default: 40 smoke, 200 full)",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_serve.json")
    )
    args = parser.parse_args()

    requests = args.requests or (40 if args.smoke else 200)
    grid = SMOKE_GRID if args.smoke else FULL_GRID

    registry = InstanceRegistry()
    registry.load_instance(
        "planted",
        planted_partition_instance(
            n=300, m=60, opt_size=10, seed=args.seed
        ).instance,
    )
    registry.load_instance(
        "zipf", zipf_instance(n=200, m=80, seed=args.seed)
    )

    config = ServeConfig(port=0)
    try:
        handle = start_server_thread(config, registry)
    except TransportError as exc:
        print(f"SKIP: cannot bind localhost TCP in this sandbox ({exc})")
        return 0

    schedule = build_schedule(
        ["planted", "zipf"], requests=requests, seed=args.seed
    )
    cells = []
    invalid_total = 0
    with handle:
        for qps, concurrency in grid:
            cell = run_load(
                handle.host, handle.port, schedule, qps, concurrency
            )
            cells.append(cell)
            invalid_total += cell.invalid
            print(
                f"cell qps={qps} conc={concurrency}: ok={cell.ok} "
                f"degraded={cell.degraded} "
                f"admission={cell.admission_rejections} "
                f"errors={cell.remote_errors + cell.transport_errors} "
                f"invalid={cell.invalid} p50={cell.latency.p50_ms:.1f}ms "
                f"p99={cell.latency.p99_ms:.1f}ms "
                f"achieved={cell.achieved_qps:.1f}/s"
            )

    payload = write_serve_report(
        Path(args.output),
        cells,
        server_config={
            "space_pool_words": config.space_pool_words,
            "comm_pool_words": config.comm_pool_words,
            "max_queue": config.max_queue,
            "queue_timeout": config.queue_timeout,
            "backend": config.backend,
            "max_workers": config.max_workers,
        },
        workload={
            "seed": args.seed,
            "requests_per_cell": requests,
            "instances": ["planted", "zipf"],
            "tier": "smoke" if args.smoke else "full",
        },
    )
    print()
    print(render_serve_report(payload))
    print(f"\nwrote {args.output}")

    if invalid_total:
        print(
            f"FAIL: {invalid_total} served request(s) returned an invalid "
            "cover — load must never corrupt results"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
