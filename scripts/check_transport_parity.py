#!/usr/bin/env python
"""Transport-parity gate: inproc, loopback, and socket must agree.

The transport contract says the wire is operational: for a fixed
(instance, workers, seed, coordinator) every registered transport must
produce the same cover, the same certificate, and a dataclass-equal
``CommReport`` — the serialized bytes sit on the data path (the
coordinators consume the *delivered* payloads) but never change what is
computed.  On top of parity, every cell's ``TransportReport`` must be
honest: one frame per metered message, and at least eight wire bytes
per metered word (one big-endian int64 each).

The socket cell binds a real localhost listener; a sandbox that forbids
binding raises a typed ``TransportError`` at construction, which this
gate reports as a skip, not a failure.  Exits 1 on the first
divergence.  CI runs it on every push::

    PYTHONPATH=src python scripts/check_transport_parity.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distributed import run_distributed  # noqa: E402
from repro.distributed.transport import (  # noqa: E402
    SocketTransport,
    make_transport,
    registered_transports,
)
from repro.errors import TransportError  # noqa: E402
from repro.generators.planted import planted_partition_instance  # noqa: E402

WORKERS = 4
SEED = 20260808
COORDINATORS = ("union", "greedy", "chain", "tree")
WORD_BYTES = 8


def main() -> int:
    instance = planted_partition_instance(
        n=400, m=80, opt_size=12, seed=SEED
    ).instance
    failures = 0
    skipped = []
    for coordinator in COORDINATORS:
        reference = None
        for name in registered_transports():
            if name == "socket":
                try:
                    transport = SocketTransport()
                except TransportError as exc:
                    skipped.append(f"{coordinator}/socket ({exc})")
                    continue
            else:
                transport = make_transport(name)
            result = run_distributed(
                instance,
                workers=WORKERS,
                algorithm="kk",
                coordinator=coordinator,
                seed=SEED,
                transport=transport,
            )
            result.verify(instance)
            cell = f"{coordinator}/{name}"
            wire, comm = result.transport, result.comm
            if reference is None:
                reference = result
            elif result != reference:
                # TransportReport is compare=False: inequality here means
                # the wire changed the cover/certificate/comm — the one
                # thing a transport must never do.
                print(f"FAIL {cell}: DistributedResult diverged from inproc")
                failures += 1
                continue
            elif comm != reference.comm:
                print(f"FAIL {cell}: CommReport diverged from inproc")
                failures += 1
                continue
            if wire is None or wire.transport != name:
                got = None if wire is None else wire.transport
                print(f"FAIL {cell}: TransportReport names {got!r}")
                failures += 1
            elif wire.per_link_frames != comm.per_link_messages:
                print(
                    f"FAIL {cell}: frames {wire.per_link_frames} != "
                    f"metered messages {comm.per_link_messages}"
                )
                failures += 1
            elif wire.total_bytes < WORD_BYTES * comm.total_words:
                print(
                    f"FAIL {cell}: {wire.total_bytes} wire bytes undercount "
                    f"{comm.total_words} metered words"
                )
                failures += 1
            else:
                print(
                    f"ok   {cell} ({wire.total_bytes:,}B in "
                    f"{wire.total_frames} frames, "
                    f"x{wire.overhead_ratio:.3f} bytes/word)"
                )
    for cell in skipped:
        print(f"skip {cell}")
    if failures:
        print(f"{failures} transport-parity failure(s)")
        return 1
    print(
        "transport parity holds: covers, certificates, and comm reports "
        "identical across transports; wire accounting honest"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
