#!/usr/bin/env python
"""Run the fault-injection chaos sweep and assert the degradation invariant.

Usage
-----
Full grid — every registered algorithm × every fault kind × rates
{0.01, 0.1, 0.5} × {round-robin, random} arrival — exiting 1 if any
cell ends in a bare exception or a silently wrong answer::

    PYTHONPATH=src python scripts/run_chaos.py

CI smoke tier (two algorithms, one rate)::

    PYTHONPATH=src python scripts/run_chaos.py --smoke --seed $RUN_NUMBER

The seed rotates in CI so successive runs explore different fault
placements; any failing cell prints its own seed and reproduces
standalone via ``repro.analysis.chaos.run_chaos_cell``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.chaos import run_chaos  # noqa: E402
from repro.faults.resilient import POLICIES  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small grid (two algorithms, one rate) for CI smoke",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--policy",
        choices=list(POLICIES),
        default="best_effort",
        help="degradation policy for every cell (default best_effort)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="render the table as Markdown"
    )
    args = parser.parse_args(argv)

    report = run_chaos(seed=args.seed, quick=args.smoke, policy=args.policy)
    print(report.render(markdown=args.markdown))
    violations = report.violations()
    if violations:
        print(
            f"\nchaos invariant VIOLATED in {len(violations)} of "
            f"{len(report.rows)} cells:",
            file=sys.stderr,
        )
        for cell in violations:
            print(
                f"  {cell.algorithm} × {cell.fault_kind}@{cell.rate} × "
                f"{cell.order} (seed={cell.seed}): {cell.detail}",
                file=sys.stderr,
            )
        return 1
    print(
        f"\nchaos invariant holds over {len(report.rows)} cells "
        f"(policy={args.policy}, seed={args.seed})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
