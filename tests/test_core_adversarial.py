"""Tests for Algorithm 2 (Theorem 4): levels, inclusion, space."""

from __future__ import annotations

import math

import pytest

from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.errors import ConfigurationError
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.streaming.orders import RandomOrder, RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream, stream_of


def run_on(instance, alpha, seed=1, order=None):
    order = order if order is not None else RandomOrder(seed=seed)
    algorithm = LowSpaceAdversarialAlgorithm(alpha=alpha, seed=seed)
    return algorithm.run(stream_of(instance, order))


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_cover(self, seed):
        instance = fixed_size_instance(64, 256, set_size=8, seed=seed)
        result = run_on(instance, alpha=16, seed=seed)
        result.verify(instance)

    def test_valid_on_adversarial_order(self):
        instance = fixed_size_instance(64, 256, set_size=8, seed=3)
        result = run_on(
            instance, alpha=16, seed=3, order=RoundRobinInterleaveOrder(seed=3)
        )
        result.verify(instance)

    def test_tiny_instance(self, tiny_instance):
        result = run_on(tiny_instance, alpha=2, seed=4)
        result.verify(tiny_instance)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ConfigurationError):
            LowSpaceAdversarialAlgorithm(alpha=0.5)


class TestInclusionProbability:
    def test_p0_is_alpha_over_m(self):
        algorithm = LowSpaceAdversarialAlgorithm(alpha=20)
        assert algorithm.inclusion_probability(0, 100, 1000) == pytest.approx(
            20 / 1000
        )

    def test_level_formula(self):
        """p_ℓ = α^(2ℓ+1)/(m·nˡ) — line 20 of Algorithm 2."""
        alpha, n, m = 20.0, 100, 10**6
        algorithm = LowSpaceAdversarialAlgorithm(alpha=alpha)
        for level in (1, 2, 3):
            expected = alpha ** (2 * level + 1) / (m * n**level)
            assert algorithm.inclusion_probability(level, n, m) == pytest.approx(
                min(1.0, expected), rel=1e-9
            )

    def test_geometric_ratio_alpha2_over_n(self):
        """p_ℓ / p_{ℓ-1} = α²/n, the (α²/n)ˡ·p₀ form."""
        alpha, n, m = 30.0, 144, 10**7
        algorithm = LowSpaceAdversarialAlgorithm(alpha=alpha)
        p1 = algorithm.inclusion_probability(1, n, m)
        p2 = algorithm.inclusion_probability(2, n, m)
        assert p2 / p1 == pytest.approx(alpha * alpha / n)

    def test_capped_at_one(self):
        algorithm = LowSpaceAdversarialAlgorithm(alpha=1000)
        assert algorithm.inclusion_probability(5, 10, 10) == 1.0

    def test_no_overflow_at_huge_level(self):
        algorithm = LowSpaceAdversarialAlgorithm(alpha=50)
        p = algorithm.inclusion_probability(500, 100, 10**6)
        assert 0.0 <= p <= 1.0


class TestSpaceScaling:
    def test_level_map_shrinks_with_alpha(self):
        """Doubling α should shrink the level map ~4x (Õ(m·n/α²))."""
        instance = fixed_size_instance(100, 2000, set_size=10, seed=5)
        replayable = ReplayableStream(instance, RandomOrder(seed=5))
        small = LowSpaceAdversarialAlgorithm(alpha=20, seed=5).run(
            replayable.fresh()
        )
        big = LowSpaceAdversarialAlgorithm(alpha=80, seed=5).run(
            replayable.fresh()
        )
        ratio = small.diagnostics["level_map_peak"] / max(
            1.0, big.diagnostics["level_map_peak"]
        )
        assert ratio > 4  # theory predicts 16; leave stochastic headroom

    def test_promotion_rate_is_one_over_alpha(self):
        """Promotions over uncovered-edge arrivals ≈ 1/α."""
        instance = fixed_size_instance(200, 500, set_size=10, seed=6)
        alpha = 25.0
        result = run_on(instance, alpha=alpha, seed=6)
        promotions = result.diagnostics["promotions"]
        # Uncovered arrivals <= total edges; promotions <= N/alpha ish.
        assert promotions <= 2 * instance.num_edges / alpha
        assert promotions > 0


class TestQuality:
    def test_cover_grows_with_alpha(self):
        planted = planted_partition_instance(100, 1000, opt_size=10, seed=7)
        replayable = ReplayableStream(planted.instance, RandomOrder(seed=7))
        small = LowSpaceAdversarialAlgorithm(alpha=20, seed=7).run(
            replayable.fresh()
        )
        big = LowSpaceAdversarialAlgorithm(alpha=160, seed=7).run(
            replayable.fresh()
        )
        assert big.cover_size >= small.cover_size

    def test_ratio_bounded_by_alpha_logm(self):
        n = 100
        alpha = 2 * math.sqrt(n)
        planted = planted_partition_instance(n, 800, opt_size=10, seed=8)
        result = run_on(planted.instance, alpha=alpha, seed=8)
        ratio = result.cover_size / planted.opt_upper_bound
        assert ratio <= alpha * math.log2(planted.instance.m)


class TestMechanism:
    def test_d0_size_near_alpha(self):
        instance = fixed_size_instance(100, 4000, set_size=10, seed=9)
        result = run_on(instance, alpha=40, seed=9)
        # E|D0| = alpha; allow wide stochastic band.
        assert 10 <= result.diagnostics["d0_size"] <= 120

    def test_diagnostics_present(self):
        instance = fixed_size_instance(50, 100, set_size=5, seed=10)
        result = run_on(instance, alpha=14, seed=10)
        for key in ("alpha", "promotions", "max_level", "level_map_peak"):
            assert key in result.diagnostics

    def test_deterministic_under_seed(self):
        instance = fixed_size_instance(50, 100, set_size=5, seed=11)
        replayable = ReplayableStream(instance, RandomOrder(seed=11))
        a = LowSpaceAdversarialAlgorithm(alpha=14, seed=11).run(
            replayable.fresh()
        )
        b = LowSpaceAdversarialAlgorithm(alpha=14, seed=11).run(
            replayable.fresh()
        )
        assert a.cover == b.cover
