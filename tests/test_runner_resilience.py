"""Tests for the experiment runner's failure handling.

Covers the resilience contract: worker failures re-raised with full
spec context, bounded retry with derived seeds (bit-identical to serial
for transient failures), cooperative timeouts, and journal-based
checkpoint/resume whose resumed results match an uninterrupted sweep.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.journal import SweepJournal, spec_fingerprint
from repro.analysis.runner import ExperimentRunner, derive_retry_seed
from repro.baselines.trivial import FirstFitAlgorithm
from repro.core.kk import KKAlgorithm
from repro.errors import ExperimentExecutionError, RunTimeoutError
from repro.generators.planted import planted_partition_instance


class BoomAlgorithm(FirstFitAlgorithm):
    name = "boom"

    def _run(self, stream):
        raise ValueError("boom")


class SleepyAlgorithm(FirstFitAlgorithm):
    name = "sleepy"

    def _run(self, stream):
        time.sleep(0.02)
        return super()._run(stream)


@pytest.fixture(scope="module")
def instance():
    return planted_partition_instance(n=20, m=12, opt_size=3, seed=5).instance


def make_runner(seed=7, algorithms=None):
    algorithms = algorithms or {
        "first-fit": lambda s: FirstFitAlgorithm(seed=s),
        "kk": lambda s: KKAlgorithm(seed=s),
    }
    return ExperimentRunner(algorithms, seed=seed)


class TestDeriveRetrySeed:
    def test_first_two_attempts_reuse_the_seed(self):
        assert derive_retry_seed(123, 0) == 123
        assert derive_retry_seed(123, 1) == 123

    def test_later_attempts_remix_deterministically(self):
        assert derive_retry_seed(123, 2) != 123
        assert derive_retry_seed(123, 2) == derive_retry_seed(123, 2)
        assert derive_retry_seed(123, 2) != derive_retry_seed(123, 3)
        assert 0 <= derive_retry_seed(123, 2) < 2**63


class TestErrorWrapping:
    def test_worker_error_carries_spec_context(self, instance):
        runner = make_runner(algorithms={"boom": lambda s: BoomAlgorithm(seed=s)})
        with pytest.raises(ExperimentExecutionError) as excinfo:
            runner.compare(instance, "random")
        error = excinfo.value
        assert error.algorithm == "boom"
        assert error.order == "random"
        assert error.spec_index == 0
        assert error.attempts == 1
        assert isinstance(error.__cause__, ValueError)
        assert "boom" in str(error)
        assert "seed=" in str(error)

    def test_parallel_worker_error_also_wrapped(self, instance):
        runner = make_runner(
            algorithms={
                "first-fit": lambda s: FirstFitAlgorithm(seed=s),
                "boom": lambda s: BoomAlgorithm(seed=s),
            }
        )
        with pytest.raises(ExperimentExecutionError):
            runner.compare(instance, "random", replications=2, max_workers=4)

    def test_invalid_knobs_rejected(self, instance):
        runner = make_runner()
        with pytest.raises(ValueError, match="max_workers"):
            runner.compare(instance, "random", max_workers=0)
        with pytest.raises(ValueError, match="retries"):
            runner.compare(instance, "random", retries=-1)


class TestRetry:
    def test_transient_failure_retried_bit_identical(self, instance):
        baseline = make_runner().compare(instance, "random", replications=2)
        runner = make_runner()
        attempts = []

        def hook(index, attempt):
            attempts.append((index, attempt))
            if index == 1 and attempt == 0:
                raise RuntimeError("transient worker death")

        runner._fault_hook = hook
        retried = runner.compare(instance, "random", replications=2, retries=1)
        assert retried == baseline
        assert (1, 0) in attempts and (1, 1) in attempts

    def test_exhausted_retries_wrap_the_last_error(self, instance):
        runner = make_runner()
        runner._fault_hook = lambda index, attempt: (_ for _ in ()).throw(
            RuntimeError("always down")
        )
        with pytest.raises(ExperimentExecutionError) as excinfo:
            runner.compare(instance, "random", retries=2)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, RuntimeError)


class TestTimeout:
    def test_slow_run_raises_run_timeout(self, instance):
        runner = make_runner(
            algorithms={"sleepy": lambda s: SleepyAlgorithm(seed=s)}
        )
        with pytest.raises(RunTimeoutError) as excinfo:
            runner.compare(instance, "random", timeout=0.001)
        assert excinfo.value.elapsed > excinfo.value.timeout

    def test_timeouts_are_never_retried(self, instance):
        runner = make_runner(
            algorithms={"sleepy": lambda s: SleepyAlgorithm(seed=s)}
        )
        attempts = []
        runner._fault_hook = lambda index, attempt: attempts.append(attempt)
        with pytest.raises(RunTimeoutError):
            runner.compare(instance, "random", timeout=0.001, retries=5)
        assert attempts == [0]

    def test_fast_run_unaffected(self, instance):
        baseline = make_runner().compare(instance, "random")
        timed = make_runner().compare(instance, "random", timeout=60.0)
        assert timed == baseline


class TestJournal:
    def test_resumed_sweep_is_bit_identical(self, instance, tmp_path):
        baseline = make_runner().compare(instance, "random", replications=3)
        journal = tmp_path / "sweep.jsonl"

        crashing = make_runner()

        def hook(index, attempt):
            if index >= 3:
                raise RuntimeError("simulated kill")

        crashing._fault_hook = hook
        with pytest.raises(ExperimentExecutionError):
            crashing.compare(
                instance, "random", replications=3, journal=journal
            )
        assert len(SweepJournal(journal)) == 3  # cells 0-2 checkpointed

        resumed = make_runner().compare(
            instance, "random", replications=3, journal=journal
        )
        assert resumed == baseline

    def test_completed_cells_never_re_execute(self, instance, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = make_runner().compare(instance, "random", journal=journal)

        rerun = make_runner()
        rerun._fault_hook = lambda index, attempt: (_ for _ in ()).throw(
            RuntimeError("must not execute")
        )
        again = rerun.compare(instance, "random", journal=journal)
        assert again == first

    def test_parallel_with_journal_matches_serial(self, instance, tmp_path):
        baseline = make_runner().compare(instance, "random", replications=3)
        parallel = make_runner().compare(
            instance,
            "random",
            replications=3,
            max_workers=4,
            journal=tmp_path / "par.jsonl",
        )
        assert parallel == baseline

    def test_torn_final_line_is_tolerated(self, instance, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        baseline = make_runner().compare(
            instance, "random", replications=2, journal=journal
        )
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "0|kk|random|1|truncated mid-wri')
        resumed = make_runner().compare(
            instance, "random", replications=2, journal=journal
        )
        assert resumed == baseline

    def test_fingerprint_distinguishes_grid_position(self):
        a = spec_fingerprint(0, "kk", "random", 1, 10, 5, 50)
        b = spec_fingerprint(1, "kk", "random", 1, 10, 5, 50)
        assert a != b

    def test_journal_round_trip_preserves_metrics(self, instance, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        rows = make_runner().compare(instance, "random", journal=journal_path)
        reloaded = SweepJournal(journal_path)
        assert len(reloaded) == len(rows)
