"""Admission control: every arrow of the DESIGN.md §14 state machine.

The pool's contract: immediate grant only when the queue is empty and
the request fits; FIFO queueing with no overtaking; typed
:class:`AdmissionError` on every rejection path (exceeds-capacity,
queue-full, timed-out, shutting-down) carrying requested/available
words, queue depth, and the advisory retry-after hint; release is
idempotent and re-admits queued waiters in order; shutdown evicts the
queue with typed errors and refuses new leases.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import AdmissionError, InvalidParameterError
from repro.serve.admission import (
    REJECT_EXCEEDS_CAPACITY,
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
    REJECT_TIMED_OUT,
    ResourcePool,
)


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    def test_capacities_must_be_positive_ints(self):
        for bad in (0, -5, 2.5, "100"):
            with pytest.raises(InvalidParameterError):
                ResourcePool(space_words=bad, comm_words=10)
            with pytest.raises(InvalidParameterError):
                ResourcePool(space_words=10, comm_words=bad)

    def test_negative_lease_request_is_typed(self):
        async def scenario():
            pool = ResourcePool(space_words=10, comm_words=10)
            with pytest.raises(InvalidParameterError):
                await pool.lease(space_words=-1)
            with pytest.raises(InvalidParameterError):
                await pool.lease(comm_words=-1)

        run(scenario())


class TestGrantAndRelease:
    def test_grant_tracks_words_and_peaks(self):
        async def scenario():
            pool = ResourcePool(space_words=100, comm_words=50)
            a = await pool.lease(space_words=60, comm_words=10)
            b = await pool.lease(space_words=30, comm_words=20)
            assert pool.available_space == 10
            assert pool.available_comm == 20
            stats = pool.stats()
            assert stats.active_leases == 2
            assert stats.peak_space_words == 90
            assert stats.peak_comm_words == 30
            pool.release(a)
            pool.release(b)
            final = pool.stats()
            assert final.leased_space_words == 0
            assert final.active_leases == 0
            assert final.admitted == 2
            assert final.completed == 2
            assert final.peak_space_words == 90  # peaks persist

        run(scenario())

    def test_release_is_idempotent(self):
        async def scenario():
            pool = ResourcePool(space_words=100, comm_words=50)
            lease = await pool.lease(space_words=40)
            pool.release(lease)
            pool.release(lease)
            assert pool.available_space == 100
            assert pool.stats().completed == 1

        run(scenario())

    def test_zero_word_lease_is_fine(self):
        async def scenario():
            pool = ResourcePool(space_words=10, comm_words=10)
            lease = await pool.lease()
            assert pool.stats().active_leases == 1
            pool.release(lease)

        run(scenario())


class TestRejections:
    def test_exceeds_capacity_never_queues(self):
        async def scenario():
            pool = ResourcePool(space_words=100, comm_words=50)
            with pytest.raises(AdmissionError) as excinfo:
                await pool.lease(space_words=101)
            error = excinfo.value
            assert error.reason == REJECT_EXCEEDS_CAPACITY
            assert error.retry_after is None  # retrying cannot succeed
            assert error.requested_space_words == 101
            assert error.available_space_words == 100
            assert pool.stats().rejections == {REJECT_EXCEEDS_CAPACITY: 1}

        run(scenario())

    def test_queue_full_carries_retry_after(self):
        async def scenario():
            pool = ResourcePool(space_words=100, comm_words=50, max_queue=1)
            blocker = await pool.lease(space_words=100)
            queued = asyncio.ensure_future(pool.lease(space_words=10))
            await asyncio.sleep(0)  # let it enqueue
            with pytest.raises(AdmissionError) as excinfo:
                await pool.lease(space_words=10)
            error = excinfo.value
            assert error.reason == REJECT_QUEUE_FULL
            assert error.retry_after is not None and error.retry_after > 0
            assert error.queue_depth == 1
            pool.release(blocker)
            pool.release(await queued)

        run(scenario())

    def test_queue_timeout_is_typed(self):
        async def scenario():
            pool = ResourcePool(
                space_words=100, comm_words=50, queue_timeout=0.05
            )
            blocker = await pool.lease(space_words=100)
            with pytest.raises(AdmissionError) as excinfo:
                await pool.lease(space_words=10)
            assert excinfo.value.reason == REJECT_TIMED_OUT
            assert excinfo.value.retry_after is not None
            pool.release(blocker)
            # The timed-out waiter must not linger in the queue.
            assert pool.stats().queue_depth == 0
            # And the pool still grants normally afterwards.
            pool.release(await pool.lease(space_words=10))

        run(scenario())


class TestQueueDiscipline:
    def test_fifo_no_overtaking(self):
        """A small request must not overtake a large one at the head."""

        async def scenario():
            pool = ResourcePool(space_words=100, comm_words=50)
            blocker = await pool.lease(space_words=80)
            order = []

            async def queued(tag, words):
                lease = await pool.lease(space_words=words)
                order.append(tag)
                return lease

            big = asyncio.ensure_future(queued("big", 90))
            await asyncio.sleep(0)
            small = asyncio.ensure_future(queued("small", 10))
            await asyncio.sleep(0)
            # 20 words are free and the small request would fit — but
            # the big request is at the head, so nothing is granted.
            assert pool.stats().queue_depth == 2
            assert not big.done() and not small.done()
            pool.release(blocker)
            leases = await asyncio.gather(big, small)
            assert order == ["big", "small"]
            for lease in leases:
                pool.release(lease)

        run(scenario())

    def test_queue_grants_on_release(self):
        async def scenario():
            pool = ResourcePool(space_words=100, comm_words=50)
            first = await pool.lease(space_words=100)
            waiting = asyncio.ensure_future(pool.lease(space_words=50))
            await asyncio.sleep(0)
            assert pool.stats().queued_total == 1
            pool.release(first)
            second = await waiting
            assert pool.available_space == 50
            pool.release(second)

        run(scenario())


class TestShutdown:
    def test_shutdown_evicts_queue_with_typed_errors(self):
        async def scenario():
            pool = ResourcePool(space_words=100, comm_words=50)
            blocker = await pool.lease(space_words=100)
            queued = [
                asyncio.ensure_future(pool.lease(space_words=10))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            evicted = await pool.shutdown()
            assert evicted == 3
            for future in queued:
                with pytest.raises(AdmissionError) as excinfo:
                    await future
                assert excinfo.value.reason == REJECT_SHUTTING_DOWN
            # Active leases drain normally.
            pool.release(blocker)
            # New leases are refused outright.
            with pytest.raises(AdmissionError) as excinfo:
                await pool.lease(space_words=1)
            assert excinfo.value.reason == REJECT_SHUTTING_DOWN

        run(scenario())


class TestStats:
    def test_as_dict_is_primitive_and_complete(self):
        async def scenario():
            pool = ResourcePool(space_words=200, comm_words=100)
            lease = await pool.lease(space_words=50, comm_words=10)
            stats = pool.stats().as_dict()
            assert stats["space_capacity_words"] == 200
            assert stats["leased_space_words"] == 50
            assert stats["space_utilization"] == pytest.approx(0.25)
            assert stats["rejected"] == 0
            assert isinstance(stats["rejections"], dict)
            pool.release(lease)

        run(scenario())
