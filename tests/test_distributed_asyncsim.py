"""Asynchronous delivery simulation: scheduler mechanics and parity.

The contracts from ``repro/distributed/asyncsim.py``:

1. **Scheduler mechanics** — the logical clock idles to the earliest
   availability and advances one step per delivery; link delays and
   explicit availability steps are honoured; FIFO delivers in posting
   order; a fixed priority reorders exactly as ranked; a policy
   returning a bad index is a typed :class:`ProtocolError`.
2. **Parity** — for every coordinator, 50 seeded random delivery
   schedules (no faults) produce covers, certificates, and comm
   reports identical to the synchronous path, message logs included;
   and *every* delivery permutation of a small star run agrees
   (exhaustive :class:`FixedDelivery` sweep).
3. **Robust delivery** — duplicated uploads are deduplicated and
   counted, never merged twice; quorum-degraded async merges are
   valid partial covers with explicit degradation records.
"""

from __future__ import annotations

import itertools

import pytest

from repro.distributed import run_distributed
from repro.distributed.asyncsim import (
    AsyncScheduler,
    DeliveryPolicy,
    FifoDelivery,
    FixedDelivery,
    Message,
    RandomDelivery,
    run_distributed_async,
)
from repro.errors import (
    InvalidParameterError,
    ProtocolError,
    ShardCrashError,
)
from repro.faults.shards import PERMANENT, ShardFaultPlan, ShardFaultSpec
from repro.generators.planted import planted_partition_instance
from repro.obs.tracer import TraceCollector

COORDINATORS = ("union", "greedy", "chain", "tree")


@pytest.fixture(scope="module")
def instance():
    return planted_partition_instance(40, 80, opt_size=4, seed=11).instance


class TestScheduler:
    def test_clock_idles_to_availability_then_ticks(self):
        sched = AsyncScheduler(default_delay=5)
        sched.post("a", "b", kind="x")
        message = sched.deliver_next()
        assert message is not None
        # Idled 0 -> 5, then one tick for the delivery itself.
        assert sched.clock == 6
        assert sched.idle_ticks == 5
        assert sched.delivered == 1
        assert sched.inbox("b") == [message]

    def test_per_link_delay_overrides_default(self):
        sched = AsyncScheduler(
            link_delays={"a->b": 0, "a->c": 7}, default_delay=3
        )
        assert sched.link_delay("a", "b") == 0
        assert sched.link_delay("a", "c") == 7
        assert sched.link_delay("x", "y") == 3

    def test_explicit_availability_step_wins(self):
        sched = AsyncScheduler(default_delay=1)
        sched.post("a", "b", kind="x", available_step=9)
        sched.deliver_next()
        assert sched.clock == 10
        assert sched.idle_ticks == 9

    def test_fifo_delivers_in_posting_order(self):
        sched = AsyncScheduler(policy=FifoDelivery(), default_delay=0)
        for i in range(4):
            sched.post("a", "b", kind="x", payload=i)
        delivered = [m.payload for m in sched.drain()]
        assert delivered == [0, 1, 2, 3]
        # No idling needed at delay 0: clock counts deliveries only.
        assert sched.clock == 4
        assert sched.idle_ticks == 0

    def test_fixed_priority_reorders_available_messages(self):
        sched = AsyncScheduler(
            policy=FixedDelivery([2, 0, 1]), default_delay=0
        )
        for i in range(3):
            sched.post("a", "b", kind="x", payload=i)
        assert [m.payload for m in sched.drain()] == [2, 0, 1]

    def test_fixed_priority_unranked_falls_back_to_seq(self):
        sched = AsyncScheduler(policy=FixedDelivery([3]), default_delay=0)
        for i in range(4):
            sched.post("a", "b", kind="x", payload=i)
        assert [m.payload for m in sched.drain()] == [3, 0, 1, 2]

    def test_priority_cannot_deliver_the_unavailable(self):
        # Message 1 is ranked first but only available at step 10; the
        # policy chooses among *deliverable* messages, so message 0
        # (available immediately) lands first regardless of rank.
        sched = AsyncScheduler(policy=FixedDelivery([1, 0]), default_delay=0)
        sched.post("a", "b", kind="x", payload=0)
        sched.post("a", "b", kind="x", payload=1, available_step=10)
        assert [m.payload for m in sched.drain()] == [0, 1]

    def test_random_delivery_is_seed_deterministic(self):
        def schedule(seed):
            sched = AsyncScheduler(
                policy=RandomDelivery(seed), default_delay=0
            )
            for i in range(6):
                sched.post("a", "b", kind="x", payload=i)
            return [m.payload for m in sched.drain()]

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)  # 1/720 collision odds; fixed seeds

    def test_bad_policy_choice_is_protocol_error(self):
        class Broken(DeliveryPolicy):
            name = "broken"

            def choose(self, deliverable):
                return len(deliverable)

        sched = AsyncScheduler(policy=Broken(), default_delay=0)
        sched.post("a", "b", kind="x")
        with pytest.raises(ProtocolError, match="broken"):
            sched.deliver_next()

    def test_negative_delays_rejected(self):
        with pytest.raises(InvalidParameterError):
            AsyncScheduler(default_delay=-1)
        with pytest.raises(InvalidParameterError):
            AsyncScheduler(link_delays={"a->b": -2})

    def test_message_link_label(self):
        message = Message(
            seq=0, src="shard[0]", dst="coordinator", kind="envelope",
            words=3, payload=0, posted_step=0, available_step=1,
        )
        assert message.link == "shard[0]->coordinator"


class TestSchedulePermutationParity:
    """The acceptance criterion: delivery order is never semantic."""

    @pytest.mark.parametrize("coordinator", COORDINATORS)
    def test_fifty_random_schedules_match_sync(self, instance, coordinator):
        sync = run_distributed(
            instance,
            workers=4,
            algorithm="kk",
            strategy="by-set",
            coordinator=coordinator,
            seed=17,
            backend="serial",
            comm_log=True,
        )
        for schedule_seed in range(50):
            result = run_distributed_async(
                instance,
                workers=4,
                algorithm="kk",
                strategy="by-set",
                coordinator=coordinator,
                seed=17,
                backend="serial",
                comm_log=True,
                schedule_seed=schedule_seed,
            )
            assert result.cover == sync.cover, schedule_seed
            assert result.certificate == sync.certificate, schedule_seed
            assert result.comm == sync.comm, schedule_seed
            assert result.diagnostics["schedule_seed"] == schedule_seed

    @pytest.mark.parametrize("coordinator", ("union", "greedy"))
    def test_every_delivery_permutation_agrees(self, instance, coordinator):
        # A 3-shard star run posts exactly 3 uploads: 6 permutations,
        # all of which must merge identically.
        results = []
        for priority in itertools.permutations(range(3)):
            results.append(
                run_distributed_async(
                    instance,
                    workers=3,
                    coordinator=coordinator,
                    seed=3,
                    backend="serial",
                    comm_log=True,
                    delivery=FixedDelivery(priority),
                )
            )
        first = results[0]
        assert first.is_valid(instance)
        for other in results[1:]:
            assert other.cover == first.cover
            assert other.certificate == first.certificate
            assert other.comm == first.comm

    def test_async_trace_replays_byte_identically(self, instance):
        def run_once():
            collector = TraceCollector()
            run_distributed_async(
                instance,
                workers=4,
                coordinator="union",
                seed=5,
                backend="serial",
                collector=collector,
                schedule_seed=99,
            )
            return collector.to_jsonl()

        assert run_once() == run_once()


class TestAsyncDiagnostics:
    def test_transport_diagnostics_present(self, instance):
        result = run_distributed_async(
            instance, workers=4, coordinator="union", seed=1, backend="serial"
        )
        diag = result.diagnostics
        assert diag["delivered_messages"] == 4.0
        assert diag["logical_steps"] >= diag["delivered_messages"]
        assert diag["idle_ticks"] >= 0.0
        assert diag["duplicates_dropped"] == 0.0

    def test_chain_critical_path_grows_with_workers(self, instance):
        def steps(workers):
            return run_distributed_async(
                instance,
                workers=workers,
                coordinator="chain",
                seed=1,
                backend="serial",
            ).diagnostics

        # One wait per hand-off: idle ticks count the chain's
        # sequential dependency, W-1 of them at unit link delay.
        assert steps(2)["idle_ticks"] == 1.0
        assert steps(4)["idle_ticks"] == 3.0
        assert steps(8)["idle_ticks"] == 7.0

    def test_tree_critical_path_grows_logarithmically(self, instance):
        def diag(workers):
            return run_distributed_async(
                instance,
                workers=workers,
                coordinator="tree",
                seed=1,
                backend="serial",
            ).diagnostics

        # One idle tick per *round*, not per hand-off: ceil(log2 W)
        # waits, each delivering the whole round as one batch.
        assert diag(2)["idle_ticks"] == 1.0
        assert diag(4)["idle_ticks"] == 2.0
        assert diag(8)["idle_ticks"] == 3.0
        assert diag(8)["logical_steps"] == 6.0
        assert diag(8)["merge_rounds"] == 3.0

    def test_tree_beats_chain_at_width(self, instance):
        def steps(coordinator):
            return run_distributed_async(
                instance,
                workers=8,
                coordinator=coordinator,
                seed=1,
                backend="serial",
            ).diagnostics["logical_steps"]

        assert steps("tree") < steps("chain")


class TestDuplicateDelivery:
    @pytest.mark.parametrize("coordinator", COORDINATORS)
    def test_duplicates_dropped_not_merged_twice(self, instance, coordinator):
        plan = ShardFaultPlan(
            specs={1: ShardFaultSpec(duplicate=True)}
        )
        clean = run_distributed_async(
            instance,
            workers=4,
            coordinator=coordinator,
            seed=23,
            backend="serial",
            schedule_seed=7,
        )
        noisy = run_distributed_async(
            instance,
            workers=4,
            coordinator=coordinator,
            seed=23,
            backend="serial",
            schedule_seed=7,
            shard_faults=plan,
        )
        assert noisy.cover == clean.cover
        assert noisy.certificate == clean.certificate
        assert noisy.diagnostics["duplicates_dropped"] == 1.0
        assert noisy.diagnostics["shards_lost"] == 0.0


class TestAsyncDegradedQuorum:
    @pytest.mark.parametrize("coordinator", COORDINATORS)
    def test_crash_with_quorum_met_degrades_explicitly(
        self, instance, coordinator
    ):
        plan = ShardFaultPlan(
            specs={2: ShardFaultSpec(crash_attempts=PERMANENT)}
        )
        result = run_distributed_async(
            instance,
            workers=4,
            coordinator=coordinator,
            seed=9,
            backend="serial",
            shard_faults=plan,
            min_shards=2,
        )
        assert result.diagnostics["shards_lost"] == 1.0
        assert len(result.degradations) == 1
        record = result.degradations[0]
        assert record.policy == "quorum-degraded"
        assert record.details["shard"] == 2.0
        result.verify(instance, allow_partial=True)
        assert set(result.uncovered) == instance.uncovered_by(result.cover)

    def test_quorum_not_met_raises_typed_error(self, instance):
        plan = ShardFaultPlan(
            specs={
                0: ShardFaultSpec(crash_attempts=PERMANENT),
                1: ShardFaultSpec(crash_attempts=PERMANENT),
                2: ShardFaultSpec(crash_attempts=PERMANENT),
            }
        )
        with pytest.raises(ShardCrashError, match="quorum not met"):
            run_distributed_async(
                instance,
                workers=4,
                coordinator="union",
                seed=9,
                backend="serial",
                shard_faults=plan,
                min_shards=2,
            )


class TestAsyncParameterValidation:
    def test_min_shards_out_of_range(self, instance):
        with pytest.raises(InvalidParameterError, match="min_shards"):
            run_distributed_async(
                instance, workers=4, min_shards=5, backend="serial"
            )

    def test_max_workers_must_be_positive(self, instance):
        with pytest.raises(InvalidParameterError, match="max_workers"):
            run_distributed_async(instance, workers=4, max_workers=0)

    def test_unknown_coordinator_fails_fast(self, instance):
        with pytest.raises(InvalidParameterError, match="coordinator"):
            run_distributed_async(
                instance, workers=4, coordinator="bogus", backend="serial"
            )
