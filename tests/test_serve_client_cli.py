"""The shared comm-budget helper, the client library, and the CLI.

Satellite regression (PR 9): ``--comm-budget 0`` and negative values
must raise the typed :class:`InvalidParameterError` at the entry point
— in the batch ``distribute`` command, the serve path, and the client
CLI — instead of surfacing a deep meter error mid-merge.  All three
paths now construct budgets through one helper
(:func:`repro.distributed.comm.make_comm_budget`), tested here.

The CLI end-to-end tests drive ``main([...])`` against a live in-process
server (skipped where the sandbox forbids binding).
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.distributed.comm import CommBudget, make_comm_budget
from repro.errors import InvalidParameterError, TransportError
from repro.generators.planted import planted_partition_instance
from repro.serve import (
    InstanceRegistry,
    ServeConfig,
    start_server_thread,
)
from repro.streaming.io import dump_instance


def make_instance(seed: int = 4):
    return planted_partition_instance(60, 24, opt_size=5, seed=seed).instance


@pytest.fixture()
def instance_file(tmp_path):
    path = tmp_path / "instance.txt"
    dump_instance(make_instance(), str(path))
    return str(path)


@pytest.fixture(scope="module")
def handle():
    registry = InstanceRegistry()
    registry.load_instance("demo", make_instance())
    try:
        server = start_server_thread(ServeConfig(port=0), registry)
    except TransportError as exc:
        pytest.skip(f"sandbox forbids binding localhost TCP: {exc}")
    with server:
        yield server


class TestMakeCommBudget:
    def test_none_means_unmetered(self):
        assert make_comm_budget(None) is None

    def test_positive_builds_budget(self):
        budget = make_comm_budget(500, context="test")
        assert isinstance(budget, CommBudget)
        assert budget.words == 500

    def test_zero_is_typed(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            make_comm_budget(0)
        assert excinfo.value.parameter == "comm_budget"
        assert "positive" in str(excinfo.value)

    def test_negative_is_typed(self):
        with pytest.raises(InvalidParameterError):
            make_comm_budget(-100)

    def test_bool_and_non_int_are_typed(self):
        for bad in (True, 1.5, "100"):
            with pytest.raises(InvalidParameterError):
                make_comm_budget(bad)


class TestDistributeBudgetRegression:
    """``--comm-budget`` misuse is a typed CLI error, not a meter blowup."""

    @pytest.mark.parametrize("words", ["0", "-5"])
    def test_batch_distribute_rejects_non_positive(
        self, instance_file, words, capsys
    ):
        code = main(
            ["distribute", instance_file, "--comm-budget", words, "-W", "2"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "comm_budget" in captured.err
        assert "positive" in captured.err

    def test_batch_distribute_accepts_positive(self, instance_file, capsys):
        code = main(
            ["distribute", instance_file, "--comm-budget", "100000", "-W", "2"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "total comm words" in captured.out

    @pytest.mark.parametrize("words", ["0", "-5"])
    def test_client_distribute_rejects_non_positive(
        self, handle, words, capsys
    ):
        code = main(
            [
                "client", "distribute",
                "--port", str(handle.port),
                "--name", "demo",
                "--comm-budget", words,
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "comm_budget" in captured.err


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.space_pool == 200_000
        assert args.load == []

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "9000", "--load", "a=x.txt",
                "--load", "b=y.txt", "--max-queue", "4",
                "--queue-timeout", "5", "--backend", "serial",
            ]
        )
        assert args.port == 9000
        assert args.load == ["a=x.txt", "b=y.txt"]
        assert args.max_queue == 4
        assert args.backend == "serial"

    def test_client_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "ping"])

    def test_client_action_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["client", "explode", "--port", "1"]
            )


class TestClientCLI:
    def test_ping(self, handle, capsys):
        assert main(["client", "ping", "--port", str(handle.port)]) == 0
        assert "repro-serve" in capsys.readouterr().out

    def test_solve_prints_cover(self, handle, capsys):
        code = main(
            [
                "client", "solve", "--port", str(handle.port),
                "--name", "demo", "--seed", "3",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "cover_size" in captured.out
        assert "cover:" in captured.out
        assert "valid" in captured.out

    def test_load_list_unload(self, handle, instance_file, capsys):
        assert (
            main(
                [
                    "client", "load", "--port", str(handle.port),
                    "--name", "uploaded", "--file", instance_file,
                ]
            )
            == 0
        )
        assert (
            main(["client", "list", "--port", str(handle.port)]) == 0
        )
        assert "uploaded" in capsys.readouterr().out
        assert (
            main(
                [
                    "client", "unload", "--port", str(handle.port),
                    "--name", "uploaded",
                ]
            )
            == 0
        )

    def test_distribute_prints_comm(self, handle, capsys):
        code = main(
            [
                "client", "distribute", "--port", str(handle.port),
                "--name", "demo", "-W", "3", "--coordinator", "union",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "total_comm_words" in captured.out

    def test_stats_prints_pool(self, handle, capsys):
        assert main(["client", "stats", "--port", str(handle.port)]) == 0
        out = capsys.readouterr().out
        assert "pool:" in out
        assert "space_capacity_words" in out

    def test_missing_name_is_typed(self, handle, capsys):
        code = main(
            ["client", "solve", "--port", str(handle.port)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "requires --name" in captured.err

    def test_unknown_instance_is_remote_typed(self, handle, capsys):
        code = main(
            [
                "client", "solve", "--port", str(handle.port),
                "--name", "nope",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "InvalidParameterError (remote)" in captured.err

    def test_connection_refused_is_typed(self, capsys):
        code = main(["client", "ping", "--port", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot connect" in captured.err
