"""White-box tests for Algorithm 1's individual mechanisms.

Each test isolates one phase — epoch-0 high-degree detection, the
witness-marking rule, batch rotation, special-set promotion — on
instances engineered to trigger it deterministically (or nearly so).
"""

from __future__ import annotations

import math

import pytest

from repro.core.random_order import RandomOrderAlgorithm
from repro.core.scaling import Scaling
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import stream_of


def high_degree_instance(n=60, m=600, hot_element=0, seed=3):
    """Every set contains ``hot_element``; other elements are spread."""
    import random

    rng = random.Random(seed)
    sets = []
    for _ in range(m):
        members = {hot_element}
        members.update(rng.sample(range(1, n), 3))
        sets.append(members)
    return SetCoverInstance(n, sets, name="high-degree")


class TestEpochZeroDetection:
    def test_hot_element_detected_by_counting(self):
        """Degree ≫ m/√n is detected from the prefix occurrence count.

        The epoch-0 sample is suppressed (tiny sample constant) so that
        witness-marking cannot pre-empt the count-based detection the
        test targets.
        """
        instance = high_degree_instance()
        scaling = Scaling.practical().with_overrides(sample_constant=0.001)
        algorithm = RandomOrderAlgorithm(scaling=scaling, seed=5)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=5)))
        result.verify(instance)
        assert result.diagnostics["epoch0_marked"] >= 1

    def test_hot_element_witnessed_by_sample(self):
        """With the normal sample, the hot element is witness-marked by
        an epoch-0 set (it belongs to every set, so to the sample too)."""
        instance = high_degree_instance()
        algorithm = RandomOrderAlgorithm(seed=5)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=5)))
        result.verify(instance)
        probe = algorithm.last_probe
        witness = result.certificate[0]
        assert probe.inclusion_positions.get(witness) == 0

    def test_no_detection_on_flat_degrees(self):
        """With all degrees ≈ m·k/n ≪ m/√n nothing is marked by count."""
        from repro.generators.random_instances import fixed_size_instance

        instance = fixed_size_instance(400, 800, set_size=4, seed=6)
        # degrees ~ 8; cutoff = 1.1*m/sqrt(n) = 44.
        algorithm = RandomOrderAlgorithm(seed=6)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=6)))
        assert result.diagnostics["epoch0_marked"] == 0

    def test_hot_element_eventually_witnessed(self):
        """Optimistic marking is vindicated: the hot element gets a
        witness from the epoch-0 sample before patching (Lemma 7)."""
        instance = high_degree_instance()
        algorithm = RandomOrderAlgorithm(seed=7)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=7)))
        assert result.diagnostics["marked_uncovered_at_end"] == 0
        assert 0 in result.certificate


class TestEpochZeroSampling:
    def test_sample_size_concentrates(self):
        from repro.generators.random_instances import quadratic_family

        instance = quadratic_family(100, density=0.5, seed=8)
        sizes = []
        for seed in range(5):
            algorithm = RandomOrderAlgorithm(seed=seed)
            result = algorithm.run(
                stream_of(instance, RandomOrder(seed=seed))
            )
            sizes.append(result.diagnostics["epoch0_sol"])
        expected = math.sqrt(100) * math.log2(instance.m)
        mean = sum(sizes) / len(sizes)
        assert 0.5 * expected <= mean <= 2.0 * expected

    def test_epoch0_positions_zero(self):
        from repro.generators.random_instances import quadratic_family

        instance = quadratic_family(64, density=0.5, seed=9)
        algorithm = RandomOrderAlgorithm(seed=9)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=9)))
        probe = algorithm.last_probe
        epoch0_count = int(result.diagnostics["epoch0_sol"])
        zero_positions = sum(
            1 for pos in probe.inclusion_positions.values() if pos == 0
        )
        assert zero_positions == epoch0_count


class TestSpecialPromotion:
    def test_threshold_equality_triggers_once_per_subepoch(self):
        """Counters trigger exactly at the threshold, not repeatedly."""
        scaling = Scaling.practical()
        threshold = math.ceil(scaling.special_threshold(1, 20000))
        assert threshold >= 1
        # Counting semantics: the trigger fires when count == threshold;
        # subsequent increments in the same subepoch don't re-fire.
        # (Structural property — verified via the probe's special counts
        # never exceeding the number of watched sets per subepoch.)
        from repro.generators.random_instances import two_tier_instance
        from repro.streaming.stream import stream_of as _stream_of

        instance = two_tier_instance(
            2500, num_small=20000, num_big=60, seed=10
        )
        algorithm = RandomOrderAlgorithm(seed=10)
        algorithm.run(_stream_of(instance, RandomOrder(seed=10)))
        probe = algorithm.last_probe
        batch_size = math.ceil(instance.m / scaling.num_batches(instance.n))
        for stats in probe.epoch_stats:
            assert stats.special_sets <= batch_size * scaling.num_batches(
                instance.n
            )

    def test_tracking_candidates_come_from_specials(self):
        from repro.generators.random_instances import two_tier_instance

        instance = two_tier_instance(
            2500, num_small=20000, num_big=60, seed=11
        )
        algorithm = RandomOrderAlgorithm(seed=11)
        algorithm.run(stream_of(instance, RandomOrder(seed=11)))
        probe = algorithm.last_probe
        for stats in probe.epoch_stats:
            assert stats.added_to_tracking <= stats.special_sets
            assert stats.added_to_sol <= stats.special_sets


class TestScalingInteraction:
    def test_paper_scaling_runs_but_is_inert_at_small_scale(self):
        """Paper constants: thresholds are astronomically high, so no
        specials fire, but the run must still produce a valid cover."""
        from repro.generators.random_instances import quadratic_family

        instance = quadratic_family(64, density=0.5, seed=12)
        algorithm = RandomOrderAlgorithm(scaling=Scaling.paper(), seed=12)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=12)))
        result.verify(instance)
        probe = algorithm.last_probe
        assert sum(s.added_to_sol for s in probe.epoch_stats) == 0

    def test_phase_budget_shrinks_consumption(self):
        from repro.generators.random_instances import quadratic_family

        instance = quadratic_family(100, density=0.5, seed=13)
        tight = Scaling.practical().with_overrides(phase_budget_fraction=0.2)
        loose = Scaling.practical().with_overrides(phase_budget_fraction=0.6)
        tight_run = RandomOrderAlgorithm(scaling=tight, seed=13).run(
            stream_of(instance, RandomOrder(seed=13))
        )
        loose_run = RandomOrderAlgorithm(scaling=loose, seed=13).run(
            stream_of(instance, RandomOrder(seed=13))
        )
        assert (
            tight_run.diagnostics["phase_edges_consumed"]
            < loose_run.diagnostics["phase_edges_consumed"]
        )
