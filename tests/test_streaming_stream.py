"""Tests for EdgeStream / ReplayableStream: one-pass discipline."""

from __future__ import annotations

import pytest

from repro.errors import StreamExhaustedError
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import (
    EdgeStream,
    ReplayableStream,
    concat_streams,
    stream_of,
)
from repro.types import Edge


class TestEdgeStream:
    def test_iterates_all_edges(self, tiny_instance):
        stream = stream_of(tiny_instance)
        assert len(list(stream)) == tiny_instance.num_edges

    def test_length_matches_instance(self, tiny_instance):
        assert stream_of(tiny_instance).length == tiny_instance.num_edges

    def test_position_tracks_consumption(self, tiny_instance):
        stream = stream_of(tiny_instance)
        it = iter(stream)
        next(it)
        next(it)
        assert stream.position == 2

    def test_second_pass_rejected(self, tiny_instance):
        stream = stream_of(tiny_instance)
        list(stream)
        with pytest.raises(StreamExhaustedError):
            iter(stream)

    def test_second_iter_rejected_even_unconsumed_items(self, tiny_instance):
        stream = stream_of(tiny_instance)
        iter(stream)
        with pytest.raises(StreamExhaustedError):
            iter(stream)

    def test_peek_all_does_not_consume(self, tiny_instance):
        stream = stream_of(tiny_instance)
        assert len(stream.peek_all()) == stream.length
        assert not stream.consumed

    def test_order_name_recorded(self, tiny_instance):
        stream = stream_of(tiny_instance, RandomOrder(seed=1))
        assert stream.order_name == "random"

    def test_default_order_canonical(self, tiny_instance):
        stream = stream_of(tiny_instance)
        assert stream.order_name == "canonical"
        assert list(stream) == list(tiny_instance.edges())


class TestReplayableStream:
    def test_fresh_streams_identical(self, chain_instance):
        replayable = ReplayableStream(chain_instance, RandomOrder(seed=2))
        a = list(replayable.fresh())
        b = list(replayable.fresh())
        assert a == b

    def test_fresh_streams_independent(self, chain_instance):
        replayable = ReplayableStream(chain_instance, RandomOrder(seed=2))
        first = replayable.fresh()
        list(first)
        second = replayable.fresh()
        assert list(second)  # not exhausted by the first view

    def test_edges_accessor(self, chain_instance):
        replayable = ReplayableStream(chain_instance)
        assert len(replayable.edges()) == chain_instance.num_edges

    def test_length(self, chain_instance):
        assert ReplayableStream(chain_instance).length == chain_instance.num_edges

    def test_fresh_is_zero_copy(self, chain_instance):
        # Regression guard: fresh() must hand out a view over the shared
        # frozen buffer, not a defensive copy — O(1) per view is what
        # makes replications over large instances affordable.
        replayable = ReplayableStream(chain_instance, RandomOrder(seed=2))
        view = replayable.fresh()
        assert view.peek_all() is replayable.edges()
        assert view._frozen is replayable._frozen

    def test_fresh_views_share_buffer(self, chain_instance):
        replayable = ReplayableStream(chain_instance, RandomOrder(seed=2))
        first = replayable.fresh()
        second = replayable.fresh()
        assert first.peek_all() is second.peek_all()

    def test_fresh_views_share_columns(self, chain_instance):
        # The lazily-built numpy columns are cached on the frozen buffer,
        # so every view (and every batched reader) reuses one build.
        replayable = ReplayableStream(chain_instance, RandomOrder(seed=2))
        cols_a = replayable.fresh()._frozen.columns()
        cols_b = replayable.fresh()._frozen.columns()
        assert cols_a[0] is cols_b[0]
        assert cols_a[1] is cols_b[1]


class TestConcatStreams:
    def test_concatenates_in_order(self, tiny_instance):
        first = EdgeStream(tiny_instance, [Edge(0, 0)])
        second = EdgeStream(tiny_instance, [Edge(2, 3)])
        combined = concat_streams(first, second)
        assert list(combined) == [Edge(0, 0), Edge(2, 3)]

    def test_rejects_consumed_input(self, tiny_instance):
        first = EdgeStream(tiny_instance, [Edge(0, 0)])
        list(first)
        second = EdgeStream(tiny_instance, [Edge(2, 3)])
        with pytest.raises(StreamExhaustedError):
            concat_streams(first, second)

    def test_order_name_combines(self, tiny_instance):
        first = EdgeStream(tiny_instance, [Edge(0, 0)], order_name="a")
        second = EdgeStream(tiny_instance, [Edge(2, 3)], order_name="b")
        assert concat_streams(first, second).order_name == "a+b"
