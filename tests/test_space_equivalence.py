"""Equivalence of the O(1) SpaceMeter against the original re-summing one.

The meter was rewritten to maintain ``current_words`` incrementally and
to defer the breakdown-at-peak copy (see ``repro/streaming/space.py``).
Every report field must stay byte-identical: the invariant benchmarks
compare space numbers across PRs, so even a one-word drift is a bug.
This module keeps a verbatim copy of the original implementation as the
oracle and drives both meters through random charge/set/release traces,
including budget-enforced traces where the *ordering* (apply the update,
record the peak, then raise) is part of the contract.
"""

from __future__ import annotations

from typing import Dict, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpaceBudgetExceededError
from repro.streaming.space import ChargedDict, ChargedSet, SpaceBudget, SpaceMeter


class LegacySpaceMeter:
    """The original meter: re-sums components and copies at every peak."""

    def __init__(self, budget: Optional[SpaceBudget] = None) -> None:
        self._components: Dict[str, int] = {}
        self._anonymous = 0
        self._peak = 0
        self._components_at_peak: Dict[str, int] = {}
        self._component_peaks: Dict[str, int] = {}
        self.budget = budget

    def set_component(self, name: str, words: int) -> None:
        if words < 0:
            raise ValueError(f"component size must be >= 0, got {words} for {name!r}")
        self._components[name] = words
        if words > self._component_peaks.get(name, 0):
            self._component_peaks[name] = words
        self._after_update()

    def add_to_component(self, name: str, delta: int) -> None:
        new = self._components.get(name, 0) + delta
        if new < 0:
            raise ValueError(f"component {name!r} would become negative ({new} words)")
        self._components[name] = new
        if new > self._component_peaks.get(name, 0):
            self._component_peaks[name] = new
        self._after_update()

    def charge(self, words: int) -> None:
        if words < 0:
            raise ValueError("use release() to free space")
        self._anonymous += words
        self._after_update()

    def release(self, words: int) -> None:
        if words < 0:
            raise ValueError("use charge() to add space")
        if words > self._anonymous:
            raise ValueError("releasing more than charged")
        self._anonymous -= words
        self._after_update()

    @property
    def current_words(self) -> int:
        return self._anonymous + sum(self._components.values())

    @property
    def peak_words(self) -> int:
        return self._peak

    def snapshot(self):
        return (
            self._peak,
            self.current_words,
            dict(self._components_at_peak),
            dict(self._component_peaks),
        )

    def _after_update(self) -> None:
        current = self.current_words
        if current > self._peak:
            self._peak = current
            self._components_at_peak = dict(self._components)
            if self._anonymous:
                self._components_at_peak["<anonymous>"] = self._anonymous
        if self.budget is not None and current > self.budget.words:
            raise SpaceBudgetExceededError(
                used=current, budget=self.budget.words, context=self.budget.context
            )


NAMES = ["sol", "marked", "tracked", "counters", "cover"]

OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("set"), st.sampled_from(NAMES), st.integers(0, 40)
        ),
        st.tuples(
            st.just("add"), st.sampled_from(NAMES), st.integers(-15, 15)
        ),
        st.tuples(st.just("charge"), st.integers(0, 25)),
        st.tuples(st.just("release"), st.integers(0, 25)),
    ),
    min_size=0,
    max_size=60,
)


def apply_op(meter, op):
    kind = op[0]
    if kind == "set":
        meter.set_component(op[1], op[2])
    elif kind == "add":
        meter.add_to_component(op[1], op[2])
    elif kind == "charge":
        meter.charge(op[1])
    else:
        meter.release(op[1])


def new_snapshot(meter: SpaceMeter):
    report = meter.report()
    return (
        report.peak_words,
        report.final_words,
        report.components_at_peak,
        report.component_peaks,
    )


class TestTraceEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(ops=OPS)
    def test_unbudgeted_traces_match(self, ops):
        legacy = LegacySpaceMeter()
        current = SpaceMeter()
        for op in ops:
            legacy_error = current_error = None
            try:
                apply_op(legacy, op)
            except ValueError as error:
                legacy_error = str(error)
            try:
                apply_op(current, op)
            except ValueError as error:
                current_error = str(error)
            assert (legacy_error is None) == (current_error is None)
            assert legacy.current_words == current.current_words
            assert legacy.peak_words == current.peak_words
        assert legacy.snapshot() == new_snapshot(current)

    @settings(max_examples=300, deadline=None)
    @given(ops=OPS, budget_words=st.integers(1, 60))
    def test_budgeted_traces_raise_identically(self, ops, budget_words):
        legacy = LegacySpaceMeter(budget=SpaceBudget(words=budget_words, context="t"))
        current = SpaceMeter(budget=SpaceBudget(words=budget_words, context="t"))
        legacy_stop = current_stop = None
        legacy_used = current_used = None
        for index, op in enumerate(ops):
            if legacy_stop is None:
                try:
                    apply_op(legacy, op)
                except SpaceBudgetExceededError as error:
                    legacy_stop, legacy_used = index, error.used
                except ValueError:
                    break
            if current_stop is None:
                try:
                    apply_op(current, op)
                except SpaceBudgetExceededError as error:
                    current_stop, current_used = index, error.used
                except ValueError:
                    break
            if legacy_stop is not None or current_stop is not None:
                break
        # Same op raises, with the same reported usage, and the update
        # was applied before raising in both implementations.
        assert legacy_stop == current_stop
        assert legacy_used == current_used
        assert legacy.current_words == current.current_words
        assert legacy.snapshot() == new_snapshot(current)

    def test_budget_checked_on_no_op_update(self):
        # The legacy meter checked the budget on every update, even one
        # that left the total unchanged; the rewrite must too.
        legacy = LegacySpaceMeter(budget=SpaceBudget(words=5))
        current = SpaceMeter(budget=SpaceBudget(words=5))
        for meter in (legacy, current):
            with pytest.raises(SpaceBudgetExceededError):
                meter.set_component("a", 9)  # applied, then raised
            with pytest.raises(SpaceBudgetExceededError):
                meter.set_component("a", 9)  # no-op value, still over budget


class TestChargedContainersMatchHandCharging:
    def test_charged_set_trace(self):
        legacy = LegacySpaceMeter()
        hand = set()
        current = SpaceMeter()
        charged = ChargedSet(current, "c", words_per_entry=1)
        legacy.set_component("c", 0)
        for item, action in [(1, "add"), (1, "add"), (2, "add"), (1, "discard")]:
            getattr(charged, action)(item)
            getattr(hand, action)(item)
            legacy.set_component("c", len(hand))
        assert legacy.snapshot() == new_snapshot(current)

    def test_charged_dict_trace(self):
        legacy = LegacySpaceMeter()
        hand = {}
        current = SpaceMeter()
        charged = ChargedDict(current, "d", words_per_entry=2)
        legacy.set_component("d", 0)
        for key, value in [(1, 10), (1, 11), (2, 5), (3, 1)]:
            charged[key] = value
            hand[key] = value
            legacy.set_component("d", 2 * len(hand))
        del charged[2]
        del hand[2]
        legacy.set_component("d", 2 * len(hand))
        assert charged == hand
        assert legacy.snapshot() == new_snapshot(current)
