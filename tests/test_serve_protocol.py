"""The serve wire protocol: envelopes, typed-error round trips, framing.

Three concerns:

1. **Envelopes** — request/ok/error payload shapes, unknown request
   kinds failing fast client-side.
2. **Typed-error transport** — an :class:`AdmissionError` crosses the
   wire and is reconstructed as itself with every field intact; any
   other typed error comes back a :class:`RemoteServeError` tagged with
   the original type name.
3. **Framing** — blocking send/recv over a socketpair round-trips
   payloads, clean EOF is ``None``, mid-frame EOF and oversized
   announced lengths are typed :class:`TransportError`\\ s before any
   allocation.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.distributed.transport import (
    FRAME_HEADER_SIZE,
    encode_frame,
    make_codec,
)
from repro.errors import (
    AdmissionError,
    CommBudgetError,
    InvalidParameterError,
    RemoteServeError,
    TransportError,
)
from repro.serve.protocol import (
    COMPUTE_KINDS,
    MAX_FRAME_BYTES,
    REQUEST_KINDS,
    error_response,
    error_to_payload,
    ok_response,
    payload_to_error,
    recv_frame,
    request_payload,
    send_frame,
)


class TestEnvelopes:
    def test_request_payload_shape(self):
        payload = request_payload("solve", 7, instance="demo", seed=3)
        assert payload == {
            "kind": "solve", "id": 7, "instance": "demo", "seed": 3
        }

    def test_unknown_kind_fails_fast(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            request_payload("explode", 1)
        assert "explode" in str(excinfo.value)

    def test_compute_kinds_are_request_kinds(self):
        assert set(COMPUTE_KINDS) <= set(REQUEST_KINDS)

    def test_ok_response_echoes_id(self):
        response = ok_response(42, {"x": 1})
        assert response == {"id": 42, "ok": True, "result": {"x": 1}}

    def test_error_response_shape(self):
        response = error_response(9, InvalidParameterError("seed", -1, "no"))
        assert response["id"] == 9
        assert response["ok"] is False
        assert response["error"]["type"] == "InvalidParameterError"
        assert response["error"]["parameter"] == "seed"


class TestErrorRoundTrip:
    def test_admission_error_round_trips_every_field(self):
        original = AdmissionError(
            "queue-full",
            requested_space_words=100,
            requested_comm_words=20,
            available_space_words=7,
            available_comm_words=3,
            queue_depth=16,
            retry_after=0.25,
            context="serve solve",
        )
        rebuilt = payload_to_error(error_to_payload(original))
        assert isinstance(rebuilt, AdmissionError)
        assert rebuilt.reason == "queue-full"
        assert rebuilt.requested_space_words == 100
        assert rebuilt.requested_comm_words == 20
        assert rebuilt.available_space_words == 7
        assert rebuilt.available_comm_words == 3
        assert rebuilt.queue_depth == 16
        assert rebuilt.retry_after == pytest.approx(0.25)
        assert rebuilt.context == "serve solve"

    def test_other_typed_errors_become_remote(self):
        original = CommBudgetError(used=10, budget=5, context="t")
        rebuilt = payload_to_error(error_to_payload(original))
        assert isinstance(rebuilt, RemoteServeError)
        assert rebuilt.error_type == "CommBudgetError"
        assert "CommBudgetError (remote)" in str(rebuilt)

    def test_bare_exception_becomes_remote(self):
        rebuilt = payload_to_error(error_to_payload(ValueError("boom")))
        assert isinstance(rebuilt, RemoteServeError)
        assert rebuilt.error_type == "ValueError"
        assert "boom" in str(rebuilt)


class TestFraming:
    def pair(self):
        left, right = socket.socketpair()
        left.settimeout(5)
        right.settimeout(5)
        return left, right

    def test_round_trip_over_socketpair(self):
        codec = make_codec(None)
        left, right = self.pair()
        try:
            payload = request_payload("ping", 1, blob="x" * 1000)
            send_frame(left, codec, payload)
            assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_multiple_frames_in_sequence(self):
        codec = make_codec(None)
        left, right = self.pair()
        try:
            for i in range(5):
                send_frame(left, codec, {"i": i})
            for i in range(5):
                assert recv_frame(right) == {"i": i}
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = self.pair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_is_typed(self):
        codec = make_codec(None)
        left, right = self.pair()
        try:
            frame = encode_frame(codec, {"x": 1})
            left.sendall(frame[: FRAME_HEADER_SIZE + 2])
            left.close()
            with pytest.raises(TransportError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_announced_length_is_typed(self):
        codec = make_codec(None)
        left, right = self.pair()
        try:
            frame = bytearray(encode_frame(codec, {"x": 1}))
            # Rewrite the length field to announce > MAX_FRAME_BYTES.
            struct.pack_into(
                ">I", frame, FRAME_HEADER_SIZE - 4, MAX_FRAME_BYTES + 1
            )
            left.sendall(bytes(frame))
            with pytest.raises(TransportError) as excinfo:
                recv_frame(right)
            assert "cap" in str(excinfo.value)
        finally:
            left.close()
            right.close()

    def test_garbage_header_is_typed(self):
        left, right = self.pair()
        try:
            left.sendall(b"NOPE" + b"\x00" * (FRAME_HEADER_SIZE - 4))
            with pytest.raises(TransportError):
                recv_frame(right)
        finally:
            left.close()
            right.close()
