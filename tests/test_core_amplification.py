"""Tests for the O(log m) parallel-copies amplification wrapper."""

from __future__ import annotations

import math

import pytest

from repro.core.amplification import AmplifiedAlgorithm
from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.kk import KKAlgorithm
from repro.errors import ConfigurationError
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream, stream_of


class TestCorrectness:
    def test_valid_cover(self):
        instance = fixed_size_instance(50, 200, set_size=8, seed=1)
        amplified = AmplifiedAlgorithm(
            factory=lambda s: KKAlgorithm(seed=s), copies=3, seed=1
        )
        result = amplified.run(stream_of(instance, RandomOrder(seed=1)))
        result.verify(instance)

    def test_rejects_zero_copies(self):
        with pytest.raises(ConfigurationError):
            AmplifiedAlgorithm(factory=lambda s: KKAlgorithm(seed=s), copies=0)

    def test_default_copies_log_m(self):
        instance = fixed_size_instance(30, 64, set_size=6, seed=2)
        amplified = AmplifiedAlgorithm(
            factory=lambda s: KKAlgorithm(seed=s), seed=2
        )
        result = amplified.run(stream_of(instance, RandomOrder(seed=2)))
        assert result.diagnostics["copies"] == math.ceil(math.log2(64))


class TestAmplificationEffect:
    def test_best_at_most_any_single_copy(self):
        planted = planted_partition_instance(80, 400, opt_size=8, seed=3)
        replayable = ReplayableStream(planted.instance, RandomOrder(seed=3))
        amplified = AmplifiedAlgorithm(
            factory=lambda s: LowSpaceAdversarialAlgorithm(alpha=18, seed=s),
            copies=5,
            seed=3,
        )
        result = amplified.run(replayable.fresh())
        result.verify(planted.instance)
        assert (
            result.diagnostics["best_cover"]
            <= result.diagnostics["mean_cover"]
            <= result.diagnostics["worst_cover"]
        )
        assert result.cover_size == result.diagnostics["best_cover"]

    def test_more_copies_never_worse_in_expectation(self):
        planted = planted_partition_instance(80, 400, opt_size=8, seed=4)
        replayable = ReplayableStream(planted.instance, RandomOrder(seed=4))

        def run_with(copies):
            amplified = AmplifiedAlgorithm(
                factory=lambda s: LowSpaceAdversarialAlgorithm(
                    alpha=18, seed=s
                ),
                copies=copies,
                seed=4,
            )
            return amplified.run(replayable.fresh()).cover_size

        # With a shared stream, min over 8 seeds <= min over the first 1
        # is not deterministic seed-nesting here, so compare loosely.
        assert run_with(8) <= run_with(1) + 5


class TestSpaceAccounting:
    def test_space_sums_copies(self):
        instance = fixed_size_instance(50, 300, set_size=8, seed=5)
        replayable = ReplayableStream(instance, RandomOrder(seed=5))
        single = KKAlgorithm(seed=5).run(replayable.fresh())
        amplified = AmplifiedAlgorithm(
            factory=lambda s: KKAlgorithm(seed=s), copies=4, seed=5
        ).run(replayable.fresh())
        assert amplified.space.peak_words >= 3 * single.space.peak_words

    def test_algorithm_name_tagged(self):
        instance = fixed_size_instance(30, 60, set_size=5, seed=6)
        result = AmplifiedAlgorithm(
            factory=lambda s: KKAlgorithm(seed=s), copies=2, seed=6
        ).run(stream_of(instance, RandomOrder(seed=6)))
        assert "amplified" in result.algorithm
        assert "kk" in result.algorithm
