"""Tests for all workload generators: shapes, feasibility, planted OPTs."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.generators.dominating_set import (
    gnp_dominating_set,
    preferential_attachment_dominating_set,
    star_forest_dominating_set,
)
from repro.generators.hard import (
    layered_hard_instance,
    needle_in_haystack,
)
from repro.generators.planted import (
    disjoint_blocks_with_noise,
    planted_partition_instance,
)
from repro.generators.random_instances import (
    fixed_size_instance,
    quadratic_family,
    two_tier_instance,
    uniform_instance,
)
from repro.generators.zipf import blogwatch_instance, zipf_instance


class TestUniformInstance:
    def test_shape(self):
        instance = uniform_instance(50, 30, p=0.1, seed=1)
        assert instance.n == 50
        assert instance.m == 30

    def test_feasible(self):
        uniform_instance(50, 30, p=0.05, seed=2).validate()

    def test_density_scales(self):
        sparse = uniform_instance(200, 50, p=0.01, seed=3)
        dense = uniform_instance(200, 50, p=0.3, seed=3)
        assert dense.num_edges > sparse.num_edges

    def test_deterministic(self):
        a = uniform_instance(30, 10, p=0.2, seed=4)
        b = uniform_instance(30, 10, p=0.2, seed=4)
        assert a == b

    def test_p_one_full_sets(self):
        instance = uniform_instance(10, 3, p=1.0, seed=5)
        assert all(instance.set_size(s) == 10 for s in range(3))

    def test_rejects_bad_p(self):
        with pytest.raises(ConfigurationError):
            uniform_instance(10, 3, p=0.0)
        with pytest.raises(ConfigurationError):
            uniform_instance(10, 3, p=1.5)


class TestFixedSizeInstance:
    def test_exact_sizes(self):
        instance = fixed_size_instance(40, 20, set_size=7, seed=1)
        # Feasibility patching may grow a set by a few elements.
        assert all(instance.set_size(s) >= 7 for s in range(20))

    def test_feasible(self):
        fixed_size_instance(40, 20, set_size=7, seed=1).validate()

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            fixed_size_instance(10, 3, set_size=0)
        with pytest.raises(ConfigurationError):
            fixed_size_instance(10, 3, set_size=11)


class TestQuadraticFamily:
    def test_m_is_quadratic(self):
        instance = quadratic_family(20, seed=1)
        assert instance.m == 400

    def test_density_scales_m(self):
        assert quadratic_family(20, density=0.5, seed=1).m == 200

    def test_default_set_size_sqrt_n(self):
        instance = quadratic_family(25, seed=1)
        assert instance.set_size(0) >= 5

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            quadratic_family(20, density=0)


class TestTwoTier:
    def test_shape(self):
        instance = two_tier_instance(100, num_small=50, num_big=5, seed=1)
        assert instance.m == 55

    def test_big_sets_bigger(self):
        instance = two_tier_instance(
            400, num_small=50, num_big=5, small_size=3, seed=1
        )
        sizes = sorted(instance.set_size(s) for s in range(instance.m))
        assert sizes[-1] > sizes[0]
        # big default = 32*sqrt(400) = 640 -> clamped to n = 400.
        assert sizes[-1] <= 400

    def test_feasible(self):
        two_tier_instance(100, num_small=50, num_big=5, seed=2).validate()

    def test_rejects_zero_counts(self):
        with pytest.raises(ConfigurationError):
            two_tier_instance(10, num_small=0, num_big=1)


class TestPlanted:
    def test_planted_sets_are_cover(self):
        planted = planted_partition_instance(60, 200, opt_size=6, seed=1)
        assert planted.instance.is_cover(planted.planted_sets)

    def test_planted_count(self):
        planted = planted_partition_instance(60, 200, opt_size=6, seed=1)
        assert len(planted.planted_sets) == 6
        assert planted.opt_upper_bound == 6

    def test_planted_sets_partition(self):
        planted = planted_partition_instance(60, 200, opt_size=6, seed=2)
        total = sum(
            planted.instance.set_size(s) for s in planted.planted_sets
        )
        assert total == 60  # disjoint blocks covering everything

    def test_shape(self):
        planted = planted_partition_instance(60, 200, opt_size=6, seed=1)
        assert planted.instance.n == 60
        assert planted.instance.m == 200

    def test_rounding_edge_case(self):
        # n not divisible by opt_size.
        planted = planted_partition_instance(10, 20, opt_size=3, seed=3)
        assert len(planted.planted_sets) == 3
        assert planted.instance.is_cover(planted.planted_sets)

    def test_opt_size_equals_n(self):
        planted = planted_partition_instance(5, 10, opt_size=5, seed=4)
        assert planted.instance.is_cover(planted.planted_sets)

    def test_rejects_opt_beyond_n(self):
        with pytest.raises(ConfigurationError):
            planted_partition_instance(5, 10, opt_size=6)

    def test_rejects_m_below_opt(self):
        with pytest.raises(ConfigurationError):
            planted_partition_instance(10, 3, opt_size=5)

    def test_deterministic(self):
        a = planted_partition_instance(30, 60, opt_size=5, seed=7)
        b = planted_partition_instance(30, 60, opt_size=5, seed=7)
        assert a.instance == b.instance
        assert a.planted_sets == b.planted_sets


class TestBlocksWithNoise:
    def test_planted_cover_valid(self):
        planted = disjoint_blocks_with_noise(
            48, opt_size=4, decoys_per_block=3, seed=1
        )
        assert planted.instance.is_cover(planted.planted_sets)

    def test_decoy_count(self):
        planted = disjoint_blocks_with_noise(
            48, opt_size=4, decoys_per_block=3, seed=1
        )
        assert planted.instance.m == 4 + 12

    def test_rejects_bad_overlap(self):
        with pytest.raises(ConfigurationError):
            disjoint_blocks_with_noise(48, 4, 3, noise_overlap=0.0)


class TestZipf:
    def test_shape_and_feasible(self):
        instance = zipf_instance(100, 300, seed=1)
        assert (instance.n, instance.m) == (100, 300)
        instance.validate()

    def test_heavy_tail(self):
        instance = zipf_instance(200, 500, exponent=1.5, seed=2)
        sizes = sorted(
            (instance.set_size(s) for s in range(instance.m)), reverse=True
        )
        assert sizes[0] >= 5 * sizes[len(sizes) // 2]

    def test_max_fraction_respected(self):
        instance = zipf_instance(100, 100, max_set_fraction=0.1, seed=3)
        # feasibility patching can add at most a few extra elements
        assert max(instance.set_size(s) for s in range(100)) <= 15

    def test_rejects_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            zipf_instance(100, 100, exponent=1.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            zipf_instance(100, 100, max_set_fraction=0.0)


class TestBlogwatch:
    def test_shape_and_feasible(self):
        instance = blogwatch_instance(50, 200, seed=1)
        assert instance.n == 50
        assert instance.m == 200
        instance.validate()

    def test_rejects_zero_posts(self):
        with pytest.raises(ConfigurationError):
            blogwatch_instance(50, 200, posts_per_blog=0)


class TestDominatingSetGenerators:
    def test_gnp_shape(self):
        instance = gnp_dominating_set(30, p=0.2, seed=1)
        assert instance.n == instance.m == 30
        instance.validate()

    def test_gnp_rejects_bad_p(self):
        with pytest.raises(ConfigurationError):
            gnp_dominating_set(10, p=1.5)

    def test_star_forest_opt(self):
        instance = star_forest_dominating_set(4, leaves_per_star=5, seed=1)
        assert instance.n == 24
        # The 4 centres cover everything.
        centres = [i * 6 for i in range(4)]
        assert instance.is_cover(centres)

    def test_star_forest_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            star_forest_dominating_set(0, 5)

    def test_preferential_attachment(self):
        instance = preferential_attachment_dominating_set(50, attach=2, seed=1)
        assert instance.n == instance.m == 50
        instance.validate()

    def test_preferential_attachment_has_hubs(self):
        instance = preferential_attachment_dominating_set(200, attach=2, seed=2)
        sizes = sorted(
            (instance.set_size(s) for s in range(200)), reverse=True
        )
        assert sizes[0] >= 10  # a genuine hub emerges

    def test_preferential_rejects_small(self):
        with pytest.raises(ConfigurationError):
            preferential_attachment_dominating_set(1)


class TestHardInstances:
    def test_needle_opt_two(self):
        needle = needle_in_haystack(100, num_decoys=20, t=4, seed=1)
        assert needle.instance.is_cover(
            [needle.needle_set, needle.complement_set]
        )
        assert needle.opt_upper_bound == 2

    def test_needle_size_structure(self):
        needle = needle_in_haystack(100, num_decoys=20, t=4, seed=1)
        needle_size = needle.instance.set_size(needle.needle_set)
        decoy_ids = [
            s
            for s in range(needle.instance.m)
            if s not in (needle.needle_set, needle.complement_set)
        ]
        max_decoy = max(needle.instance.set_size(s) for s in decoy_ids)
        assert needle_size > max_decoy

    def test_needle_rejects_zero_decoys(self):
        with pytest.raises(ConfigurationError):
            needle_in_haystack(100, num_decoys=0)

    def test_layered_shape(self):
        instance = layered_hard_instance(64, layers=4, sets_per_layer=5, seed=1)
        assert instance.m == 20
        instance.validate()

    def test_layered_sizes_shrink(self):
        instance = layered_hard_instance(64, layers=4, sets_per_layer=1, seed=2)
        sizes = [instance.set_size(s) for s in range(4)]
        assert sizes[0] > sizes[-1]

    def test_layered_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            layered_hard_instance(64, layers=0, sets_per_layer=1)
