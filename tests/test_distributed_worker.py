"""Tests for the shard worker: local remap, global map-back, edge cases."""

from __future__ import annotations

import pytest

from repro.algorithms import registered_algorithms
from repro.distributed.router import ShardRouter
from repro.distributed.worker import Worker
from repro.generators.planted import planted_partition_instance
from repro.obs.events import SPAN_SHARD
from repro.obs.tracer import RecordingTracer
from repro.streaming.orders import CanonicalOrder
from repro.types import Edge


@pytest.fixture
def instance():
    return planted_partition_instance(36, 24, opt_size=4, seed=3).instance


def _plan(instance, workers=3, strategy="by-set", seed=5):
    edges = CanonicalOrder().apply(list(instance.edges()))
    return ShardRouter(strategy, workers=workers, seed=seed).route_edges(
        instance, edges
    )


class TestWorkerRun:
    def test_output_uses_global_ids(self, instance):
        plan = _plan(instance)
        out = Worker(0, algorithm="first-fit", seed=1).run(
            instance, plan.shard_edges[0], plan.set_order[0]
        )
        for sid in out.cover:
            assert 0 <= sid < instance.m
        for u, sid in out.certificate.items():
            assert 0 <= u < instance.n
            assert sid in out.cover
            # The witness really contains the element, globally.
            assert instance.contains(sid, u)

    def test_members_view_matches_shard_edges(self, instance):
        plan = _plan(instance)
        out = Worker(1, algorithm="first-fit", seed=1).run(
            instance, plan.shard_edges[1], plan.set_order[1]
        )
        seen = {}
        for edge in plan.shard_edges[1]:
            seen.setdefault(edge[0], set()).add(edge[1])
        for sid in plan.set_order[1]:
            assert out.members_by_set[sid] == frozenset(seen.get(sid, set()))

    def test_by_set_view_is_full_membership(self, instance):
        plan = _plan(instance, strategy="by-set")
        out = Worker(2, algorithm="first-fit", seed=1).run(
            instance, plan.shard_edges[2], plan.set_order[2]
        )
        for sid in plan.set_order[2]:
            assert out.members_by_set[sid] == instance.set_members(sid)

    def test_report_shape(self, instance):
        plan = _plan(instance)
        out = Worker(0, algorithm="kk", seed=9).run(
            instance, plan.shard_edges[0], plan.set_order[0]
        )
        report = out.report
        assert report.index == 0
        assert report.edges == len(plan.shard_edges[0])
        assert report.cover_size == len(out.cover)
        assert report.certificate_size == len(out.certificate)
        assert report.space.peak_words > 0
        assert report.dropped_invalid == 0

    @pytest.mark.parametrize("algorithm", sorted(registered_algorithms()))
    def test_every_registry_algorithm_runs_on_a_shard(self, instance, algorithm):
        # Canonical order is set-grouped and by-set shards preserve it,
        # so even the set-arrival baseline is happy on a shard stream.
        plan = _plan(instance, workers=2)
        out = Worker(0, algorithm=algorithm, seed=4).run(
            instance, plan.shard_edges[0], plan.set_order[0]
        )
        # The shard cover must cover every element the shard saw.
        shard_elements = {e[1] for e in plan.shard_edges[0]}
        covered = set()
        for sid in out.cover:
            covered.update(out.members_by_set.get(sid, frozenset()))
        assert shard_elements <= covered

    def test_empty_shard_yields_empty_output(self, instance):
        out = Worker(3, algorithm="kk", seed=2).run(instance, [], [5, 7])
        assert out.cover == frozenset()
        assert out.certificate == {}
        assert out.set_order == (5, 7)
        assert out.report.edges == 0
        assert out.report.local_n == 0
        assert out.report.space.peak_words == 0

    def test_out_of_range_edges_dropped_not_fatal(self, instance):
        plan = _plan(instance, workers=2)
        dirty = list(plan.shard_edges[0]) + [
            Edge(instance.m + 3, 0),
            Edge(0, instance.n + 9),
            Edge(-1, 2),
        ]
        out = Worker(0, algorithm="first-fit", seed=1).run(
            instance, dirty, plan.set_order[0]
        )
        assert out.report.dropped_invalid == 3
        assert out.report.edges == len(plan.shard_edges[0])

    def test_unlisted_set_appended_to_order(self, instance):
        # An edge whose set is not in set_order (corrupt-fault debris
        # with a *valid* id) is kept and its set appended.
        plan = _plan(instance, workers=2)
        foreign = next(
            s for s in range(instance.m) if s not in plan.set_order[0]
        )
        member = min(instance.set_members(foreign))
        dirty = list(plan.shard_edges[0]) + [Edge(foreign, member)]
        out = Worker(0, algorithm="first-fit", seed=1).run(
            instance, dirty, plan.set_order[0]
        )
        assert out.set_order == tuple(plan.set_order[0]) + (foreign,)
        assert out.members_by_set[foreign] == frozenset({member})

    def test_shard_span_in_trace(self, instance):
        plan = _plan(instance, workers=2)
        tracer = RecordingTracer()
        Worker(1, algorithm="kk", seed=3, tracer=tracer).run(
            instance, plan.shard_edges[1], plan.set_order[1]
        )
        tracer.finish()
        shard_spans = [
            e for e in tracer.events
            if e.etype == "span_begin" and e.attrs.get("kind") == SPAN_SHARD
        ]
        assert len(shard_spans) == 1
        assert shard_spans[0].attrs["worker"] == 1
        assert shard_spans[0].attrs["algorithm"] == "kk"

    def test_deterministic(self, instance):
        plan = _plan(instance)
        a = Worker(0, algorithm="kk", seed=8).run(
            instance, plan.shard_edges[0], plan.set_order[0]
        )
        b = Worker(0, algorithm="kk", seed=8).run(
            instance, plan.shard_edges[0], plan.set_order[0]
        )
        assert a.cover == b.cover
        assert a.certificate == b.certificate
        assert a.report.space == b.report.space
