"""Tests for the Lemma-2 concentration module."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.concentration import (
    check_statement_1,
    check_statement_2,
    check_statement_3,
    simulate_occupancy,
)
from repro.errors import ConfigurationError


class TestSimulateOccupancy:
    def test_mean_matches_hypergeometric(self):
        counts = simulate_occupancy(10**5, 10**4, 1000, trials=5000, seed=1)
        expected = 1000 / 10**5 * 10**4  # = 100
        assert abs(counts.mean() - expected) < 3

    def test_bounds(self):
        counts = simulate_occupancy(1000, 100, 50, trials=2000, seed=2)
        assert counts.min() >= 0
        assert counts.max() <= 50

    def test_degenerate_full_window(self):
        counts = simulate_occupancy(100, 30, 100, trials=10, seed=3)
        assert (counts == 30).all()

    def test_degenerate_empty_subset(self):
        counts = simulate_occupancy(100, 0, 50, trials=10, seed=4)
        assert (counts == 0).all()

    def test_deterministic(self):
        a = simulate_occupancy(1000, 100, 50, trials=100, seed=5)
        b = simulate_occupancy(1000, 100, 50, trials=100, seed=5)
        assert (a == b).all()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            simulate_occupancy(100, 200, 50, trials=10)
        with pytest.raises(ConfigurationError):
            simulate_occupancy(100, 50, 200, trials=10)
        with pytest.raises(ConfigurationError):
            simulate_occupancy(100, 50, 50, trials=0)


class TestStatement1:
    def test_concentrates(self):
        check = check_statement_1(10**6, 300_000, 900, trials=1000, seed=6)
        assert check.violation_rate < 0.01
        assert abs(check.observed_mean - check.expected_mean) < 10

    def test_precondition_window(self):
        with pytest.raises(ConfigurationError):
            check_statement_1(1000, 500, 500)

    def test_precondition_mean(self):
        with pytest.raises(ConfigurationError):
            check_statement_1(10**6, 1000, 900)


class TestStatement2:
    def test_tiny_mean_branch(self):
        check = check_statement_2(
            10**5, 20, 1000, log_m=14.0, trials=1000, seed=7
        )
        # mean = 0.2; bound = C*log m*1 = 56 — essentially never violated.
        assert check.violation_rate == 0.0

    def test_large_mean_branch(self):
        check = check_statement_2(
            10**5, 5000, 10**4, log_m=14.0, trials=1000, seed=8
        )
        assert check.violation_rate == 0.0

    def test_precondition(self):
        with pytest.raises(ConfigurationError):
            check_statement_2(100, 10, 80, log_m=10.0)


class TestStatement3:
    def test_concentrates(self):
        check = check_statement_3(
            10**6, 50_000, 10**6 // 25, n=400, log_m=14.0,
            trials=1000, seed=9,
        )
        assert check.violation_rate < 0.01

    def test_precondition_window(self):
        with pytest.raises(ConfigurationError):
            check_statement_3(10**4, 5000, 10**4 // 2, n=400, log_m=14.0)

    def test_precondition_mean(self):
        with pytest.raises(ConfigurationError):
            check_statement_3(10**6, 10, 1000, n=400, log_m=14.0)
