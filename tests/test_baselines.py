"""Tests for baselines: greedy, lazy greedy, set-arrival, trivial."""

from __future__ import annotations

import pytest

from repro.analysis.opt import exact_opt
from repro.baselines.emek_rosen import SetArrivalThresholdGreedy
from repro.baselines.greedy import greedy_cover, greedy_cover_size
from repro.baselines.lazy_greedy import lazy_greedy_cover
from repro.baselines.store_all import StoreAllAlgorithm
from repro.baselines.trivial import FirstFitAlgorithm, UniformSampleAlgorithm
from repro.errors import (
    ConfigurationError,
    InfeasibleInstanceError,
    InvalidStreamError,
)
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import (
    RandomOrder,
    RoundRobinInterleaveOrder,
    SetGroupedOrder,
)
from repro.streaming.stream import ReplayableStream, stream_of


class TestGreedy:
    def test_valid_cover(self, chain_instance):
        result = greedy_cover(chain_instance)
        result.verify(chain_instance)

    def test_optimal_on_star(self, star_instance):
        assert greedy_cover(star_instance).cover_size == 1

    def test_ln_n_guarantee(self):
        import math

        instance = fixed_size_instance(50, 100, set_size=7, seed=1)
        opt_size, _ = exact_opt(instance)
        greedy_size = greedy_cover_size(instance)
        assert greedy_size <= opt_size * (math.log(50) + 1)

    def test_greedy_at_least_opt(self):
        instance = fixed_size_instance(30, 60, set_size=6, seed=2)
        opt_size, _ = exact_opt(instance)
        assert greedy_cover_size(instance) >= opt_size

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleInstanceError):
            greedy_cover(SetCoverInstance(3, [{0, 1}]))

    def test_deterministic(self, chain_instance):
        assert greedy_cover(chain_instance).cover == greedy_cover(
            chain_instance
        ).cover


class TestLazyGreedy:
    def test_valid_cover(self, chain_instance):
        result = lazy_greedy_cover(chain_instance)
        result.verify(chain_instance)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_plain_greedy_size(self, seed):
        instance = fixed_size_instance(50, 150, set_size=7, seed=seed)
        assert (
            lazy_greedy_cover(instance).cover_size
            == greedy_cover(instance).cover_size
        )

    def test_fewer_evaluations_than_naive(self):
        instance = fixed_size_instance(80, 400, set_size=8, seed=4)
        result = lazy_greedy_cover(instance)
        naive_evaluations = instance.m * result.cover_size
        assert result.diagnostics["gain_evaluations"] < naive_evaluations

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleInstanceError):
            lazy_greedy_cover(SetCoverInstance(3, [{0}]))


class TestSetArrivalThresholdGreedy:
    def test_valid_on_grouped_stream(self):
        planted = planted_partition_instance(64, 200, opt_size=8, seed=1)
        result = SetArrivalThresholdGreedy(seed=1).run(
            stream_of(planted.instance, SetGroupedOrder(seed=1))
        )
        result.verify(planted.instance)

    def test_rejects_interleaved_stream(self):
        planted = planted_partition_instance(64, 50, opt_size=8, seed=2)
        algorithm = SetArrivalThresholdGreedy(seed=2)
        with pytest.raises(InvalidStreamError):
            algorithm.run(
                stream_of(
                    planted.instance, RoundRobinInterleaveOrder(seed=2)
                )
            )

    def test_canonical_order_is_grouped(self, chain_instance):
        result = SetArrivalThresholdGreedy(seed=3).run(
            stream_of(chain_instance)
        )
        result.verify(chain_instance)

    def test_two_sqrt_n_guarantee(self):
        import math

        n = 100
        planted = planted_partition_instance(n, 400, opt_size=10, seed=4)
        result = SetArrivalThresholdGreedy(seed=4).run(
            stream_of(planted.instance, SetGroupedOrder(seed=4))
        )
        assert result.cover_size <= 2 * math.sqrt(n) * planted.opt_upper_bound

    def test_space_independent_of_m(self):
        peaks = []
        for m in (100, 800):
            planted = planted_partition_instance(64, m, opt_size=8, seed=5)
            result = SetArrivalThresholdGreedy(seed=5).run(
                stream_of(planted.instance, SetGroupedOrder(seed=5))
            )
            peaks.append(result.space.peak_words)
        assert peaks[1] < peaks[0] * 1.5  # flat in m

    def test_custom_threshold(self, star_instance):
        result = SetArrivalThresholdGreedy(threshold=1.0, seed=6).run(
            stream_of(star_instance, SetGroupedOrder(seed=6))
        )
        result.verify(star_instance)


class TestStoreAll:
    def test_matches_greedy(self):
        instance = fixed_size_instance(40, 100, set_size=6, seed=7)
        stored = StoreAllAlgorithm(seed=7).run(
            stream_of(instance, RandomOrder(seed=7))
        )
        stored.verify(instance)
        assert stored.cover_size == greedy_cover_size(instance)

    def test_space_is_stream_length(self):
        instance = fixed_size_instance(40, 100, set_size=6, seed=8)
        result = StoreAllAlgorithm(seed=8).run(stream_of(instance))
        assert result.space.peak_words >= instance.num_edges

    def test_order_invariant_quality(self):
        instance = fixed_size_instance(40, 100, set_size=6, seed=9)
        replayable_a = ReplayableStream(instance, RandomOrder(seed=9))
        replayable_b = ReplayableStream(
            instance, RoundRobinInterleaveOrder(seed=9)
        )
        a = StoreAllAlgorithm(seed=9).run(replayable_a.fresh())
        b = StoreAllAlgorithm(seed=9).run(replayable_b.fresh())
        assert a.cover_size == b.cover_size


class TestFirstFit:
    def test_valid_cover(self, chain_instance):
        result = FirstFitAlgorithm(seed=1).run(stream_of(chain_instance))
        result.verify(chain_instance)

    def test_cover_at_most_n(self):
        instance = fixed_size_instance(50, 300, set_size=5, seed=10)
        result = FirstFitAlgorithm(seed=10).run(
            stream_of(instance, RandomOrder(seed=10))
        )
        assert result.cover_size <= instance.n

    def test_every_element_patched(self, tiny_instance):
        result = FirstFitAlgorithm(seed=11).run(stream_of(tiny_instance))
        assert result.diagnostics["patched_elements"] == tiny_instance.n


class TestUniformSample:
    def test_valid_cover(self):
        instance = fixed_size_instance(50, 200, set_size=6, seed=12)
        result = UniformSampleAlgorithm(rate=0.1, seed=12).run(
            stream_of(instance, RandomOrder(seed=12))
        )
        result.verify(instance)

    def test_rate_one_covers_with_first_sets(self, chain_instance):
        result = UniformSampleAlgorithm(rate=1.0, seed=13).run(
            stream_of(chain_instance)
        )
        result.verify(chain_instance)
        assert result.diagnostics["patched_elements"] == 0

    def test_rate_zero_degenerates_to_first_fit(self, chain_instance):
        result = UniformSampleAlgorithm(rate=0.0, seed=14).run(
            stream_of(chain_instance)
        )
        result.verify(chain_instance)
        assert result.diagnostics["patched_elements"] == chain_instance.n

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            UniformSampleAlgorithm(rate=1.5)
