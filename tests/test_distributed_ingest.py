"""Streaming ingest: bounded queues, backpressure, and routing parity.

The streaming path must be invisible semantically (``ingest="stream"``
produces the same :class:`DistributedResult` as the materialized path)
and visible operationally (the hand-off buffer never holds more than
``queue_depth`` chunks per shard — the acceptance criterion of the
bounded-memory design).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    BoundedShardQueue,
    ShardRouter,
    run_distributed,
    stream_ingest,
)
from repro.distributed.router import (
    STRATEGIES,
    edge_hash_worker,
    edge_hash_workers_columns,
)
from repro.faults.injectors import FaultSpec
from repro.generators.planted import planted_partition_instance
from repro.obs.tracer import TraceCollector
from repro.streaming.orders import make_order


@pytest.fixture(scope="module")
def instance():
    return planted_partition_instance(120, 60, opt_size=10, seed=17).instance


class TestBoundedShardQueue:
    def test_fifo_and_close(self):
        queue = BoundedShardQueue(depth=4)
        queue.put((1,))
        queue.put((2,))
        queue.close()
        assert queue.get() == (1,)
        assert queue.get() == (2,)
        assert queue.get() is None  # closed + drained
        assert queue.chunks_in == 2

    def test_put_after_close_rejected(self):
        queue = BoundedShardQueue(depth=1)
        queue.close()
        with pytest.raises(ValueError):
            queue.put((1,))

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedShardQueue(depth=0)

    def test_put_blocks_until_get(self):
        queue = BoundedShardQueue(depth=1)
        queue.put((1,))
        released = threading.Event()

        def producer():
            queue.put((2,))  # blocks: queue is full
            released.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not released.is_set(), "put must block while the queue is full"
        assert queue.get() == (1,)
        thread.join(timeout=5)
        assert released.is_set()
        assert queue.peak_depth == 1


class TestBackpressureBound:
    """Acceptance criterion: peak buffering never exceeds queue_depth."""

    def test_slow_consumer_hits_but_never_exceeds_bound(self):
        depth = 3
        chunks = [[(i,)] for i in range(50)]  # one shard, 50 chunks

        def slow_consume(chunk):
            time.sleep(0.002)

        report = stream_ingest(
            iter(chunks),
            consumers=[slow_consume],
            chunk_size=1,
            queue_depth=depth,
            threaded=True,
        )
        assert report.chunks_routed == 50
        assert report.chunks_routed > depth  # bound was actually exercised
        assert report.max_peak_depth <= depth
        assert report.max_peak_depth >= 1

    def test_streaming_run_reports_bounded_peaks(self, instance):
        collector_depth = 2
        result = run_distributed(
            instance,
            workers=4,
            seed=9,
            ingest="stream",
            chunk_size=16,
            queue_depth=collector_depth,
        )
        report = result.ingest
        assert report is not None
        assert report.queue_depth == collector_depth
        assert report.chunks_routed > collector_depth
        assert report.max_peak_depth <= collector_depth
        assert report.edges_routed == instance.num_edges

    def test_consumer_exception_propagates_without_deadlock(self):
        chunks = [[(i,)] for i in range(200)]

        def exploding(chunk):
            raise RuntimeError("shard ingest failed")

        with pytest.raises(RuntimeError, match="shard ingest failed"):
            stream_ingest(
                iter(chunks),
                consumers=[exploding],
                chunk_size=1,
                queue_depth=1,
                threaded=True,
            )

    def test_inline_mode_pins_peak_at_one(self):
        chunks = [[(i,), (i + 100,)] for i in range(10)]
        seen = [[], []]
        report = stream_ingest(
            iter(chunks),
            consumers=[seen[0].append, seen[1].append],
            chunk_size=1,
            queue_depth=5,
            threaded=False,
        )
        assert report.max_peak_depth == 1
        assert not report.threaded
        assert [c[0] for c in seen[0]] == list(range(10))


class TestChunkedRoutingParity:
    """iter_chunks concatenation must reproduce route_edges exactly."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("chunk_size", [1, 7, 4096])
    def test_chunks_concatenate_to_plan(self, instance, strategy, chunk_size):
        edges = list(instance.edges())
        router = ShardRouter(strategy=strategy, workers=4, seed=3)
        plan = router.route_edges(instance, edges)
        assigner = router.chunk_assigner(instance)
        rebuilt = [[] for _ in range(4)]
        for per_shard in assigner.iter_chunks(edges, chunk_size):
            for index, chunk in enumerate(per_shard):
                rebuilt[index].extend(chunk)
        assert tuple(tuple(b) for b in rebuilt) == plan.shard_edges

    @settings(max_examples=50, deadline=None)
    @given(
        set_id=st.integers(min_value=0, max_value=2**20),
        element=st.integers(min_value=0, max_value=2**20),
        workers=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_vectorized_hash_matches_scalar(
        self, set_id, element, workers, seed
    ):
        scalar = edge_hash_worker(set_id, element, workers, seed)
        column = edge_hash_workers_columns(
            np.array([set_id], dtype=np.int64),
            np.array([element], dtype=np.int64),
            workers,
            seed,
        )
        assert int(column[0]) == scalar


class TestStreamingSemanticParity:
    """ingest="stream" is operational: same result, same trace bytes."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_stream_equals_materialize(self, instance, strategy):
        kwargs = dict(workers=4, strategy=strategy, seed=23, max_workers=4)
        materialized = run_distributed(instance, ingest="materialize", **kwargs)
        streamed = run_distributed(
            instance, ingest="stream", chunk_size=16, queue_depth=2, **kwargs
        )
        assert streamed == materialized
        streamed.verify(instance)

    def test_stream_trace_bytes_identical(self, instance):
        kwargs = dict(workers=3, seed=2, max_workers=3)
        collector_a = TraceCollector()
        run_distributed(
            instance, ingest="materialize", collector=collector_a, **kwargs
        )
        collector_b = TraceCollector()
        run_distributed(
            instance,
            ingest="stream",
            chunk_size=8,
            queue_depth=2,
            collector=collector_b,
            **kwargs,
        )
        assert collector_a.to_jsonl() == collector_b.to_jsonl()

    def test_stream_with_faults_and_order(self, instance):
        # RandomOrder.apply advances its RNG, so each run gets a fresh
        # (identically seeded) order object.
        def kwargs():
            return dict(
                workers=4,
                seed=31,
                order=make_order("random", seed=4),
                faults=[FaultSpec(kind="duplicate", rate=0.1, seed=8)],
            )

        materialized = run_distributed(
            instance, ingest="materialize", **kwargs()
        )
        streamed = run_distributed(instance, ingest="stream", **kwargs())
        assert streamed == materialized

    def test_stream_with_process_backend(self, instance):
        kwargs = dict(workers=4, seed=12, max_workers=2)
        reference = run_distributed(instance, backend="serial", **kwargs)
        streamed = run_distributed(
            instance, backend="process", ingest="stream", **kwargs
        )
        assert streamed == reference
