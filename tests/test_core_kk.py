"""Tests for the KK-algorithm (Theorem 1)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.opt import exact_opt
from repro.core.kk import KKAlgorithm
from repro.core.scaling import Scaling
from repro.errors import SpaceBudgetExceededError
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.streaming.orders import (
    RandomOrder,
    RoundRobinInterleaveOrder,
)
from repro.streaming.space import SpaceBudget
from repro.streaming.stream import ReplayableStream, stream_of


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_cover_random_order(self, seed):
        instance = fixed_size_instance(40, 120, set_size=6, seed=seed)
        result = KKAlgorithm(seed=seed).run(
            stream_of(instance, RandomOrder(seed=seed))
        )
        result.verify(instance)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_cover_adversarial_order(self, seed):
        instance = fixed_size_instance(40, 120, set_size=6, seed=seed)
        result = KKAlgorithm(seed=seed).run(
            stream_of(instance, RoundRobinInterleaveOrder(seed=seed))
        )
        result.verify(instance)

    def test_star_instance_small_cover(self, star_instance):
        result = KKAlgorithm(seed=1).run(stream_of(star_instance))
        result.verify(star_instance)
        assert result.cover_size <= star_instance.m

    def test_tiny_instance(self, tiny_instance):
        result = KKAlgorithm(seed=3).run(stream_of(tiny_instance))
        result.verify(tiny_instance)


class TestDeterminism:
    def test_same_seed_same_output(self):
        instance = fixed_size_instance(30, 90, set_size=5, seed=7)
        replayable = ReplayableStream(instance, RandomOrder(seed=7))
        a = KKAlgorithm(seed=11).run(replayable.fresh())
        b = KKAlgorithm(seed=11).run(replayable.fresh())
        assert a.cover == b.cover
        assert a.certificate == b.certificate


class TestSpace:
    def test_space_linear_in_m(self):
        """Peak words grow roughly linearly with m: the Θ̃(m) bound."""
        peaks = []
        for m in (200, 400, 800):
            instance = fixed_size_instance(50, m, set_size=5, seed=m)
            result = KKAlgorithm(seed=1).run(
                stream_of(instance, RandomOrder(seed=1))
            )
            peaks.append(result.space.peak_words)
        assert peaks[1] / peaks[0] > 1.5
        assert peaks[2] / peaks[1] > 1.5

    def test_counters_dominate(self):
        instance = fixed_size_instance(30, 600, set_size=5, seed=1)
        result = KKAlgorithm(seed=1).run(
            stream_of(instance, RandomOrder(seed=1))
        )
        assert result.space.dominant_component() == "degree-counters"

    def test_fits_generous_budget(self):
        instance = fixed_size_instance(30, 200, set_size=5, seed=2)
        budget = SpaceBudget(words=10 * (200 + 30 * 3))
        result = KKAlgorithm(seed=2, space_budget=budget).run(
            stream_of(instance, RandomOrder(seed=2))
        )
        result.verify(instance)

    def test_budget_enforced_when_too_small(self):
        instance = fixed_size_instance(30, 200, set_size=5, seed=2)
        algorithm = KKAlgorithm(seed=2, space_budget=SpaceBudget(words=10))
        with pytest.raises(SpaceBudgetExceededError):
            algorithm.run(stream_of(instance, RandomOrder(seed=2)))


class TestQuality:
    def test_ratio_within_polylog_sqrt_n(self):
        """Cover at most ~√n·polylog times the planted optimum."""
        n = 100
        planted = planted_partition_instance(n, 500, opt_size=10, seed=5)
        result = KKAlgorithm(seed=5).run(
            stream_of(planted.instance, RoundRobinInterleaveOrder(seed=5))
        )
        result.verify(planted.instance)
        ratio = result.cover_size / planted.opt_upper_bound
        assert ratio <= 4 * math.sqrt(n)

    def test_beats_all_singletons_on_structured(self):
        planted = planted_partition_instance(80, 300, opt_size=4, seed=6)
        result = KKAlgorithm(seed=6).run(
            stream_of(planted.instance, RandomOrder(seed=6))
        )
        assert result.cover_size < planted.instance.n

    def test_exact_ratio_on_small_instance(self):
        instance = fixed_size_instance(20, 40, set_size=5, seed=8)
        opt_size, _ = exact_opt(instance)
        result = KKAlgorithm(seed=8).run(
            stream_of(instance, RandomOrder(seed=8))
        )
        assert result.cover_size <= opt_size * instance.n  # sanity ceiling
        assert result.cover_size >= opt_size  # can't beat OPT


class TestMechanism:
    def test_diagnostics_present(self):
        instance = fixed_size_instance(30, 100, set_size=5, seed=9)
        result = KKAlgorithm(seed=9).run(
            stream_of(instance, RandomOrder(seed=9))
        )
        for key in (
            "max_level_reached",
            "inclusion_events",
            "patched_elements",
            "level_width",
        ):
            assert key in result.diagnostics

    def test_level_width_follows_scaling(self):
        scaling = Scaling.practical().with_overrides(kk_level_width_factor=2.0)
        instance = fixed_size_instance(100, 50, set_size=10, seed=1)
        result = KKAlgorithm(scaling=scaling, seed=1).run(
            stream_of(instance, RandomOrder(seed=1))
        )
        assert result.diagnostics["level_width"] == 20.0

    def test_levels_reached_with_large_sets(self):
        # Sets of size ~n guarantee counters cross the sqrt(n) width.
        instance = fixed_size_instance(64, 20, set_size=60, seed=2)
        result = KKAlgorithm(seed=2).run(
            stream_of(instance, RandomOrder(seed=2))
        )
        assert result.diagnostics["max_level_reached"] >= 1

    def test_included_set_witnesses_later_elements(self):
        # A set included early must serve as witness for its later edges.
        instance = fixed_size_instance(64, 10, set_size=60, seed=3)
        result = KKAlgorithm(seed=3).run(
            stream_of(instance, RandomOrder(seed=3))
        )
        result.verify(instance)
        if result.diagnostics["inclusion_events"] > 0:
            included_witness_count = sum(
                1 for witness in result.certificate.values()
                if witness in result.cover
            )
            assert included_witness_count == instance.n
