"""Tests for the Scaling constant pack: formulas, presets, clamps."""

from __future__ import annotations

import math

import pytest

from repro.core.scaling import Scaling
from repro.errors import ConfigurationError


class TestPresets:
    def test_paper_preset_name(self):
        assert Scaling.paper().name == "paper"

    def test_practical_preset_name(self):
        assert Scaling.practical().name == "practical"

    def test_presets_frozen(self):
        with pytest.raises(Exception):
            Scaling.paper().name = "x"

    def test_with_overrides(self):
        scaled = Scaling.practical().with_overrides(sample_constant=2.0)
        assert scaled.sample_constant == 2.0
        assert scaled.name == "practical"


class TestValidation:
    def test_rejects_nonpositive_sample_constant(self):
        with pytest.raises(ConfigurationError):
            Scaling(sample_constant=0)

    def test_rejects_nonpositive_threshold_factor(self):
        with pytest.raises(ConfigurationError):
            Scaling(special_threshold_factor=0)

    def test_rejects_bad_min_counts(self):
        with pytest.raises(ConfigurationError):
            Scaling(min_epochs=0)

    def test_rejects_bad_budget_fraction(self):
        with pytest.raises(ConfigurationError):
            Scaling(phase_budget_fraction=0.0)
        with pytest.raises(ConfigurationError):
            Scaling(phase_budget_fraction=1.5)

    def test_rejects_bad_max_epochs(self):
        with pytest.raises(ConfigurationError):
            Scaling(max_epochs=0)


class TestPaperFormulas:
    """The paper preset reproduces the listings' expressions."""

    def test_special_threshold_is_j_log6(self):
        scaling = Scaling.paper()
        m = 2**16  # log2 m = 16
        assert scaling.special_threshold(3, m) == pytest.approx(3 * 16**6)

    def test_epoch0_probability(self):
        scaling = Scaling.paper()
        n, m = 100, 2**10
        assert scaling.epoch0_sample_probability(n, m) == pytest.approx(
            math.sqrt(100) * 10 / m
        )

    def test_special_probability_doubles(self):
        scaling = Scaling.paper()
        p1 = scaling.special_sample_probability(1, 100, 10**6)
        p2 = scaling.special_sample_probability(2, 100, 10**6)
        assert p2 == pytest.approx(2 * p1)

    def test_tracking_probability(self):
        scaling = Scaling.paper()
        assert scaling.tracking_sample_probability(3, 100) == pytest.approx(
            8 / 100
        )

    def test_tracking_probability_capped(self):
        assert Scaling.paper().tracking_sample_probability(30, 100) == 1.0

    def test_subepoch_length_formula(self):
        scaling = Scaling.paper()
        n, m, big_n = 256, 2**12, 10**6
        expected = (2**3) * big_n / (n * 12)
        assert scaling.subepoch_length(3, n, m, big_n) == int(expected)

    def test_num_algorithms_paper_formula_positive_regime(self):
        scaling = Scaling.paper()
        # Huge n so the formula is positive: K = 0.5*log2(n) - 3*log2(log2 m) - 2
        n = 2**40
        m = 2**20
        expected = int(0.5 * 40 - 3 * math.log2(20) - 2)
        assert scaling.num_algorithms(n, m) == expected

    def test_num_algorithms_clamped_small_n(self):
        assert Scaling.paper().num_algorithms(100, 10**4) == 1

    def test_num_epochs_formula(self):
        scaling = Scaling.paper()
        n, m = 2**8, 2**20
        assert scaling.num_epochs(n, m) == 20 - 4


class TestProbabilityCaps:
    @pytest.mark.parametrize("j", [1, 5, 20, 60])
    def test_special_probability_capped(self, j):
        p = Scaling.practical().special_sample_probability(j, 100, 1000)
        assert 0.0 <= p <= 1.0

    def test_epoch0_probability_capped(self):
        assert Scaling.practical().epoch0_sample_probability(10**6, 10) == 1.0

    def test_kk_inclusion_capped(self):
        assert Scaling.practical().kk_inclusion_probability(100, 100, 10) == 1.0


class TestPracticalDerivations:
    def test_max_epochs_clamp(self):
        scaling = Scaling.practical()
        assert scaling.num_epochs(100, 10**8) <= scaling.max_epochs

    def test_budget_derived_algorithms_grow_with_n(self):
        scaling = Scaling.practical()
        small = scaling.num_algorithms(100, 10**4)
        large = scaling.num_algorithms(10**6, 10**12)
        assert large > small

    def test_min_algorithms_floor(self):
        assert Scaling.practical().num_algorithms(4, 16) >= 1

    def test_tracking_mark_threshold_floor(self):
        scaling = Scaling.practical()
        # Tiny m: the paper value is << 1, the floor bites.
        assert scaling.tracking_mark_threshold(1, 100, 1000) == pytest.approx(
            scaling.min_tracking_mark
        )

    def test_tracking_mark_threshold_paper_value_dominates(self):
        scaling = Scaling.practical()
        value = scaling.tracking_mark_threshold(10, 10, 10**9)
        assert value > scaling.min_tracking_mark


class TestDetection:
    def test_detection_window_bounded_by_stream(self):
        scaling = Scaling.practical()
        assert scaling.detection_window(100, 10, 50) <= 50

    def test_detection_window_positive(self):
        assert Scaling.practical().detection_window(4, 10**6, 100) >= 1

    def test_high_degree_cutoff(self):
        scaling = Scaling.practical()
        assert scaling.high_degree_cutoff(100, 1000) == pytest.approx(
            1.1 * 1000 / 10
        )

    def test_detection_mark_count_at_least_one(self):
        assert Scaling.practical().detection_mark_count(100, 10**6, 10**4) >= 1.0

    def test_mark_count_below_cutoff_expectation(self):
        scaling = Scaling.practical()
        n, m, big_n = 400, 10**5, 10**6
        window = scaling.detection_window(n, m, big_n)
        expected_at_cutoff = (
            scaling.high_degree_cutoff(n, m) * window / big_n
        )
        mark = scaling.detection_mark_count(n, m, big_n)
        if expected_at_cutoff > 1.5:
            assert mark < expected_at_cutoff


class TestKKParameters:
    def test_level_width_sqrt_n(self):
        assert Scaling.paper().kk_level_width(100) == 10

    def test_level_width_min_one(self):
        assert Scaling.paper().kk_level_width(1) == 1

    def test_inclusion_probability_doubles(self):
        scaling = Scaling.paper()
        p1 = scaling.kk_inclusion_probability(1, 100, 10**5)
        p2 = scaling.kk_inclusion_probability(2, 100, 10**5)
        assert p2 == pytest.approx(2 * p1)

    def test_inclusion_probability_formula(self):
        scaling = Scaling.paper()
        assert scaling.kk_inclusion_probability(3, 100, 10**5) == pytest.approx(
            8 * 10 / 10**5
        )
