"""Tests for repro.types: edges, rng construction, coercions."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.types import (
    Edge,
    as_edge,
    iter_edges,
    make_numpy_rng,
    make_rng,
)


class TestEdge:
    def test_edge_fields(self):
        edge = Edge(3, 7)
        assert edge.set_id == 3
        assert edge.element == 7

    def test_edge_is_tuple(self):
        assert Edge(1, 2) == (1, 2)

    def test_edge_unpacking(self):
        set_id, element = Edge(5, 9)
        assert (set_id, element) == (5, 9)

    def test_edge_hashable(self):
        assert len({Edge(1, 2), Edge(1, 2), Edge(2, 1)}) == 2


class TestAsEdge:
    def test_from_tuple(self):
        assert as_edge((4, 5)) == Edge(4, 5)

    def test_from_list(self):
        assert as_edge([4, 5]) == Edge(4, 5)

    def test_from_edge(self):
        assert as_edge(Edge(4, 5)) == Edge(4, 5)

    def test_coerces_numpy_ints(self):
        edge = as_edge((np.int64(2), np.int64(3)))
        assert isinstance(edge.set_id, int)
        assert edge == Edge(2, 3)

    def test_rejects_negative_set(self):
        with pytest.raises(ValueError):
            as_edge((-1, 0))

    def test_rejects_negative_element(self):
        with pytest.raises(ValueError):
            as_edge((0, -1))

    def test_rejects_wrong_arity(self):
        with pytest.raises((ValueError, TypeError)):
            as_edge((1, 2, 3))


class TestIterEdges:
    def test_yields_edges(self):
        out = list(iter_edges([(0, 1), (2, 3)]))
        assert out == [Edge(0, 1), Edge(2, 3)]

    def test_empty(self):
        assert list(iter_edges([])) == []


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_random_instance(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng

    def test_from_numpy_generator(self):
        gen = np.random.default_rng(3)
        rng = make_rng(gen)
        assert isinstance(rng, random.Random)

    def test_from_numpy_generator_deterministic(self):
        a = make_rng(np.random.default_rng(3)).random()
        b = make_rng(np.random.default_rng(3)).random()
        assert a == b

    def test_none_seed_allowed(self):
        assert 0.0 <= make_rng(None).random() < 1.0


class TestMakeNumpyRng:
    def test_int_seed_deterministic(self):
        a = make_numpy_rng(5).integers(0, 1000)
        b = make_numpy_rng(5).integers(0, 1000)
        assert a == b

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert make_numpy_rng(gen) is gen

    def test_from_python_random(self):
        gen = make_numpy_rng(random.Random(9))
        assert isinstance(gen, np.random.Generator)

    def test_from_python_random_deterministic(self):
        a = make_numpy_rng(random.Random(9)).integers(0, 10**9)
        b = make_numpy_rng(random.Random(9)).integers(0, 10**9)
        assert a == b
