"""Tests for SetCoverInstance: shape, feasibility, covers, certificates."""

from __future__ import annotations

import pytest

from repro.errors import (
    InfeasibleInstanceError,
    InvalidCoverError,
    InvalidInstanceError,
)
from repro.streaming.instance import SetCoverInstance, instance_from_edges
from repro.types import Edge


class TestConstruction:
    def test_basic_shape(self, tiny_instance):
        assert tiny_instance.n == 4
        assert tiny_instance.m == 3
        assert tiny_instance.num_edges == 6

    def test_rejects_zero_universe(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(0, [{0}])

    def test_rejects_no_sets(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(3, [])

    def test_rejects_out_of_range_element(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(3, [{0, 3}])

    def test_rejects_negative_element(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(3, [{-1}])

    def test_empty_sets_allowed(self):
        instance = SetCoverInstance(2, [{0, 1}, set()])
        assert instance.set_size(1) == 0

    def test_duplicate_members_collapse(self):
        instance = SetCoverInstance(3, [[0, 0, 1]])
        assert instance.set_size(0) == 2

    def test_name_recorded(self):
        assert SetCoverInstance(1, [{0}], name="x").name == "x"


class TestAccessors:
    def test_set_members(self, tiny_instance):
        assert tiny_instance.set_members(1) == frozenset({1, 2})

    def test_set_members_out_of_range(self, tiny_instance):
        with pytest.raises(InvalidInstanceError):
            tiny_instance.set_members(3)

    def test_contains(self, tiny_instance):
        assert tiny_instance.contains(0, 1)
        assert not tiny_instance.contains(0, 2)

    def test_sets_tuple(self, tiny_instance):
        assert len(tiny_instance.sets()) == 3

    def test_element_degrees(self, tiny_instance):
        # element 0: set 0 only; 1: sets 0,1; 2: sets 1,2; 3: set 2.
        assert list(tiny_instance.element_degrees()) == [1, 2, 2, 1]

    def test_element_degree_single(self, tiny_instance):
        assert tiny_instance.element_degree(1) == 2

    def test_element_degree_out_of_range(self, tiny_instance):
        with pytest.raises(InvalidInstanceError):
            tiny_instance.element_degree(4)

    def test_covering_sets(self, tiny_instance):
        assert tiny_instance.covering_sets(2) == frozenset({1, 2})

    def test_covering_sets_out_of_range(self, tiny_instance):
        with pytest.raises(InvalidInstanceError):
            tiny_instance.covering_sets(9)


class TestEdges:
    def test_edges_enumeration(self, tiny_instance):
        edges = list(tiny_instance.edges())
        assert len(edges) == 6
        assert edges[0] == Edge(0, 0)
        assert all(isinstance(e, Edge) for e in edges)

    def test_edges_sorted_within_set(self, tiny_instance):
        edges = list(tiny_instance.edges())
        by_set = {}
        for e in edges:
            by_set.setdefault(e.set_id, []).append(e.element)
        for elements in by_set.values():
            assert elements == sorted(elements)

    def test_edges_match_membership(self, chain_instance):
        for set_id, element in chain_instance.edges():
            assert chain_instance.contains(set_id, element)


class TestFeasibility:
    def test_feasible_instance_validates(self, tiny_instance):
        tiny_instance.validate()

    def test_infeasible_raises(self):
        instance = SetCoverInstance(3, [{0, 1}])
        with pytest.raises(InfeasibleInstanceError):
            instance.validate()

    def test_is_feasible_flags(self):
        assert SetCoverInstance(2, [{0, 1}]).is_feasible()
        assert not SetCoverInstance(2, [{0}]).is_feasible()


class TestCovers:
    def test_is_cover_true(self, tiny_instance):
        assert tiny_instance.is_cover([0, 2])

    def test_is_cover_false(self, tiny_instance):
        assert not tiny_instance.is_cover([0, 1])

    def test_coverage_of(self, tiny_instance):
        assert tiny_instance.coverage_of([1]) == {1, 2}

    def test_uncovered_by(self, tiny_instance):
        assert tiny_instance.uncovered_by([0]) == {2, 3}

    def test_uncovered_by_full_cover_empty(self, tiny_instance):
        assert tiny_instance.uncovered_by([0, 1, 2]) == set()


class TestCertificates:
    def test_valid_certificate(self, tiny_instance):
        tiny_instance.verify_certificate({0: 0, 1: 0, 2: 2, 3: 2})

    def test_missing_entry_rejected(self, tiny_instance):
        with pytest.raises(InvalidCoverError):
            tiny_instance.verify_certificate({0: 0, 1: 0, 2: 2})

    def test_wrong_witness_rejected(self, tiny_instance):
        with pytest.raises(InvalidCoverError):
            tiny_instance.verify_certificate({0: 2, 1: 0, 2: 2, 3: 2})


class TestDerivedInstances:
    def test_restrict_to_sets(self, tiny_instance):
        sub = tiny_instance.restrict_to_sets([0, 2])
        assert sub.m == 2
        assert sub.set_members(1) == frozenset({2, 3})

    def test_with_extra_sets(self, tiny_instance):
        ext = tiny_instance.with_extra_sets([{0, 3}])
        assert ext.m == 4
        assert ext.set_members(3) == frozenset({0, 3})

    def test_original_unmodified(self, tiny_instance):
        tiny_instance.with_extra_sets([{0}])
        assert tiny_instance.m == 3


class TestEquality:
    def test_equal_instances(self):
        a = SetCoverInstance(3, [{0}, {1, 2}])
        b = SetCoverInstance(3, [{0}, {1, 2}])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_sets_unequal(self):
        a = SetCoverInstance(3, [{0}, {1, 2}])
        b = SetCoverInstance(3, [{0}, {1}])
        assert a != b

    def test_different_universe_unequal(self):
        a = SetCoverInstance(3, [{0}])
        b = SetCoverInstance(4, [{0}])
        assert a != b


class TestInstanceFromEdges:
    def test_roundtrip(self, tiny_instance):
        rebuilt = instance_from_edges(
            tiny_instance.n, tiny_instance.m, tiny_instance.edges()
        )
        assert rebuilt == tiny_instance

    def test_missing_sets_become_empty(self):
        instance = instance_from_edges(2, 3, [(0, 0), (0, 1)])
        assert instance.set_size(1) == 0
        assert instance.set_size(2) == 0

    def test_rejects_set_id_beyond_m(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_edges(2, 1, [(1, 0)])

    def test_duplicate_edges_collapse(self):
        instance = instance_from_edges(2, 1, [(0, 0), (0, 0), (0, 1)])
        assert instance.num_edges == 2
