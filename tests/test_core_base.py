"""Tests for the shared algorithm base machinery."""

from __future__ import annotations

import pytest

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import InvalidCoverError
from repro.streaming.space import SpaceMeter
from repro.streaming.stream import stream_of


class TestFirstSetStore:
    def test_records_first_only(self):
        store = FirstSetStore(SpaceMeter())
        store.observe(5, 0)
        store.observe(7, 0)
        assert store.get(0) == 5

    def test_get_missing_none(self):
        store = FirstSetStore(SpaceMeter())
        assert store.get(3) is None

    def test_len(self):
        store = FirstSetStore(SpaceMeter())
        store.observe(1, 0)
        store.observe(2, 1)
        store.observe(3, 1)
        assert len(store) == 2

    def test_space_charged(self):
        meter = SpaceMeter()
        store = FirstSetStore(meter)
        store.observe(1, 0)
        store.observe(2, 1)
        assert meter.component(FirstSetStore.COMPONENT) == 4  # 2 words each

    def test_patch_completes_cover(self):
        store = FirstSetStore(SpaceMeter())
        store.observe(1, 0)
        store.observe(2, 1)
        certificate = {0: 9}
        cover = {9}
        patched = store.patch(certificate, cover, universe_size=2)
        assert patched == 1
        assert certificate[1] == 2
        assert cover == {9, 2}

    def test_patch_raises_for_unseen_element(self):
        store = FirstSetStore(SpaceMeter())
        store.observe(1, 0)
        with pytest.raises(InvalidCoverError):
            store.patch({}, set(), universe_size=2)

    def test_patch_idempotent_on_complete(self):
        store = FirstSetStore(SpaceMeter())
        certificate = {0: 4}
        cover = {4}
        assert store.patch(certificate, cover, universe_size=1) == 0


class _ConstantAlgorithm(StreamingSetCoverAlgorithm):
    """Test double: covers everything with the first set seen per element."""

    name = "constant"

    def _run(self, stream):
        from repro.core.base import FirstSetStore

        store = FirstSetStore(self._meter)
        for set_id, element in stream:
            store.observe(set_id, element)
        certificate = {}
        cover = set()
        store.patch(certificate, cover, stream.instance.n)
        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=self._meter.report(),
        )


class TestBaseContract:
    def test_run_sets_algorithm_name(self, tiny_instance):
        result = _ConstantAlgorithm(seed=1).run(stream_of(tiny_instance))
        assert result.algorithm == "constant"

    def test_meter_reset_between_runs(self, tiny_instance):
        algorithm = _ConstantAlgorithm(seed=1)
        first = algorithm.run(stream_of(tiny_instance))
        second = algorithm.run(stream_of(tiny_instance))
        assert first.space.peak_words == second.space.peak_words

    def test_coin_extremes(self):
        algorithm = _ConstantAlgorithm(seed=1)
        assert algorithm._coin(1.0) is True
        assert algorithm._coin(0.0) is False
        assert algorithm._coin(1.5) is True
        assert algorithm._coin(-0.5) is False

    def test_coin_seeded(self):
        a = _ConstantAlgorithm(seed=9)
        b = _ConstantAlgorithm(seed=9)
        assert [a._coin(0.5) for _ in range(20)] == [
            b._coin(0.5) for _ in range(20)
        ]

    def test_repr(self):
        assert "constant" in repr(_ConstantAlgorithm(seed=1))

    def test_abstract_run_raises(self, tiny_instance):
        algorithm = StreamingSetCoverAlgorithm(seed=1)
        with pytest.raises(NotImplementedError):
            algorithm.run(stream_of(tiny_instance))
