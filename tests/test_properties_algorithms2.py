"""Property-based tests for the extension algorithms.

Hypothesis coverage for the components added on top of the paper's
three core algorithms: element sampling, success amplification, the
multi-pass threshold greedy, and the fractional MWU pipeline.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.amplification import AmplifiedAlgorithm
from repro.core.element_sampling import ElementSamplingAlgorithm
from repro.core.kk import KKAlgorithm
from repro.multipass import (
    FractionalMWU,
    MultiPassThresholdGreedy,
    geometric_thresholds,
)
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream, stream_of

seeds = st.integers(min_value=0, max_value=2**31)


@st.composite
def feasible_instances(draw, max_n=20, max_m=10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    sets = [
        draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
        for _ in range(m)
    ]
    covered = set().union(*sets) if sets else set()
    for u in range(n):
        if u not in covered:
            sets[u % m].add(u)
    return SetCoverInstance(n, sets, name="hyp2")


class TestElementSamplingProperties:
    @given(
        instance=feasible_instances(),
        seed=seeds,
        alpha=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_always_valid(self, instance, seed, alpha):
        result = ElementSamplingAlgorithm(alpha=alpha, seed=seed).run(
            stream_of(instance, RandomOrder(seed=seed))
        )
        result.verify(instance)

    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_cache_disabled_still_valid(self, instance, seed):
        result = ElementSamplingAlgorithm(
            alpha=4, witness_cache_size=0, seed=seed
        ).run(stream_of(instance, RandomOrder(seed=seed)))
        result.verify(instance)
        assert result.diagnostics["cached_certifications"] == 0


class TestAmplificationProperties:
    @given(
        instance=feasible_instances(),
        seed=seeds,
        copies=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_always_valid_and_best_of_copies(self, instance, seed, copies):
        replayable = ReplayableStream(instance, RandomOrder(seed=seed))
        amplified = AmplifiedAlgorithm(
            factory=lambda s: KKAlgorithm(seed=s), copies=copies, seed=seed
        )
        result = amplified.run(replayable.fresh())
        result.verify(instance)
        assert (
            result.diagnostics["best_cover"]
            <= result.diagnostics["worst_cover"]
        )
        assert result.cover_size == result.diagnostics["best_cover"]


class TestMultiPassProperties:
    @given(
        instance=feasible_instances(),
        seed=seeds,
        passes=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_always_valid(self, instance, seed, passes):
        replayable = ReplayableStream(instance, RandomOrder(seed=seed))
        result = MultiPassThresholdGreedy(passes=passes, seed=seed).run(
            replayable
        )
        result.verify(instance)

    @given(
        n=st.integers(min_value=1, max_value=10**6),
        passes=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_schedule_invariants(self, n, passes):
        schedule = geometric_thresholds(n, passes)
        assert len(schedule) == passes
        assert schedule[-1] == 1.0
        assert all(t >= 1.0 for t in schedule)
        assert all(a >= b for a, b in zip(schedule, schedule[1:]))


class TestFractionalProperties:
    @given(
        instance=feasible_instances(max_n=12, max_m=8),
        seed=seeds,
        increments=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=20, deadline=None)
    def test_rounding_pipeline_always_valid(self, instance, seed, increments):
        replayable = ReplayableStream(instance, RandomOrder(seed=seed))
        result = FractionalMWU(increments=increments, seed=seed).run(
            replayable
        )
        result.verify(instance)

    @given(instance=feasible_instances(max_n=12, max_m=8), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_feasible_fractional_covers_everything(self, instance, seed):
        replayable = ReplayableStream(instance, RandomOrder(seed=seed))
        algorithm = FractionalMWU(
            increments=4 * instance.m, epsilon=0.5, seed=seed
        )
        fractional = algorithm.solve_fractional(replayable)
        assert fractional.min_coverage(instance) >= 1.0 - 1e-9
