"""Smoke tests: every example script runs to completion.

Each example is imported as a module and its ``main()`` executed; the
examples double as integration tests of the public API surface.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_five(self):
        assert len(EXAMPLE_FILES) >= 5

    def test_quickstart_present(self):
        assert "quickstart.py" in EXAMPLE_FILES

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_has_main_and_docstring(self, name):
        module = load_example(name)
        assert callable(module.main)
        assert module.__doc__


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip()  # every example prints its findings
