"""Tests for instance/stream text persistence."""

from __future__ import annotations

import io

import pytest

from repro.errors import InvalidInstanceError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.io import (
    dump_instance,
    dump_stream,
    dumps_instance,
    load_instance,
    load_stream,
    loads_instance,
)
from repro.types import Edge


class TestInstanceRoundtrip:
    def test_string_roundtrip(self, tiny_instance):
        assert loads_instance(dumps_instance(tiny_instance)) == tiny_instance

    def test_file_roundtrip(self, tiny_instance, tmp_path):
        path = tmp_path / "inst.txt"
        dump_instance(tiny_instance, path)
        assert load_instance(path) == tiny_instance

    def test_handle_roundtrip(self, tiny_instance):
        buffer = io.StringIO()
        dump_instance(tiny_instance, buffer)
        buffer.seek(0)
        assert load_instance(buffer) == tiny_instance

    def test_name_preserved(self, tiny_instance):
        loaded = loads_instance(dumps_instance(tiny_instance))
        assert loaded.name == "tiny"

    def test_empty_sets_preserved(self):
        instance = SetCoverInstance(2, [{0, 1}, set()])
        assert loads_instance(dumps_instance(instance)).m == 2


class TestInstanceParsing:
    def test_header_required(self):
        with pytest.raises(InvalidInstanceError):
            loads_instance("0 1\n")

    def test_bad_header_rejected(self):
        with pytest.raises(InvalidInstanceError):
            loads_instance("setcover 3\n")

    def test_non_integer_header(self):
        with pytest.raises(InvalidInstanceError):
            loads_instance("setcover x y\n")

    def test_bad_edge_line(self):
        with pytest.raises(InvalidInstanceError):
            loads_instance("setcover 2 1\n0 1 2\n")

    def test_non_integer_edge(self):
        with pytest.raises(InvalidInstanceError):
            loads_instance("setcover 2 1\n0 a\n")

    def test_blank_lines_and_comments_skipped(self):
        text = "# hello\n\nsetcover 2 1\n# mid comment\n0 0\n0 1\n"
        instance = loads_instance(text)
        assert instance.set_members(0) == frozenset({0, 1})

    def test_empty_input_rejected(self):
        with pytest.raises(InvalidInstanceError):
            loads_instance("")


class TestStreamPersistence:
    def test_roundtrip(self, tmp_path):
        edges = [Edge(0, 1), Edge(2, 0), Edge(1, 1)]
        path = tmp_path / "stream.txt"
        dump_stream(edges, path)
        assert load_stream(path) == edges

    def test_order_preserved(self, tmp_path):
        edges = [Edge(5, 5), Edge(0, 0)]
        path = tmp_path / "stream.txt"
        dump_stream(edges, path)
        assert load_stream(path) == edges  # not sorted

    def test_handle_write(self):
        buffer = io.StringIO()
        dump_stream([Edge(1, 2)], buffer)
        buffer.seek(0)
        assert load_stream(buffer) == [Edge(1, 2)]

    def test_bad_line_rejected(self):
        with pytest.raises(InvalidInstanceError):
            load_stream(io.StringIO("1 2 3\n"))
