"""Tests for Algorithm 1 (Theorem 3): phases, probes, space."""

from __future__ import annotations

import pytest

from repro.core.kk import KKAlgorithm
from repro.core.random_order import (
    RandomOrderAlgorithm,
    StreamLengthOblivious,
)
from repro.core.scaling import Scaling
from repro.generators.random_instances import (
    quadratic_family,
    two_tier_instance,
)
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream, stream_of


@pytest.fixture(scope="module")
def quadratic():
    return quadratic_family(100, density=0.5, seed=42)


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_cover(self, quadratic, seed):
        result = RandomOrderAlgorithm(seed=seed).run(
            stream_of(quadratic, RandomOrder(seed=seed))
        )
        result.verify(quadratic)

    def test_tiny_instance(self, tiny_instance):
        result = RandomOrderAlgorithm(seed=3).run(stream_of(tiny_instance))
        result.verify(tiny_instance)

    def test_star_instance(self, star_instance):
        result = RandomOrderAlgorithm(seed=4).run(
            stream_of(star_instance, RandomOrder(seed=4))
        )
        result.verify(star_instance)

    def test_works_on_canonical_order_too(self, quadratic):
        # No random-order guarantee, but the output must stay feasible.
        result = RandomOrderAlgorithm(seed=5).run(stream_of(quadratic))
        result.verify(quadratic)


class TestDeterminism:
    def test_same_seed_same_output(self, quadratic):
        replayable = ReplayableStream(quadratic, RandomOrder(seed=6))
        a = RandomOrderAlgorithm(seed=6).run(replayable.fresh())
        b = RandomOrderAlgorithm(seed=6).run(replayable.fresh())
        assert a.cover == b.cover


class TestSpace:
    def test_beats_kk_space_on_quadratic_family(self, quadratic):
        replayable = ReplayableStream(quadratic, RandomOrder(seed=7))
        alg1 = RandomOrderAlgorithm(seed=7).run(replayable.fresh())
        kk = KKAlgorithm(seed=7).run(replayable.fresh())
        assert alg1.space.peak_words * 2 < kk.space.peak_words

    def test_batch_counters_bounded_by_m_over_sqrt_n(self, quadratic):
        algorithm = RandomOrderAlgorithm(seed=8)
        result = algorithm.run(stream_of(quadratic, RandomOrder(seed=8)))
        batch_peak = result.space.peak_of("batch-counters")
        import math

        bound = 2 * (quadratic.m / math.isqrt(quadratic.n) + 1) * 2
        assert batch_peak <= bound

    def test_space_advantage_grows_with_n(self):
        ratios = []
        for n in (49, 144):
            instance = quadratic_family(n, density=0.5, seed=n)
            replayable = ReplayableStream(instance, RandomOrder(seed=n))
            alg1 = RandomOrderAlgorithm(seed=n).run(replayable.fresh())
            kk = KKAlgorithm(seed=n).run(replayable.fresh())
            ratios.append(kk.space.peak_words / alg1.space.peak_words)
        assert ratios[1] > ratios[0]


class TestPhases:
    def test_probe_populated(self, quadratic):
        algorithm = RandomOrderAlgorithm(seed=9)
        result = algorithm.run(stream_of(quadratic, RandomOrder(seed=9)))
        probe = algorithm.last_probe
        assert probe is not None
        assert probe.sol_after_algorithm[0] == result.diagnostics["epoch0_sol"]
        assert len(probe.epoch_stats) >= 1

    def test_phase_budget_respected(self, quadratic):
        algorithm = RandomOrderAlgorithm(seed=10)
        result = algorithm.run(stream_of(quadratic, RandomOrder(seed=10)))
        consumed = result.diagnostics["phase_edges_consumed"]
        assert consumed <= 0.75 * quadratic.num_edges

    def test_epoch0_sample_size(self, quadratic):
        import math

        result = RandomOrderAlgorithm(seed=11).run(
            stream_of(quadratic, RandomOrder(seed=11))
        )
        expected = (
            math.sqrt(quadratic.n)
            * math.log2(quadratic.m)
        )
        assert result.diagnostics["epoch0_sol"] <= 3 * expected

    def test_loop_counts_recorded(self, quadratic):
        result = RandomOrderAlgorithm(seed=12).run(
            stream_of(quadratic, RandomOrder(seed=12))
        )
        assert result.diagnostics["num_algorithms"] >= 1
        assert result.diagnostics["num_epochs"] >= 1
        assert result.diagnostics["num_batches"] >= 1


class TestInnerMachinery:
    def test_special_sets_fire_on_two_tier(self):
        instance = two_tier_instance(
            2500, num_small=20000, num_big=60, seed=13
        )
        algorithm = RandomOrderAlgorithm(seed=13)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=13)))
        result.verify(instance)
        probe = algorithm.last_probe
        total_specials = sum(s.special_sets for s in probe.epoch_stats)
        assert total_specials > 0

    def test_inclusion_positions_consistent(self):
        instance = two_tier_instance(
            2500, num_small=20000, num_big=60, seed=14
        )
        algorithm = RandomOrderAlgorithm(seed=14)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=14)))
        probe = algorithm.last_probe
        for set_id, position in probe.inclusion_positions.items():
            assert 0 <= position <= instance.num_edges
            assert 0 <= set_id < instance.m
        # The pre-patching Sol count matches the probe's records.
        assert len(probe.inclusion_positions) == int(
            result.diagnostics["sol_before_patching"]
        )

    def test_tracking_can_be_disabled(self):
        scaling = Scaling.practical().with_overrides(enable_tracking=False)
        instance = two_tier_instance(
            2500, num_small=20000, num_big=60, seed=15
        )
        algorithm = RandomOrderAlgorithm(scaling=scaling, seed=15)
        result = algorithm.run(stream_of(instance, RandomOrder(seed=15)))
        result.verify(instance)
        probe = algorithm.last_probe
        assert all(s.marked_by_tracking == 0 for s in probe.epoch_stats)


class TestBatches:
    def test_batches_partition_sets(self):
        batches = RandomOrderAlgorithm._make_batches(10, 3)
        union = set()
        for batch in batches:
            assert union.isdisjoint(batch)
            union.update(batch)
        assert union == set(range(10))

    def test_more_batches_than_sets(self):
        batches = RandomOrderAlgorithm._make_batches(3, 10)
        assert sum(len(b) for b in batches) == 3

    def test_single_batch(self):
        batches = RandomOrderAlgorithm._make_batches(5, 1)
        assert [set(batch) for batch in batches] == [set(range(5))]

    def test_batches_are_contiguous_ranges(self):
        # Batch membership on the hot path is two integer comparisons
        # against the range bounds, so the partition must stay contiguous.
        batches = RandomOrderAlgorithm._make_batches(10, 3)
        assert all(isinstance(batch, range) for batch in batches)
        assert all(batch.step == 1 for batch in batches)
        starts = [batch.start for batch in batches]
        stops = [batch.stop for batch in batches]
        assert starts[0] == 0 and stops[-1] == 10
        assert starts[1:] == stops[:-1]


class TestStreamLengthOblivious:
    def test_valid_cover(self, quadratic):
        result = StreamLengthOblivious(seed=16).run(
            stream_of(quadratic, RandomOrder(seed=16))
        )
        result.verify(quadratic)

    def test_guess_near_truth(self, quadratic):
        result = StreamLengthOblivious(seed=17).run(
            stream_of(quadratic, RandomOrder(seed=17))
        )
        guess = result.diagnostics["chosen_guess"]
        truth = result.diagnostics["true_length"]
        assert guess / truth < 2.1
        assert truth / guess < 2.1

    def test_space_charged_for_all_guesses(self, quadratic):
        result = StreamLengthOblivious(seed=18).run(
            stream_of(quadratic, RandomOrder(seed=18))
        )
        assert result.diagnostics["num_guesses"] > 1
        assert result.space.peak_words > 0
