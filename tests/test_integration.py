"""Cross-module integration tests: full pipelines end to end."""

from __future__ import annotations

import math

import pytest

from repro.analysis.opt import opt_or_bound
from repro.analysis.runner import ExperimentRunner
from repro.baselines.greedy import greedy_cover
from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.kk import KKAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.generators.hard import needle_in_haystack
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import quadratic_family
from repro.lowerbound.disjointness import intersecting_instance
from repro.lowerbound.family import build_family
from repro.lowerbound.reduction import DisjointnessReduction
from repro.streaming.io import dumps_instance, loads_instance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream, stream_of


class TestFullComparisonPipeline:
    """Generator -> stream -> three algorithms -> verified metrics."""

    def test_all_algorithms_one_stream(self):
        planted = planted_partition_instance(100, 800, opt_size=10, seed=1)
        runner = ExperimentRunner(
            algorithms={
                "kk": lambda s: KKAlgorithm(seed=s),
                "alg2": lambda s: LowSpaceAdversarialAlgorithm(
                    alpha=2 * math.sqrt(100), seed=s
                ),
                "alg1": lambda s: RandomOrderAlgorithm(seed=s),
            },
            seed=1,
        )
        rows = runner.compare(planted.instance, "random", opt_handle=10)
        assert len(rows) == 3
        assert all(row.valid for row in rows)
        # None of the streaming algorithms may beat OPT.
        assert all(row.cover_size >= 10 for row in rows)

    def test_metrics_ratios_ordered_sanely(self):
        planted = planted_partition_instance(100, 800, opt_size=10, seed=2)
        greedy = greedy_cover(planted.instance)
        # Greedy with full information beats all one-pass algorithms here.
        stream = ReplayableStream(planted.instance, RandomOrder(seed=2))
        kk = KKAlgorithm(seed=2).run(stream.fresh())
        assert greedy.cover_size <= kk.cover_size


class TestSerializeSolveRoundtrip:
    def test_instance_survives_io_and_solving(self):
        planted = planted_partition_instance(50, 200, opt_size=5, seed=3)
        text = dumps_instance(planted.instance)
        loaded = loads_instance(text)
        result = KKAlgorithm(seed=3).run(
            stream_of(loaded, RandomOrder(seed=3))
        )
        result.verify(planted.instance)  # original and loaded agree


class TestNeedleWorkload:
    """The hard-instance pipeline: OPT=2 needle, streaming algorithms."""

    def test_opt_handle_detects_two(self):
        needle = needle_in_haystack(64, num_decoys=12, t=4, seed=4)
        value, is_exact = opt_or_bound(needle.instance)
        assert value <= 2

    def test_algorithms_stay_feasible_on_needle(self):
        needle = needle_in_haystack(100, num_decoys=30, t=4, seed=5)
        stream = ReplayableStream(needle.instance, RandomOrder(seed=5))
        for algorithm in (
            KKAlgorithm(seed=5),
            LowSpaceAdversarialAlgorithm(alpha=20, seed=5),
            RandomOrderAlgorithm(seed=5),
        ):
            result = algorithm.run(stream.fresh())
            result.verify(needle.instance)
            assert result.cover_size <= needle.instance.m


class TestReductionWithMultipleAlgorithms:
    """Theorem-2 reduction drives different algorithms interchangeably."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: KKAlgorithm(seed=s),
            lambda s: LowSpaceAdversarialAlgorithm(alpha=30, seed=s),
        ],
    )
    def test_witness_run_beats_disjoint_runs(self, factory):
        family = build_family(100, 16, 4, seed=6)
        reduction = DisjointnessReduction(family)
        disjointness = intersecting_instance(16, 4, 3, seed=6)
        witness = disjointness.intersecting_element
        non_witness = (witness + 1) % 16
        outcome = reduction.execute(
            disjointness,
            algorithm_factory=factory,
            seed=6,
            run_indices=[witness, non_witness],
        )
        covers = {run.run_index: run.cover_size for run in outcome.runs}
        assert covers[witness] <= covers[non_witness]


class TestQuadraticRegimePipeline:
    """Theorem 3's regime: m = Θ(n²), random order, space hierarchy."""

    def test_space_hierarchy(self):
        instance = quadratic_family(100, density=0.5, seed=7)
        stream = ReplayableStream(instance, RandomOrder(seed=7))
        alg1 = RandomOrderAlgorithm(seed=7).run(stream.fresh())
        kk = KKAlgorithm(seed=7).run(stream.fresh())
        alg2 = LowSpaceAdversarialAlgorithm(alpha=20, seed=7).run(
            stream.fresh()
        )
        # KK pays Θ(m); both low-space algorithms must be well below it.
        assert alg1.space.peak_words < kk.space.peak_words / 2
        assert alg2.space.peak_words < kk.space.peak_words / 2

    def test_all_covers_valid_and_nontrivial(self):
        instance = quadratic_family(100, density=0.5, seed=8)
        stream = ReplayableStream(instance, RandomOrder(seed=8))
        for algorithm in (
            RandomOrderAlgorithm(seed=8),
            KKAlgorithm(seed=8),
        ):
            result = algorithm.run(stream.fresh())
            result.verify(instance)
            assert result.cover_size <= instance.n
