"""Byte-identity of the vectorized KK kernel against its scalar oracle.

``KKAlgorithm`` (registry name ``"kk"``) was rewritten as a chunked
numpy kernel; the original per-edge loop is kept verbatim as
``KKReferenceAlgorithm`` (``"kk-reference"``).  The contract this module
pins is *byte-identity*, not approximate agreement: for every
(instance, arrival order, seed) the two must produce identical covers,
certificates, diagnostics, space reports and trace JSONL — the kernel
draws its inclusion coins one promotion at a time in stream order from
the same seeded RNG precisely so this holds.

The grids deliberately cross the kernel's internal boundaries: streams
longer than one ``_CHUNK``, inclusion-dense instances that keep the
post-inclusion rescan window (``_RESCAN_WINDOW``) small, and sparse
ones where the window regrows to full chunks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_algorithm, registered_algorithms
from repro.core.kk import (
    _CHUNK,
    KKAlgorithm,
    KKReferenceAlgorithm,
    _occurrence_ranks,
)
from repro.errors import SpaceBudgetExceededError
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.obs.tracer import RecordingTracer
from repro.streaming.orders import RandomOrder, RoundRobinInterleaveOrder
from repro.streaming.space import SpaceBudget
from repro.streaming.stream import ReplayableStream


def _run_pair(instance, order, seed, traced=False):
    """Run both implementations on identical stream views.

    The reference instance's ``name`` is shadowed to ``"kk"`` so the
    result's ``algorithm`` field and the trace attributes — which embed
    the name — compare byte-for-byte rather than differing on the label
    alone.
    """
    stream = ReplayableStream(instance, order)
    outputs = []
    for cls in (KKAlgorithm, KKReferenceAlgorithm):
        algorithm = cls(seed=seed)
        if cls is KKReferenceAlgorithm:
            algorithm.name = "kk"
        tracer = RecordingTracer() if traced else None
        if tracer is not None:
            algorithm.set_tracer(tracer)
        result = algorithm.run(stream.fresh())
        if tracer is not None:
            tracer.finish()
        outputs.append((result, tracer))
    return outputs


def _assert_identical(fast, ref):
    assert fast.cover == ref.cover
    assert fast.certificate == ref.certificate
    assert fast.diagnostics == ref.diagnostics
    assert fast.space == ref.space
    assert fast.algorithm == ref.algorithm
    assert fast == ref


class TestRegistry:
    def test_reference_is_registered(self):
        assert "kk" in registered_algorithms()
        assert "kk-reference" in registered_algorithms()

    def test_make_algorithm_builds_reference(self):
        instance = fixed_size_instance(30, 60, set_size=5, seed=0)
        algorithm = make_algorithm("kk-reference", instance, seed=0)
        assert isinstance(algorithm, KKReferenceAlgorithm)
        assert algorithm.name == "kk-reference"

    def test_reference_shares_the_contract(self):
        # Same constructor surface: the reference is a drop-in.
        assert issubclass(KKReferenceAlgorithm, KKAlgorithm)


class TestDeterministicGrid:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 13])
    @pytest.mark.parametrize(
        "order_factory", [RandomOrder, RoundRobinInterleaveOrder]
    )
    def test_random_instances(self, seed, order_factory):
        instance = fixed_size_instance(120, 400, set_size=10, seed=seed)
        (fast, _), (ref, _) = _run_pair(
            instance, order_factory(seed=seed + 1), seed
        )
        _assert_identical(fast, ref)

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_planted_instances(self, seed):
        planted = planted_partition_instance(80, 300, opt_size=8, seed=seed)
        (fast, _), (ref, _) = _run_pair(
            planted.instance, RandomOrder(seed=seed), seed
        )
        _assert_identical(fast, ref)

    def test_tiny_instance(self, tiny_instance):
        (fast, _), (ref, _) = _run_pair(tiny_instance, RandomOrder(seed=0), 4)
        _assert_identical(fast, ref)

    def test_multi_chunk_stream(self):
        # > one _CHUNK of edges so the chunk boundary (and the window
        # regrowth across it) is genuinely exercised.
        instance = fixed_size_instance(500, 2000, set_size=20, seed=5)
        stream = ReplayableStream(instance, RandomOrder(seed=5))
        assert stream.length > _CHUNK
        (fast, _), (ref, _) = _run_pair(instance, RandomOrder(seed=5), 5)
        _assert_identical(fast, ref)

    def test_inclusion_dense_instance(self):
        # Small universe, many sets: promotions (and inclusions) fire
        # constantly, so the scan restarts on nearly every window — the
        # adversarial regime for the restart discipline.
        instance = fixed_size_instance(40, 600, set_size=6, seed=2)
        (fast, _), (ref, _) = _run_pair(instance, RandomOrder(seed=2), 2)
        _assert_identical(fast, ref)
        assert fast.diagnostics["inclusion_events"] > 0


class TestTraces:
    @pytest.mark.parametrize("seed", [0, 6])
    def test_trace_jsonl_identical(self, seed):
        instance = fixed_size_instance(100, 350, set_size=9, seed=seed)
        (fast, fast_tracer), (ref, ref_tracer) = _run_pair(
            instance, RandomOrder(seed=seed), seed, traced=True
        )
        _assert_identical(fast, ref)
        assert fast_tracer.to_jsonl() == ref_tracer.to_jsonl()
        assert len(fast_tracer.events) > 0


class TestSpaceBudget:
    def test_both_exceed_a_tiny_budget(self):
        instance = fixed_size_instance(100, 400, set_size=10, seed=1)
        stream = ReplayableStream(instance, RandomOrder(seed=1))
        for cls in (KKAlgorithm, KKReferenceAlgorithm):
            algorithm = cls(seed=1, space_budget=SpaceBudget(words=4))
            with pytest.raises(SpaceBudgetExceededError):
                algorithm.run(stream.fresh())


class TestOccurrenceRanks:
    @settings(max_examples=200, deadline=None)
    @given(values=st.lists(st.integers(0, 50), max_size=200))
    def test_matches_counter_scan(self, values):
        array = np.asarray(values, dtype=np.int64)
        counts = {}
        expected = []
        for value in values:
            counts[value] = counts.get(value, 0) + 1
            expected.append(counts[value])
        for bound in (0, 51):  # comparison sort and uint16 radix path
            ranks = _occurrence_ranks(array, value_bound=bound)
            assert ranks.tolist() == expected


class TestPropertyEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=90),
        m=st.integers(min_value=10, max_value=150),
        set_size=st.integers(min_value=2, max_value=9),
        instance_seed=st.integers(min_value=0, max_value=2**16),
        order_seed=st.integers(min_value=0, max_value=2**16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_grid(
        self, n, m, set_size, instance_seed, order_seed, seed
    ):
        set_size = min(set_size, n)
        instance = fixed_size_instance(n, m, set_size, seed=instance_seed)
        (fast, _), (ref, _) = _run_pair(
            instance, RandomOrder(seed=order_seed), seed
        )
        _assert_identical(fast, ref)
