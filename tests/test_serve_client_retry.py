"""Client-side retry honouring the pool's ``retry_after`` pacing hint.

Satellite of the merge PR, closing a serve-hardening roadmap item: a
:class:`~repro.serve.client.ServeClient` built with ``max_retries > 0``
sleeps out a retryable :class:`~repro.errors.AdmissionError`'s
``retry_after`` hint and re-issues the request; the default client
(``max_retries=0``) keeps every rejection a caller-visible typed
error, and rejections the pool marks unretryable (``retry_after=None``)
are never retried whatever the budget.

The hints themselves come from a real saturated
:class:`~repro.serve.admission.ResourcePool` — queue-full and
queue-timeout rejections carry one, exceeds-capacity and shutting-down
do not — and the retry loop is tested by stubbing the client's
``_request_once`` so no socket is involved.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import AdmissionError, InvalidParameterError
from repro.serve.admission import ResourcePool
from repro.serve.client import ServeClient


def saturated_pool_rejection(**pool_kwargs):
    """Drive a real pool to saturation and return the AdmissionError."""

    async def scenario():
        pool = ResourcePool(space_words=100, comm_words=100, **pool_kwargs)
        held = await pool.lease(space_words=100, context="hog")
        try:
            await pool.lease(space_words=1, context="starved")
        except AdmissionError as exc:
            return exc
        finally:
            pool.release(held)
        raise AssertionError("saturated pool admitted a second lease")

    return asyncio.run(scenario())


class TestPoolHints:
    def test_queue_full_rejection_carries_retry_after(self):
        exc = saturated_pool_rejection(max_queue=0)
        assert exc.reason == "queue-full"
        assert exc.retry_after is not None
        assert exc.retry_after > 0

    def test_queue_timeout_rejection_carries_retry_after(self):
        exc = saturated_pool_rejection(max_queue=4, queue_timeout=0.01)
        assert exc.reason == "timed-out"
        assert exc.retry_after is not None

    def test_exceeds_capacity_is_unretryable(self):
        async def scenario():
            pool = ResourcePool(space_words=10, comm_words=10)
            with pytest.raises(AdmissionError) as info:
                await pool.lease(space_words=11)
            return info.value

        exc = asyncio.run(scenario())
        assert exc.reason == "exceeds-capacity"
        assert exc.retry_after is None


def make_client(max_retries, responses):
    """A ServeClient with no socket: ``_request_once`` pops scripted
    responses (an exception instance raises, anything else returns)."""
    client = ServeClient.__new__(ServeClient)
    client.max_retries = max_retries
    client.sleeps = []
    calls = {"n": 0}

    def scripted(kind, **fields):
        calls["n"] += 1
        outcome = responses[min(calls["n"] - 1, len(responses) - 1)]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request_once = scripted
    client.calls = calls
    return client


def admission(retry_after):
    return AdmissionError(
        "queue-full",
        requested_space_words=1,
        retry_after=retry_after,
    )


class TestClientRetryLoop:
    def test_negative_max_retries_rejected(self):
        # Validation fires before any socket is opened.
        with pytest.raises(InvalidParameterError, match="max_retries"):
            ServeClient(host="127.0.0.1", port=1, max_retries=-1)

    def test_off_by_default_first_rejection_raises(self, monkeypatch):
        client = make_client(0, [admission(0.01), {"ok": True}])
        monkeypatch.setattr(
            "repro.serve.client.time.sleep",
            lambda s: pytest.fail("default client must not sleep"),
        )
        with pytest.raises(AdmissionError):
            client.request("solve")
        assert client.calls["n"] == 1

    def test_retries_until_admitted(self, monkeypatch):
        client = make_client(
            3, [admission(0.2), admission(0.3), {"cover_size": 4}]
        )
        slept = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: slept.append(s)
        )
        assert client.request("solve") == {"cover_size": 4}
        assert client.calls["n"] == 3
        assert slept == [0.2, 0.3]

    def test_budget_exhausted_reraises(self, monkeypatch):
        client = make_client(2, [admission(0.1)] * 5)
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: None
        )
        with pytest.raises(AdmissionError):
            client.request("solve")
        assert client.calls["n"] == 3  # initial try + 2 retries

    def test_unretryable_hint_reraises_immediately(self, monkeypatch):
        client = make_client(5, [admission(None), {"ok": True}])
        monkeypatch.setattr(
            "repro.serve.client.time.sleep",
            lambda s: pytest.fail("must not sleep on retry_after=None"),
        )
        with pytest.raises(AdmissionError) as info:
            client.request("solve")
        assert info.value.retry_after is None
        assert client.calls["n"] == 1

    def test_sleep_capped_at_max(self, monkeypatch):
        client = make_client(1, [admission(600.0), {"ok": True}])
        slept = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: slept.append(s)
        )
        client.request("solve")
        assert slept == [ServeClient.MAX_RETRY_SLEEP]

    def test_non_admission_errors_pass_through(self, monkeypatch):
        client = make_client(5, [ValueError("boom")])
        with pytest.raises(ValueError):
            client.request("solve")
        assert client.calls["n"] == 1
