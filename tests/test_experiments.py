"""Smoke + assertion tests for every experiment in quick mode.

Each experiment runs once (module-scoped cache) and its findings are
checked against the theory-predicted direction — these are the
"shape, not absolute numbers" checks EXPERIMENTS.md reports.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import all_experiment_ids, get_experiment


@pytest.fixture(scope="module")
def reports():
    cache = {}

    def get(eid):
        if eid not in cache:
            cache[eid] = get_experiment(eid).run(quick=True, seed=0)
        return cache[eid]

    return get


class TestRegistry:
    def test_twenty_experiments(self):
        assert len(all_experiment_ids()) == 20

    def test_table1_rows_present(self):
        ids = all_experiment_ids()
        for row in range(1, 5):
            assert f"table1-row{row}" in ids

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("nope")

    def test_modules_expose_contract(self):
        for eid in all_experiment_ids():
            module = get_experiment(eid)
            assert module.EXPERIMENT_ID == eid
            assert module.TITLE
            assert module.PAPER_CLAIM
            assert callable(module.run)


class TestReportsRender:
    @pytest.mark.parametrize("eid", all_experiment_ids())
    def test_renders(self, reports, eid):
        report = reports(eid)
        text = report.render()
        assert eid in text
        assert report.rows
        assert report.findings

    def test_markdown_mode(self, reports):
        text = reports("lb-family").render(markdown=True)
        assert "|" in text


class TestRow1Findings:
    def test_projection_space_shrinks_inverse_alpha(self, reports):
        exponent = reports("table1-row1").findings[
            "projection_vs_alpha_exponent"
        ]
        assert -1.5 <= exponent <= -0.6

    def test_cover_within_alpha_opt(self, reports):
        assert (
            reports("table1-row1").findings["worst_cover_over_alpha_opt"]
            <= 2.0
        )

    def test_cover_grows_with_alpha(self, reports):
        assert reports("table1-row1").findings["cover_vs_alpha_exponent"] > 0.2


class TestSetArrivalBaselineFindings:
    def test_space_flat_in_m(self, reports):
        findings = reports("set-arrival-baseline").findings
        assert abs(findings["space_vs_m_exponent"]) < 0.3

    def test_ratio_within_guarantee(self, reports):
        assert (
            reports("set-arrival-baseline").findings["worst_ratio_over_2sqrt_n"]
            <= 1.0
        )

    def test_model_enforced(self, reports):
        assert (
            reports("set-arrival-baseline").findings[
                "interleaved_stream_rejected"
            ]
            == 1.0
        )


class TestRow2Findings:
    def test_space_linear_in_m(self, reports):
        exponent = reports("table1-row2").findings["space_vs_m_exponent"]
        assert 0.7 <= exponent <= 1.2

    def test_ratio_bounded_by_polylog_sqrt_n(self, reports):
        assert reports("table1-row2").findings["max_normalized_ratio"] < 8.0


class TestRow3Findings:
    def test_level_map_shrinks_quadratically(self, reports):
        exponent = reports("table1-row3").findings[
            "level_map_vs_alpha_exponent"
        ]
        assert -2.6 <= exponent <= -1.4

    def test_cover_grows_with_alpha(self, reports):
        assert reports("table1-row3").findings["cover_vs_alpha_exponent"] > 0.3


class TestRow4Findings:
    def test_alg1_space_below_kk(self, reports):
        findings = reports("table1-row4").findings
        assert (
            findings["alg1_space_vs_n_exponent"]
            < findings["kk_space_vs_n_exponent"]
        )

    def test_space_advantage_material(self, reports):
        assert reports("table1-row4").findings["space_advantage_at_max_n"] > 3.0

    def test_quality_within_polylog_sqrt_n(self, reports):
        assert reports("table1-row4").findings["max_normalized_ratio"] < 8.0


class TestSeparationFindings:
    def test_advantage_grows_with_n(self, reports):
        assert reports("separation").findings["space_advantage_growth"] > 1.3

    def test_advantage_material(self, reports):
        assert reports("separation").findings["space_advantage_at_max_n"] > 4.0


class TestLowerBoundFindings:
    def test_family_concentration(self, reports):
        findings = reports("lb-family").findings
        assert findings["max_intersection_over_log_n"] <= 4.0
        assert 0.5 <= findings["mean_intersection_overall"] <= 2.0

    def test_reduction_decides_correctly(self, reports):
        findings = reports("lb-reduction").findings
        assert findings["decision_accuracy"] >= 0.75
        assert findings["cover_gap_disjoint_over_intersecting"] > 1.2

    def test_protocol_guarantees(self, reports):
        findings = reports("simple-protocol").findings
        assert findings["worst_cover_over_bound"] <= 1.0
        assert findings["worst_message_over_n"] <= 8.0


class TestPhaseTransitionFindings:
    def test_space_ordering(self, reports):
        findings = reports("phase-transition").findings
        assert findings["store_over_kk_space"] > 1.0
        assert findings["kk_over_alg1_space"] > 1.0
        assert findings["kk_over_alg2_space"] > 1.0
        assert findings["alg2_small_over_big_alpha_space"] > 1.0


class TestPracticeFindings:
    def test_blowup_modest(self, reports):
        assert reports("practice").findings["max_cover_blowup"] < 10.0

    def test_lazy_greedy_saves_evaluations(self, reports):
        assert reports("practice").findings["min_lazy_speedup"] > 2.0


class TestInvariantFindings:
    def test_specials_decay(self, reports):
        rate = reports("invariants").findings["mean_special_decay_rate"]
        assert rate < 1.0

    def test_additions_bounded(self, reports):
        assert (
            reports("invariants").findings["max_additions_over_sqrtn_log2m"]
            < 5.0
        )

    def test_marked_uncovered_rare(self, reports):
        assert (
            reports("invariants").findings["max_marked_uncovered_fraction"]
            < 0.05
        )


class TestLengthObliviousFindings:
    def test_guess_within_factor_two(self, reports):
        assert reports("length-oblivious").findings["worst_guess_factor"] <= 2.1

    def test_cover_tracks_aware_run(self, reports):
        assert reports("length-oblivious").findings["mean_cover_ratio"] <= 2.0


class TestConcentrationFindings:
    def test_no_violations(self, reports):
        assert (
            reports("concentration").findings["worst_violation_rate"] <= 0.01
        )


class TestMultipassFindings:
    def test_passes_improve_quality(self, reports):
        assert reports("multipass").findings["improvement_factor"] > 1.05

    def test_many_passes_near_greedy(self, reports):
        assert reports("multipass").findings["max_passes_over_greedy"] < 1.5


class TestOrderRobustnessFindings:
    def test_full_shuffle_tracks_uniform(self, reports):
        ratio = reports("order-robustness").findings[
            "full_shuffle_over_uniform_cover"
        ]
        assert 0.7 <= ratio <= 1.3

    def test_adversarial_no_better_than_uniform(self, reports):
        ratio = reports("order-robustness").findings[
            "adversarial_over_uniform_cover"
        ]
        assert ratio >= 0.9


class TestAsyncCompletionFindings:
    def test_chain_idles_grow_stars_stay_flat(self, reports):
        findings = reports("async-completion").findings
        # One wait per hand-off: W-1 idle ticks, so the quick grid's
        # 2 -> 8 sweep grows 7x; the star topologies idle a constant.
        assert findings["chain_idle_growth_Wlo_to_Whi"] >= 4.0
        assert findings["star_idle_max_mean"] <= 3.0

    def test_every_replication_checked_for_parity(self, reports):
        assert reports("async-completion").findings["parity_runs_checked"] > 0


class TestMergeLatencyFindings:
    def test_tree_wins_latency_at_width(self, reports):
        findings = reports("merge-latency").findings
        # W=8 quick grid: chain takes 14 logical steps, the tree 6.
        assert findings["tree_speedup_at_Whi"] >= 2.0

    def test_adaptive_tau_recovers_cover(self, reports):
        findings = reports("merge-latency").findings
        # Blind fixed-tau leaves duplicate coverage; adaptive tau must
        # hold the blowup well under the fixed tree's.
        assert findings["tree_fixed_cover_blowup_at_Whi"] > (
            findings["tree_adaptive_cover_blowup_at_Whi"]
        )
        assert findings["tree_adaptive_cover_blowup_at_Whi"] <= 3.0

    def test_every_cell_checked_for_parity(self, reports):
        assert reports("merge-latency").findings["parity_runs_checked"] > 0


class TestWordsVsBytesFindings:
    def test_overhead_bounded_below_by_one(self, reports):
        findings = reports("words-vs-bytes").findings
        # >= 1 structurally: one int64 per metered word, plus framing.
        assert findings["min_overhead_ratio"] >= 1.0
        assert findings["max_overhead_ratio"] <= 3.0

    def test_parity_checked_across_transports(self, reports):
        assert reports("words-vs-bytes").findings["parity_cells_checked"] > 0


class TestDeterminism:
    def test_same_seed_same_findings(self):
        a = get_experiment("lb-family").run(quick=True, seed=3)
        b = get_experiment("lb-family").run(quick=True, seed=3)
        assert a.findings == b.findings
