"""Tests for the bipartite view and Dominating-Set encoding."""

from __future__ import annotations

import pytest

from repro.errors import InvalidInstanceError
from repro.streaming.bipartite import (
    degree_histogram,
    dominating_set_instance,
    element_adjacency,
    from_networkx,
    set_size_histogram,
    to_biadjacency,
    to_networkx,
)
from repro.streaming.instance import SetCoverInstance


class TestAdjacency:
    def test_biadjacency(self, tiny_instance):
        adj = to_biadjacency(tiny_instance)
        assert adj[0] == {0, 1}
        assert adj[2] == {2, 3}

    def test_element_adjacency(self, tiny_instance):
        adj = element_adjacency(tiny_instance)
        assert adj[1] == {0, 1}
        assert adj[3] == {2}

    def test_adjacency_consistent(self, chain_instance):
        left = to_biadjacency(chain_instance)
        right = element_adjacency(chain_instance)
        for s, members in enumerate(left):
            for u in members:
                assert s in right[u]


class TestNetworkxRoundtrip:
    def test_roundtrip(self, tiny_instance):
        graph = to_networkx(tiny_instance)
        rebuilt = from_networkx(graph)
        assert rebuilt == tiny_instance

    def test_graph_shape(self, tiny_instance):
        graph = to_networkx(tiny_instance)
        assert graph.number_of_nodes() == tiny_instance.n + tiny_instance.m
        assert graph.number_of_edges() == tiny_instance.num_edges

    def test_bipartite_attribute(self, tiny_instance):
        graph = to_networkx(tiny_instance)
        assert graph.nodes[("S", 0)]["bipartite"] == 0
        assert graph.nodes[("U", 0)]["bipartite"] == 1


class TestDominatingSet:
    def test_closed_neighbourhoods(self):
        # Path 0-1-2.
        instance = dominating_set_instance([[1], [0, 2], [1]])
        assert instance.set_members(0) == frozenset({0, 1})
        assert instance.set_members(1) == frozenset({0, 1, 2})
        assert instance.set_members(2) == frozenset({1, 2})

    def test_m_equals_n(self):
        instance = dominating_set_instance([[1], [0], []])
        assert instance.m == instance.n == 3

    def test_symmetrised(self):
        # Edge listed once only.
        instance = dominating_set_instance([[1], []])
        assert instance.contains(1, 0)

    def test_isolated_vertex_covers_itself(self):
        instance = dominating_set_instance([[], []])
        assert instance.set_members(0) == frozenset({0})

    def test_dominating_set_is_cover(self):
        # Star centred at 0: {0} dominates.
        instance = dominating_set_instance([[1, 2, 3], [], [], []])
        assert instance.is_cover([0])

    def test_rejects_bad_neighbour(self):
        with pytest.raises(InvalidInstanceError):
            dominating_set_instance([[5]])

    def test_rejects_empty_graph(self):
        with pytest.raises(InvalidInstanceError):
            dominating_set_instance([])

    def test_self_loop_ignored(self):
        instance = dominating_set_instance([[0, 1], []])
        assert instance.set_members(0) == frozenset({0, 1})


class TestHistograms:
    def test_degree_histogram(self, tiny_instance):
        # degrees: [1, 2, 2, 1]
        assert degree_histogram(tiny_instance) == {1: 2, 2: 2}

    def test_set_size_histogram(self, tiny_instance):
        assert set_size_histogram(tiny_instance) == {2: 3}

    def test_histogram_totals(self, chain_instance):
        assert (
            sum(degree_histogram(chain_instance).values()) == chain_instance.n
        )
        assert (
            sum(set_size_histogram(chain_instance).values())
            == chain_instance.m
        )
