"""The transport layer: wire format, the three transports, and parity.

Five concerns:

1. **Wire format** — int64 word packing, framing, codec round-trips,
   and the typed errors malformed frames raise.
2. **Transports** — inproc's zero-copy identity, loopback's scheduler
   clock / fault injection / retransmit budget, socket's real TCP
   round-trip (skipped gracefully where the sandbox forbids binding).
3. **Parity** — covers, certificates, and comm reports are
   byte-identical across all three transports, sync and async; the
   TransportReport is excluded from result equality.
4. **The satellite property** — for any fault-free run, per-link frame
   counts equal the comm report's per-link message counts, and measured
   bytes ≥ metered words × 8 (one int64 per word).
5. **Budget ordering** — the comm meter charges *before* the wire
   moves, so a budget-tripped merge metered the offending message but
   never transmitted it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    CODEC_REGISTRY,
    TRANSPORT_REGISTRY,
    CommBudget,
    CommMeter,
    DistributedResult,
    InprocTransport,
    LoopbackTransport,
    MsgpackCodec,
    PickleCodec,
    SocketTransport,
    TransportReport,
    decode_frame,
    encode_frame,
    make_codec,
    make_transport,
    msgpack_available,
    pack_words,
    registered_transports,
    run_distributed,
    run_distributed_async,
    unpack_words,
)
from repro.distributed.chain import state_words
from repro.distributed.coordinator import _send
from repro.distributed.executor import resolve_transport, validate_transport
from repro.distributed.transport import (
    candidate_upload_wire,
    cover_upload_wire,
    handoff_wire,
    handoff_words,
    read_candidate_upload,
    read_cover_upload,
)
from repro.errors import (
    CommBudgetError,
    InvalidParameterError,
    TransportError,
    TransportPartitionError,
)
from repro.generators.planted import planted_partition_instance
from repro.obs.tracer import NULL_TRACER

COORDINATORS = ("union", "greedy", "chain")


@pytest.fixture(scope="module")
def instance():
    return planted_partition_instance(60, 40, opt_size=6, seed=3).instance


def socket_or_skip(**kwargs):
    """A SocketTransport, or a graceful skip where binding is forbidden."""
    try:
        return SocketTransport(**kwargs)
    except TransportError as exc:
        pytest.skip(f"socket transport unavailable: {exc}")


# -- wire format ------------------------------------------------------------


class TestWordPacking:
    def test_round_trip(self):
        values = [0, 1, 7, 2**40, -3]
        assert unpack_words(pack_words(values)) == values

    def test_eight_bytes_per_word(self):
        assert len(pack_words(range(5))) == 40
        assert pack_words([]) == b""

    def test_ragged_field_rejected(self):
        with pytest.raises(TransportError, match="not a multiple"):
            unpack_words(b"\x00" * 9)


class TestCodecs:
    def test_pickle_round_trip(self):
        codec = PickleCodec()
        payload = {"kind": "cover", "index": 2, "cover": pack_words([1, 2])}
        assert codec.decode(codec.encode(payload)) == payload

    def test_default_codec_prefers_msgpack_else_pickle(self):
        codec = make_codec(None)
        expected = "msgpack" if msgpack_available() else "pickle"
        assert codec.name == expected

    def test_msgpack_gated_on_availability(self):
        if msgpack_available():
            codec = MsgpackCodec()
            payload = {"kind": "x", "n": 3, "data": b"\x00\x01"}
            assert codec.decode(codec.encode(payload)) == payload
        else:
            with pytest.raises(TransportError, match="msgpack"):
                MsgpackCodec()

    def test_unknown_codec_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_codec("cbor")

    def test_registry_names(self):
        assert set(CODEC_REGISTRY) == {"pickle", "msgpack"}


class TestFraming:
    def test_round_trip(self):
        payload = {"kind": "handoff", "hop": 0, "uncovered": pack_words([4])}
        frame = encode_frame(PickleCodec(), payload)
        assert decode_frame(frame) == payload

    def test_bad_magic_rejected(self):
        frame = encode_frame(PickleCodec(), {"k": 1})
        with pytest.raises(TransportError, match="magic"):
            decode_frame(b"XXXX" + frame[4:])

    def test_truncated_header_rejected(self):
        with pytest.raises(TransportError, match="shorter"):
            decode_frame(b"RPWT")

    def test_length_mismatch_rejected(self):
        frame = encode_frame(PickleCodec(), {"k": 1})
        with pytest.raises(TransportError, match="announces"):
            decode_frame(frame[:-1])

    def test_unknown_codec_tag_rejected(self):
        frame = bytearray(encode_frame(PickleCodec(), {"k": 1}))
        frame[4] = 99
        with pytest.raises(TransportError, match="codec tag"):
            decode_frame(bytes(frame))


class TestWireHelpers:
    def test_cover_upload_round_trip(self):
        payload = cover_upload_wire(3, {9, 2, 5}, {0: 2, 4: 9, 1: 5})
        index, cover, pairs = read_cover_upload(payload)
        assert index == 3
        assert cover == [2, 5, 9]
        assert pairs == [(0, 2), (1, 5), (4, 9)]

    def test_candidate_upload_round_trip(self):
        payload = candidate_upload_wire(
            1, [7, 4], {4: frozenset({0, 2}), 7: frozenset({1})}
        )
        index, uploads = read_candidate_upload(payload)
        assert index == 1
        assert uploads == [(4, [0, 2]), (7, [1])]

    def test_handoff_words_mirrors_state_words(self):
        uncovered = {3, 1, 4}
        witnesses = {0: 5, 2: 7}
        chosen = [7, 5, 9]
        payload = handoff_wire(0, uncovered, witnesses.items(), chosen)
        assert handoff_words(payload) == state_words(
            uncovered, witnesses, chosen
        )


# -- transports -------------------------------------------------------------


class TestRegistry:
    def test_three_transports(self):
        assert registered_transports() == ["inproc", "loopback", "socket"]
        assert set(TRANSPORT_REGISTRY) == set(registered_transports())

    def test_unknown_transport_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_transport("carrier-pigeon")

    def test_validate_rejects_wrong_types_and_unknown_names(self):
        with pytest.raises(InvalidParameterError):
            validate_transport(42)
        with pytest.raises(InvalidParameterError):
            validate_transport("bogus")
        validate_transport(None)
        validate_transport("loopback")

    def test_resolve_default_is_inproc(self):
        transport = resolve_transport(None)
        assert isinstance(transport, InprocTransport)
        built = InprocTransport()
        assert resolve_transport(built) is built


class TestInprocTransport:
    def test_zero_copy_identity(self):
        with InprocTransport() as transport:
            payload = {"kind": "cover", "index": 0, "cover": pack_words([1])}
            assert transport.send("a", "b", "cover", payload) is payload

    def test_bytes_and_frames_recorded(self):
        transport = InprocTransport()
        payload = {"kind": "x", "data": pack_words(range(10))}
        frame_len = len(encode_frame(transport.codec, payload))
        transport.send("a", "b", "x", payload)
        transport.send("a", "b", "x", payload)
        report = transport.report(metered_words=10)
        assert report.total_frames == 2
        assert report.total_bytes == 2 * frame_len
        assert report.per_link_bytes == {"a->b": 2 * frame_len}
        assert report.per_link_frames == {"a->b": 2}
        assert report.retransmits == 0
        assert report.overhead_ratio == 2 * frame_len / 80


class TestLoopbackTransport:
    def test_delivers_equal_payload_not_same_object(self):
        with LoopbackTransport() as transport:
            payload = {"kind": "x", "data": pack_words([5, 6])}
            delivered = transport.send("a", "b", "x", payload)
            assert delivered == payload
            assert delivered is not payload

    def test_clock_advances_with_link_delays(self):
        transport = LoopbackTransport(link_delays={"a->b": 4}, default_delay=1)
        transport.send("a", "b", "x", {"k": 1})
        after_slow = transport.clock
        transport.send("b", "c", "x", {"k": 2})
        assert after_slow >= 5  # 4 delay ticks + 1 delivery step
        assert transport.clock > after_slow
        assert transport.report().diagnostics["logical_clock"] == float(
            transport.clock
        )

    def test_partitioned_link_exhausts_retransmits(self):
        transport = LoopbackTransport(partitioned=["a->b"], max_retries=2)
        with pytest.raises(TransportPartitionError) as excinfo:
            transport.send("a", "b", "x", {"k": 1})
        assert excinfo.value.link == "a->b"
        assert excinfo.value.attempts == 3
        report = transport.report()
        # Every transmission hit the wire and was paid for.
        assert report.per_link_frames["a->b"] == 3
        assert report.per_link_retransmits["a->b"] == 2
        # An unpartitioned link still works afterwards.
        assert transport.send("a", "c", "x", {"k": 2}) == {"k": 2}

    def test_seeded_drops_retransmit_then_succeed(self):
        # drop_rate=0.9, seed chosen so some sends need retransmits; a
        # high retry budget means delivery still succeeds, and the same
        # seed reproduces the same retransmit count.
        def run(seed):
            transport = LoopbackTransport(
                seed=seed, drop_rate=0.9, max_retries=50
            )
            for i in range(5):
                assert transport.send("a", "b", "x", {"i": i}) == {"i": i}
            return transport.report()

        first, second = run(7), run(7)
        assert first.retransmits > 0
        assert first.retransmits == second.retransmits
        assert first.total_bytes == second.total_bytes

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            LoopbackTransport(drop_rate=1.0)
        with pytest.raises(InvalidParameterError):
            LoopbackTransport(jitter=-1)
        with pytest.raises(InvalidParameterError):
            LoopbackTransport(max_retries=-1)


class TestSocketTransport:
    def test_round_trip_over_tcp(self):
        transport = socket_or_skip()
        try:
            payload = {"kind": "cover", "cover": pack_words([3, 1, 4])}
            delivered = transport.send("a", "b", "cover", payload)
            assert delivered == payload
            assert delivered is not payload
            report = transport.report()
            assert report.per_link_frames == {"a->b": 1}
            assert report.diagnostics["port"] == float(transport.port)
        finally:
            transport.close()

    def test_multiple_links_and_close_idempotent(self):
        transport = socket_or_skip()
        try:
            transport.send("a", "b", "x", {"k": 1})
            transport.send("b", "c", "x", {"k": 2})
            assert set(transport.report().per_link_frames) == {"a->b", "b->c"}
        finally:
            transport.close()
            transport.close()
        with pytest.raises(TransportError, match="closed"):
            transport.send("a", "b", "x", {"k": 3})


# -- parity and the satellite property --------------------------------------


class TestTransportParity:
    @pytest.mark.parametrize("coordinator", COORDINATORS)
    def test_three_transports_identical_results(self, instance, coordinator):
        results = {}
        for name in registered_transports():
            if name == "socket":
                try:
                    transport = SocketTransport()
                except TransportError:
                    continue  # sandbox forbids binding; inproc/loopback remain
            else:
                transport = make_transport(name)
            results[name] = run_distributed(
                instance,
                4,
                coordinator=coordinator,
                transport=transport,
            )
        assert len(results) >= 2
        baseline = results["inproc"]
        baseline.verify(instance)
        for name, result in results.items():
            # Dataclass equality covers cover/certificate/comm/shards;
            # TransportReport is excluded by compare=False.
            assert result == baseline, name
            assert result.comm == baseline.comm, name
            assert result.transport.transport == name
            # Same codec + framing everywhere: measured bytes agree too.
            assert result.transport.total_bytes == (
                baseline.transport.total_bytes
            ), name

    def test_async_matches_sync_per_transport(self, instance):
        for name in ("inproc", "loopback"):
            sync = run_distributed(
                instance, 3, coordinator="chain", transport=name
            )
            asynchronous = run_distributed_async(
                instance, 3, coordinator="chain", transport=name,
                schedule_seed=5,
            )
            # Diagnostics gain scheduler fields in async mode; the
            # semantic payload and the wire accounting must not move.
            assert asynchronous.cover == sync.cover
            assert asynchronous.certificate == sync.certificate
            assert asynchronous.comm == sync.comm
            assert (
                asynchronous.transport.total_bytes
                == sync.transport.total_bytes
            )
            assert (
                asynchronous.transport.per_link_frames
                == sync.transport.per_link_frames
            )

    def test_transport_report_excluded_from_equality(self, instance):
        inproc = run_distributed(instance, 3, transport="inproc")
        loopback = run_distributed(instance, 3, transport="loopback")
        assert inproc == loopback
        assert inproc.transport.transport != loopback.transport.transport

    def test_default_run_measures_inproc(self, instance):
        result = run_distributed(instance, 3)
        assert isinstance(result.transport, TransportReport)
        assert result.transport.transport == "inproc"
        assert result.transport.total_bytes > 0


class TestFramesMatchMessagesProperty:
    """Satellite: frames == comm messages, bytes ≥ words × 8, per link."""

    @given(
        workers=st.integers(min_value=1, max_value=5),
        coordinator=st.sampled_from(COORDINATORS),
        transport_name=st.sampled_from(["inproc", "loopback"]),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_fault_free_runs(self, workers, coordinator, transport_name, seed):
        instance = planted_partition_instance(
            40, 24, opt_size=4, seed=seed % 7
        ).instance
        result = run_distributed(
            instance,
            workers,
            coordinator=coordinator,
            seed=seed,
            transport=transport_name,
        )
        comm, transport = result.comm, result.transport
        assert transport.per_link_frames == comm.per_link_messages
        assert transport.total_frames == comm.num_messages
        assert transport.metered_words == comm.total_words
        assert transport.total_bytes >= 8 * comm.total_words
        if comm.total_words:
            assert transport.overhead_ratio >= 1.0
        # Per-link refinement of the byte bound: every link's frames
        # carry at least that link's metered words as int64s.
        for link, words in comm.per_link_words.items():
            assert transport.per_link_bytes[link] >= 8 * words


class TestBudgetTripOrdering:
    def test_tripping_message_metered_but_never_transmitted(self):
        meter = CommMeter(budget=CommBudget(10))
        transport = InprocTransport()
        _send(
            meter, NULL_TRACER, "a", "b", 6,
            transport=transport, kind="x", payload={"k": 1},
        )
        with pytest.raises(CommBudgetError):
            _send(
                meter, NULL_TRACER, "b", "c", 7,
                transport=transport, kind="x", payload={"k": 2},
            )
        # Apply-then-raise on the meter (see test_meter_contract.py)...
        assert meter.total_words == 13
        # ...but charge-before-wire on the transport: the over-budget
        # message never crossed.
        report = transport.report()
        assert report.total_frames == 1
        assert "b->c" not in report.per_link_frames

    def test_budget_trip_through_executor(self, instance):
        transport = InprocTransport()
        with pytest.raises(CommBudgetError):
            run_distributed(
                instance,
                4,
                coordinator="union",
                comm_budget=CommBudget(1),
                transport=transport,
            )
        # W=4 uploads: the first was metered over budget, nothing sent.
        assert transport.report().total_frames == 0
