"""Unit tests for the communication meter (CommMeter/CommBudget/CommReport)."""

from __future__ import annotations

import pytest

from repro.distributed.comm import (
    CommBudget,
    CommMeter,
    words_for_candidate_message,
    words_for_cover_message,
)
from repro.errors import CommBudgetError, ReproError


class TestCommMeter:
    def test_starts_empty(self):
        meter = CommMeter()
        assert meter.total_words == 0
        assert meter.max_message_words == 0
        assert meter.num_messages == 0

    def test_records_totals_and_max(self):
        meter = CommMeter()
        meter.record("shard[0]", "coordinator", 10)
        meter.record("shard[1]", "coordinator", 25)
        meter.record("shard[0]", "coordinator", 5)
        assert meter.total_words == 40
        assert meter.max_message_words == 25
        assert meter.num_messages == 3

    def test_per_link_accounting(self):
        meter = CommMeter()
        meter.record("a", "b", 7)
        meter.record("a", "b", 3)
        meter.record("b", "c", 11)
        assert meter.link_words("a", "b") == 10
        assert meter.link_words("b", "c") == 11
        assert meter.link_words("c", "a") == 0

    def test_record_returns_link_label(self):
        meter = CommMeter()
        assert meter.record("shard[0]", "shard[1]", 4) == "shard[0]->shard[1]"

    def test_zero_word_message_counts(self):
        meter = CommMeter()
        meter.record("a", "b", 0)
        assert meter.total_words == 0
        assert meter.num_messages == 1

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            CommMeter().record("a", "b", -1)

    def test_reset(self):
        meter = CommMeter(log_messages=True)
        meter.record("a", "b", 9)
        meter.reset()
        assert meter.total_words == 0
        assert meter.num_messages == 0
        assert meter.report().messages == ()


class TestCommBudget:
    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            CommBudget(0)
        with pytest.raises(ValueError):
            CommBudget(-5)

    def test_under_budget_passes(self):
        meter = CommMeter(budget=CommBudget(100))
        meter.record("a", "b", 60)
        meter.record("a", "b", 40)  # exactly at budget is fine
        assert meter.total_words == 100

    def test_over_budget_raises_typed(self):
        meter = CommMeter(budget=CommBudget(100, context="merging"))
        meter.record("a", "b", 90)
        with pytest.raises(CommBudgetError) as exc_info:
            meter.record("a", "b", 20)
        error = exc_info.value
        assert isinstance(error, ReproError)
        assert error.used == 110
        assert error.budget == 100
        assert error.link == "a->b"
        assert error.message_words == 20
        assert "merging" in str(error)

    def test_offending_message_recorded_before_raise(self):
        meter = CommMeter(budget=CommBudget(10))
        with pytest.raises(CommBudgetError):
            meter.record("a", "b", 25)
        report = meter.report()
        assert report.total_words == 25
        assert report.num_messages == 1
        assert report.max_message_words == 25


class TestCommReport:
    def test_snapshot_is_decoupled(self):
        meter = CommMeter()
        meter.record("a", "b", 5)
        report = meter.report()
        meter.record("a", "b", 5)
        assert report.total_words == 5
        assert meter.total_words == 10

    def test_busiest_link(self):
        meter = CommMeter()
        meter.record("a", "b", 5)
        meter.record("b", "c", 9)
        assert meter.report().busiest_link() == "b->c"

    def test_busiest_link_tie_breaks_to_smallest_label(self):
        # Two equal-weight links: the lexicographically smallest label
        # wins, matching SpaceReport.dominant_component's tie-break.
        meter = CommMeter()
        meter.record("b", "c", 5)
        meter.record("a", "b", 5)
        assert meter.report().busiest_link() == "a->b"

    def test_busiest_link_tie_independent_of_charge_order(self):
        forward = CommMeter()
        forward.record("a", "b", 5)
        forward.record("b", "c", 5)
        backward = CommMeter()
        backward.record("b", "c", 5)
        backward.record("a", "b", 5)
        assert (
            forward.report().busiest_link()
            == backward.report().busiest_link()
            == "a->b"
        )

    def test_busiest_link_none_when_idle(self):
        assert CommMeter().report().busiest_link() is None

    def test_message_log_only_when_requested(self):
        plain = CommMeter()
        plain.record("a", "b", 3)
        assert plain.report().messages == ()
        logged = CommMeter(log_messages=True)
        logged.record("a", "b", 3)
        logged.record("b", "c", 4)
        assert logged.report().messages == (("a", "b", 3), ("b", "c", 4))


class TestWordFormulas:
    def test_cover_message(self):
        assert words_for_cover_message(3, 10) == 3 + 2 * 10
        assert words_for_cover_message(0, 0) == 0

    def test_cover_message_rejects_negative(self):
        with pytest.raises(ValueError):
            words_for_cover_message(-1, 0)

    def test_candidate_message(self):
        assert words_for_candidate_message([4, 0, 2]) == (1 + 4) + (1 + 0) + (1 + 2)
        assert words_for_candidate_message([]) == 0
