"""Tests for t-party Set-Disjointness promise instances."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.lowerbound.disjointness import (
    disjoint_instance,
    intersecting_instance,
    random_promise_instance,
)


class TestDisjointInstance:
    def test_pairwise_disjoint(self):
        instance = disjoint_instance(40, 4, 5, seed=1)
        instance.check_promise()
        assert not instance.is_intersecting

    def test_set_sizes(self):
        instance = disjoint_instance(40, 4, 5, seed=2)
        assert all(len(s) == 5 for s in instance.sets)

    def test_party_count(self):
        assert disjoint_instance(40, 4, 5, seed=3).t == 4

    def test_rejects_too_small_ground_set(self):
        with pytest.raises(ConfigurationError):
            disjoint_instance(10, 4, 5)

    def test_rejects_single_party(self):
        with pytest.raises(ConfigurationError):
            disjoint_instance(40, 1, 5)

    def test_deterministic(self):
        assert (
            disjoint_instance(40, 4, 5, seed=4).sets
            == disjoint_instance(40, 4, 5, seed=4).sets
        )


class TestIntersectingInstance:
    def test_unique_intersection(self):
        instance = intersecting_instance(40, 4, 5, seed=1)
        instance.check_promise()
        assert instance.is_intersecting
        shared = instance.intersecting_element
        for s in instance.sets:
            assert shared in s

    def test_pairwise_intersections_singleton(self):
        instance = intersecting_instance(40, 4, 5, seed=2)
        for i in range(4):
            for j in range(i + 1, 4):
                assert instance.sets[i] & instance.sets[j] == {
                    instance.intersecting_element
                }

    def test_set_sizes(self):
        instance = intersecting_instance(40, 4, 5, seed=3)
        assert all(len(s) == 5 for s in instance.sets)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            intersecting_instance(40, 4, 0)


class TestPromiseChecking:
    def test_check_promise_catches_violation(self):
        instance = disjoint_instance(40, 4, 5, seed=5)
        # Tamper: claim intersecting with a bogus witness.
        from dataclasses import replace

        tampered = replace(instance, intersecting_element=0)
        with pytest.raises(ConfigurationError):
            tampered.check_promise()

    def test_check_promise_catches_extra_overlap(self):
        instance = intersecting_instance(40, 3, 5, seed=6)
        from dataclasses import replace

        # Add an extra shared element between parties 0 and 1.
        extra = next(iter(instance.sets[0] - {instance.intersecting_element}))
        sets = list(instance.sets)
        sets[1] = sets[1] | {extra}
        tampered = replace(instance, sets=tuple(sets))
        with pytest.raises(ConfigurationError):
            tampered.check_promise()


class TestRandomPromise:
    def test_always_satisfies_promise(self):
        for seed in range(8):
            instance = random_promise_instance(60, 4, 6, seed=seed)
            instance.check_promise()

    def test_both_cases_occur(self):
        cases = {
            random_promise_instance(60, 4, 6, seed=seed).is_intersecting
            for seed in range(20)
        }
        assert cases == {True, False}
