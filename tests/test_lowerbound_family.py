"""Tests for the Lemma-1 partitioned family."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.lowerbound.family import (
    build_family,
    theoretical_opt_disjoint,
)


class TestConstruction:
    def test_shape(self):
        family = build_family(100, 10, 4, seed=1)
        assert family.m == 10
        assert family.t == 4
        assert family.n == 100

    def test_part_size_sqrt_n_over_t(self):
        family = build_family(100, 10, 4, seed=1)
        assert family.part_size == round(math.sqrt(100 / 4))

    def test_set_size_sqrt_nt(self):
        family = build_family(100, 10, 4, seed=1)
        assert family.set_size == family.part_size * family.t
        # sqrt(n*t) = sqrt(400) = 20
        assert family.set_size == 20

    def test_parts_disjoint_within_set(self):
        family = build_family(100, 8, 4, seed=2)
        for i in range(family.m):
            seen = set()
            for part in family.parts[i]:
                assert seen.isdisjoint(part)
                seen |= part

    def test_full_set_is_union(self):
        family = build_family(100, 8, 4, seed=3)
        for i in range(family.m):
            union = set()
            for part in family.parts[i]:
                union |= part
            assert family.full_set(i) == union

    def test_elements_in_universe(self):
        family = build_family(64, 6, 4, seed=4)
        for i in range(family.m):
            assert all(0 <= u < 64 for u in family.full_set(i))

    def test_complement(self):
        family = build_family(64, 6, 4, seed=5)
        full = family.full_set(0)
        comp = family.complement(0)
        assert full.isdisjoint(comp)
        assert len(full) + len(comp) == 64

    def test_deterministic(self):
        assert (
            build_family(64, 6, 4, seed=6).parts
            == build_family(64, 6, 4, seed=6).parts
        )


class TestIntersectionProperty:
    def test_max_partial_intersection_small(self):
        family = build_family(225, 20, 4, seed=7)
        assert family.max_partial_intersection() <= 4 * math.log(225)

    def test_mean_partial_intersection_near_one(self):
        family = build_family(400, 25, 4, seed=8)
        assert 0.3 <= family.mean_partial_intersection() <= 2.5

    def test_retry_exhaustion_raises(self):
        # Force an impossible threshold.
        with pytest.raises(ConfigurationError):
            build_family(
                100, 20, 4, seed=9, intersection_slack=0.0001, max_retries=2
            )


class TestValidation:
    def test_rejects_t_above_n(self):
        with pytest.raises(ConfigurationError):
            build_family(4, 3, 8)

    def test_rejects_zero_m(self):
        with pytest.raises(ConfigurationError):
            build_family(100, 0, 4)

    @pytest.mark.parametrize("n,t", [(9, 9), (16, 4), (100, 10), (64, 2)])
    def test_set_size_never_exceeds_universe(self, n, t):
        family = build_family(n, 3, t, seed=1, intersection_slack=100.0)
        assert family.set_size <= n


class TestTheoreticalOpt:
    def test_opt_formula(self):
        family = build_family(225, 15, 4, seed=10)
        opt = theoretical_opt_disjoint(family)
        s = family.set_size
        assert opt >= (s - family.part_size) // max(
            1, family.max_partial_intersection()
        )
        assert opt >= 1

    def test_grows_with_t(self):
        small_t = build_family(400, 10, 2, seed=11)
        large_t = build_family(400, 10, 8, seed=11)
        # Larger t -> larger sets -> more sets needed to cover them.
        assert (
            theoretical_opt_disjoint(large_t)
            >= theoretical_opt_disjoint(small_t)
        )
