"""Tests for StreamingResult and certificate helpers."""

from __future__ import annotations

import pytest

from repro.core.solution import StreamingResult, certificate_from_cover
from repro.errors import InvalidCoverError
from repro.streaming.space import SpaceMeter


def make_result(cover, certificate, algorithm="test"):
    return StreamingResult(
        cover=frozenset(cover),
        certificate=dict(certificate),
        space=SpaceMeter().report(),
        algorithm=algorithm,
    )


class TestVerify:
    def test_valid_result(self, tiny_instance):
        result = make_result({0, 2}, {0: 0, 1: 0, 2: 2, 3: 2})
        result.verify(tiny_instance)
        assert result.is_valid(tiny_instance)

    def test_missing_witness(self, tiny_instance):
        result = make_result({0, 2}, {0: 0, 1: 0, 2: 2})
        with pytest.raises(InvalidCoverError):
            result.verify(tiny_instance)
        assert not result.is_valid(tiny_instance)

    def test_witness_not_in_cover(self, tiny_instance):
        result = make_result({0}, {0: 0, 1: 0, 2: 2, 3: 2})
        with pytest.raises(InvalidCoverError):
            result.verify(tiny_instance)

    def test_witness_not_containing(self, tiny_instance):
        result = make_result({0, 2}, {0: 2, 1: 0, 2: 2, 3: 2})
        with pytest.raises(InvalidCoverError):
            result.verify(tiny_instance)


class TestMetrics:
    def test_cover_size(self):
        assert make_result({1, 5, 9}, {}).cover_size == 3

    def test_ratio(self):
        result = make_result({1, 2, 3, 4}, {})
        assert result.approximation_ratio(2) == 2.0

    def test_ratio_rejects_bad_opt(self):
        with pytest.raises(ValueError):
            make_result({1}, {}).approximation_ratio(0)

    def test_covered_elements(self, tiny_instance):
        result = make_result({0}, {})
        assert result.covered_elements(tiny_instance) == {0, 1}


class TestCertificateFromCover:
    def test_builds_total_certificate(self, tiny_instance):
        certificate = certificate_from_cover(tiny_instance, frozenset({0, 2}))
        tiny_instance.verify_certificate(certificate)
        assert set(certificate) == set(range(4))

    def test_witnesses_in_cover(self, tiny_instance):
        certificate = certificate_from_cover(tiny_instance, frozenset({0, 2}))
        assert set(certificate.values()) <= {0, 2}

    def test_rejects_non_cover(self, tiny_instance):
        with pytest.raises(InvalidCoverError):
            certificate_from_cover(tiny_instance, frozenset({0, 1}))

    def test_overlap_prefers_lowest_id(self, tiny_instance):
        certificate = certificate_from_cover(
            tiny_instance, frozenset({0, 1, 2})
        )
        assert certificate[1] == 0  # sets 0 and 1 both contain element 1
