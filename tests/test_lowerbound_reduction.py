"""Tests for the Theorem-2 reduction."""

from __future__ import annotations

import pytest

from repro.core.kk import KKAlgorithm
from repro.errors import ConfigurationError
from repro.lowerbound.disjointness import (
    disjoint_instance,
    intersecting_instance,
)
from repro.lowerbound.family import build_family
from repro.lowerbound.reduction import (
    DisjointnessReduction,
    recommended_parties,
)


@pytest.fixture(scope="module")
def family():
    return build_family(100, 16, 4, seed=1)


@pytest.fixture(scope="module")
def reduction(family):
    return DisjointnessReduction(family)


class TestEncoding:
    def test_party_edges_use_own_parts(self, family, reduction):
        disjointness = disjoint_instance(16, 4, 3, seed=2)
        party_edges = reduction.party_edges(disjointness, seed=2)
        assert len(party_edges) == 4
        for p, edges in enumerate(party_edges):
            for set_id, element in edges:
                assert set_id in disjointness.sets[p]
                assert element in family.parts[set_id][p]

    def test_edge_count_matches_part_sizes(self, family, reduction):
        disjointness = disjoint_instance(16, 4, 3, seed=3)
        party_edges = reduction.party_edges(disjointness, seed=3)
        for p, edges in enumerate(party_edges):
            expected = len(disjointness.sets[p]) * family.part_size
            assert len(edges) == expected

    def test_intersecting_assembles_full_set(self, family, reduction):
        disjointness = intersecting_instance(16, 4, 3, seed=4)
        witness = disjointness.intersecting_element
        instance, _ = reduction.run_instance(disjointness, witness)
        # Set `witness` accumulated parts from every party.
        assert instance.set_size(witness) == family.set_size

    def test_disjoint_sets_stay_partial(self, family, reduction):
        disjointness = disjoint_instance(16, 4, 3, seed=5)
        instance, _ = reduction.run_instance(disjointness, 0)
        for b in range(16):
            assert instance.set_size(b) <= family.part_size

    def test_complement_set_is_last(self, family, reduction):
        disjointness = disjoint_instance(16, 4, 3, seed=6)
        instance, _ = reduction.run_instance(disjointness, 5)
        complement_id = instance.m - 1
        comp = instance.set_members(complement_id)
        assert family.complement(5) <= comp

    def test_run_instance_feasible(self, family, reduction):
        disjointness = disjoint_instance(16, 4, 3, seed=7)
        instance, patches = reduction.run_instance(disjointness, 3)
        instance.validate()
        assert patches >= 0

    def test_witness_run_has_cover_of_two(self, family, reduction):
        disjointness = intersecting_instance(16, 4, 3, seed=8)
        witness = disjointness.intersecting_element
        instance, _ = reduction.run_instance(disjointness, witness)
        assert instance.is_cover([witness, instance.m - 1])


class TestExecution:
    def test_execute_produces_outcome(self, reduction):
        disjointness = intersecting_instance(16, 4, 3, seed=9)
        outcome = reduction.execute(
            disjointness,
            algorithm_factory=lambda seed: KKAlgorithm(seed=seed),
            seed=9,
            run_indices=[disjointness.intersecting_element, 0, 1],
        )
        assert outcome.truth == "intersecting"
        assert len(outcome.runs) == 3
        assert outcome.message_words

    def test_witness_run_small_cover(self, reduction):
        disjointness = intersecting_instance(16, 4, 3, seed=10)
        witness = disjointness.intersecting_element
        outcome = reduction.execute(
            disjointness,
            algorithm_factory=lambda seed: KKAlgorithm(seed=seed),
            seed=10,
            run_indices=[witness],
        )
        witness_run = outcome.runs[0]
        assert witness_run.feasible
        # The witness run contains a 2-cover; the algorithm's answer is
        # an approximation but should be far below the universe size.
        assert witness_run.cover_size < reduction.family.n / 2

    def test_default_run_indices_include_witness(self, reduction):
        disjointness = intersecting_instance(16, 4, 3, seed=11)
        indices = reduction.default_run_indices(disjointness, sample=3, seed=11)
        assert disjointness.intersecting_element in indices

    def test_messages_recorded_once(self, reduction):
        disjointness = disjoint_instance(16, 4, 3, seed=12)
        outcome = reduction.execute(
            disjointness,
            algorithm_factory=lambda seed: KKAlgorithm(seed=seed),
            seed=12,
            run_indices=[0, 1],
        )
        assert len(outcome.message_words) == reduction.family.t - 1


class TestCompatibility:
    def test_rejects_party_mismatch(self, reduction):
        disjointness = disjoint_instance(16, 2, 3, seed=13)
        with pytest.raises(ConfigurationError):
            reduction.party_edges(disjointness)

    def test_rejects_ground_set_overflow(self, family):
        reduction = DisjointnessReduction(family)
        disjointness = disjoint_instance(100, 4, 3, seed=14)
        with pytest.raises(ConfigurationError):
            reduction.party_edges(disjointness)


class TestRecommendedParties:
    def test_formula_shape(self):
        import math

        alpha, n = 100.0, 400
        expected = int(alpha**2 * math.log(n) ** 2 / n)
        assert recommended_parties(alpha, n) == max(2, expected)

    def test_floor_two(self):
        assert recommended_parties(1.0, 10**6) == 2

    def test_grows_with_alpha(self):
        assert recommended_parties(500, 400) > recommended_parties(100, 400)
