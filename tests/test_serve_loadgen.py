"""The load generator and BENCH_serve.json: determinism, live runs, schema.

The schedule is a pure function of its arguments (so two cells at
different pacing replay identical requests); a live low-QPS run must
classify every request into exactly one outcome bucket with zero
invalid covers; the report round-trips through JSON with the schema-1
envelope intact and renders as a table.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import percentile
from repro.errors import InvalidParameterError, TransportError
from repro.generators.planted import planted_partition_instance
from repro.serve import (
    DEFAULT_MIX,
    InstanceRegistry,
    LatencySummary,
    SERVE_BENCH_SCHEMA,
    ServeConfig,
    build_schedule,
    load_serve_report,
    render_serve_report,
    run_load,
    start_server_thread,
    write_serve_report,
)


@pytest.fixture(scope="module")
def handle():
    registry = InstanceRegistry()
    registry.load_instance(
        "demo",
        planted_partition_instance(60, 24, opt_size=5, seed=4).instance,
    )
    try:
        server = start_server_thread(ServeConfig(port=0), registry)
    except TransportError as exc:
        pytest.skip(f"sandbox forbids binding localhost TCP: {exc}")
    with server:
        yield server


class TestPercentile:
    def test_nearest_rank_is_an_observed_sample(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 99) == 5.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_single_sample(self):
        assert percentile([7.5], 50) == 7.5
        assert percentile([7.5], 99) == 7.5

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = build_schedule(["x", "y"], requests=50, seed=9)
        b = build_schedule(["x", "y"], requests=50, seed=9)
        assert a == b

    def test_different_seed_differs(self):
        a = build_schedule(["x", "y"], requests=50, seed=9)
        b = build_schedule(["x", "y"], requests=50, seed=10)
        assert a != b

    def test_mix_weights_respected(self):
        ops = build_schedule(["x"], requests=300, seed=1, mix=DEFAULT_MIX)
        kinds = {op.kind for op in ops}
        assert kinds == {"solve", "distribute", "chaos"}
        solve_count = sum(1 for op in ops if op.kind == "solve")
        assert solve_count > 100  # weight 3 of 5 over 300 draws

    def test_chaos_ops_carry_fault_fields(self):
        ops = build_schedule(
            ["x"], requests=60, seed=2, mix=[("chaos", 1)]
        )
        for op in ops:
            assert op.kind == "chaos"
            assert op.fields["fault_kind"] in ("drop", "duplicate", "corrupt")
            assert op.fields["policy"] == "best_effort"

    def test_validation_is_typed(self):
        with pytest.raises(InvalidParameterError):
            build_schedule([], requests=5)
        with pytest.raises(InvalidParameterError):
            build_schedule(["x"], requests=0)
        with pytest.raises(InvalidParameterError):
            build_schedule(["x"], requests=5, mix=[("explode", 1)])
        with pytest.raises(InvalidParameterError):
            build_schedule(["x"], requests=5, mix=[("solve", 0)])


class TestRunLoad:
    def test_live_run_zero_invalid(self, handle):
        schedule = build_schedule(["demo"], requests=20, seed=3)
        report = run_load(
            handle.host, handle.port, schedule, qps=40, concurrency=3
        )
        total = (
            report.ok
            + report.degraded
            + report.admission_rejections
            + report.remote_errors
            + report.transport_errors
            + report.invalid
        )
        assert total == len(schedule)  # every op lands in exactly one bucket
        assert report.invalid == 0
        assert report.transport_errors == 0
        assert report.ok > 0
        assert report.latency.samples == len(schedule)
        assert report.latency.p50_ms <= report.latency.p99_ms
        assert report.achieved_qps > 0
        assert report.pool.get("space_capacity_words", 0) > 0
        assert sum(report.by_kind.values()) == len(schedule)

    def test_validation_is_typed(self, handle):
        schedule = build_schedule(["demo"], requests=2, seed=0)
        with pytest.raises(InvalidParameterError):
            run_load(handle.host, handle.port, schedule, qps=0, concurrency=1)
        with pytest.raises(InvalidParameterError):
            run_load(handle.host, handle.port, schedule, qps=5, concurrency=0)


class TestReport:
    def test_round_trip_and_schema(self, handle, tmp_path):
        schedule = build_schedule(["demo"], requests=10, seed=3)
        cell = run_load(
            handle.host, handle.port, schedule, qps=50, concurrency=2
        )
        path = tmp_path / "BENCH_serve.json"
        payload = write_serve_report(
            path,
            [cell],
            server_config={"space_pool_words": 200_000},
            workload={"seed": 3, "requests_per_cell": 10},
        )
        loaded = load_serve_report(path)
        assert loaded == payload
        assert loaded["schema"] == SERVE_BENCH_SCHEMA
        assert loaded["workload"]["seed"] == 3
        assert len(loaded["cells"]) == 1
        recorded = loaded["cells"][0]
        assert recorded["qps"] == 50
        assert recorded["concurrency"] == 2
        assert recorded["invalid"] == 0
        assert recorded["latency"]["samples"] == 10
        assert "p99_ms" in recorded["latency"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_serve_report(tmp_path / "absent.json") == {}

    def test_render_shows_every_cell(self, handle, tmp_path):
        schedule = build_schedule(["demo"], requests=6, seed=1)
        cell = run_load(
            handle.host, handle.port, schedule, qps=30, concurrency=2
        )
        payload = write_serve_report(
            tmp_path / "b.json", [cell], {}, {}
        )
        rendered = render_serve_report(payload)
        assert "p99 ms" in rendered
        assert "serve load surface" in rendered


class TestLatencySummary:
    def test_empty_is_zeroes(self):
        summary = LatencySummary.of(())
        assert summary.samples == 0
        assert summary.p99_ms == 0.0

    def test_percentiles_ordered(self):
        summary = LatencySummary.of([float(i) for i in range(1, 101)])
        assert summary.p50_ms == 50.0
        assert summary.p95_ms == 95.0
        assert summary.p99_ms == 99.0
        assert summary.max_ms == 100.0
        assert summary.samples == 100
