"""Tests for the runner, sweep, and table-rendering harness pieces."""

from __future__ import annotations

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import Sweep
from repro.analysis.tables import (
    format_cell,
    render_kv,
    render_scatter,
    render_table,
)
from repro.core.kk import KKAlgorithm
from repro.baselines.trivial import FirstFitAlgorithm
from repro.generators.planted import planted_partition_instance


@pytest.fixture
def runner():
    return ExperimentRunner(
        algorithms={
            "kk": lambda seed: KKAlgorithm(seed=seed),
            "first-fit": lambda seed: FirstFitAlgorithm(seed=seed),
        },
        seed=1,
    )


class TestExperimentRunner:
    def test_run_one(self, runner):
        planted = planted_partition_instance(30, 60, opt_size=3, seed=1)
        metrics = runner.run_one(
            planted.instance, "random", "kk", opt_handle=3
        )
        assert metrics.algorithm == "kk"
        assert metrics.valid
        assert metrics.opt_handle == 3

    def test_compare_runs_all_algorithms(self, runner):
        planted = planted_partition_instance(30, 60, opt_size=3, seed=2)
        rows = runner.compare(planted.instance, "random", opt_handle=3)
        assert {row.algorithm for row in rows} == {"kk", "first-fit"}

    def test_compare_same_stream_per_replication(self, runner):
        planted = planted_partition_instance(30, 60, opt_size=3, seed=3)
        rows = runner.compare(planted.instance, "random", opt_handle=3)
        seeds = {row.seed for row in rows}
        assert len(seeds) == 1  # one replication -> shared stream seed

    def test_replications(self, runner):
        planted = planted_partition_instance(30, 60, opt_size=3, seed=4)
        rows = runner.compare(
            planted.instance, "random", opt_handle=3, replications=3
        )
        assert len(rows) == 6

    def test_sweep_instances(self, runner):
        pairs = [
            (planted_partition_instance(20, 40, opt_size=2, seed=s).instance, 2)
            for s in range(2)
        ]
        rows = runner.sweep_instances(pairs, "random")
        assert len(rows) == 4

    def test_opt_computed_when_not_supplied(self, runner):
        planted = planted_partition_instance(20, 30, opt_size=2, seed=5)
        metrics = runner.run_one(planted.instance, "random", "kk")
        assert metrics.opt_handle >= 1

    def test_requires_algorithms(self):
        with pytest.raises(ValueError):
            ExperimentRunner(algorithms={})


def _make_runner():
    return ExperimentRunner(
        algorithms={
            "kk": lambda seed: KKAlgorithm(seed=seed),
            "first-fit": lambda seed: FirstFitAlgorithm(seed=seed),
        },
        seed=42,
    )


class TestParallelRunner:
    """The thread-pool path must be bit-identical to the serial one."""

    def test_compare_parallel_matches_serial(self):
        planted = planted_partition_instance(30, 60, opt_size=3, seed=6)
        serial = _make_runner().compare(
            planted.instance, "random", opt_handle=3, replications=3,
            max_workers=1,
        )
        parallel = _make_runner().compare(
            planted.instance, "random", opt_handle=3, replications=3,
            max_workers=4,
        )
        assert parallel == serial  # RunMetrics is a dataclass: full equality

    def test_sweep_parallel_matches_serial(self):
        pairs = [
            (planted_partition_instance(20, 40, opt_size=2, seed=s).instance, 2)
            for s in range(3)
        ]
        serial = _make_runner().sweep_instances(
            pairs, "random", replications=2, max_workers=1
        )
        parallel = _make_runner().sweep_instances(
            pairs, "random", replications=2, max_workers=4
        )
        assert parallel == serial

    def test_rejects_nonpositive_workers(self):
        planted = planted_partition_instance(20, 40, opt_size=2, seed=7)
        with pytest.raises(ValueError):
            _make_runner().compare(planted.instance, "random", max_workers=0)


class TestSweep:
    def test_runs_grid(self):
        calls = []

        def measure(value, seed):
            calls.append((value, seed))
            return {"y": value * 2}

        result = Sweep("x", [1.0, 2.0], measure, replications=3, seed=1).run()
        assert len(calls) == 6
        assert result.parameters() == [1.0, 2.0]
        assert result.series("y") == [2.0, 4.0]

    def test_fit(self):
        def measure(value, seed):
            return {"y": 5.0 * value**2}

        result = Sweep("x", [1.0, 2.0, 4.0], measure, replications=1).run()
        assert result.fit("y") == pytest.approx(2.0)

    def test_rows(self):
        def measure(value, seed):
            return {"y": value}

        result = Sweep("x", [3.0], measure, replications=2).run()
        rows = result.rows(["y"])
        assert rows[0][0] == 3.0
        assert "±" in rows[0][1]

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            Sweep("x", [], lambda v, s: {})

    def test_rejects_zero_replications(self):
        with pytest.raises(ValueError):
            Sweep("x", [1.0], lambda v, s: {}, replications=0)

    def test_deterministic_under_seed(self):
        def measure(value, seed):
            return {"y": float(seed % 97)}

        a = Sweep("x", [1.0], measure, replications=2, seed=5).run()
        b = Sweep("x", [1.0], measure, replications=2, seed=5).run()
        assert a.series("y") == b.series("y")


class TestTables:
    def test_render_basic(self):
        text = render_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "1" in lines[2]

    def test_title(self):
        text = render_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_markdown_mode(self):
        text = render_table(["a"], [[1]], markdown=True)
        assert text.splitlines()[0].startswith("| ")
        assert set(text.splitlines()[1]) <= {"|", "-"}

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_format_cell_float(self):
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.000123) == "0.0001"
        assert format_cell(12345.6) == "12346"
        assert format_cell(0.0) == "0"

    def test_format_cell_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_format_cell_string(self):
        assert format_cell("x") == "x"

    def test_render_kv(self):
        text = render_kv([("key", 1), ("longer-key", 2.5)], title="vals:")
        assert text.splitlines()[0] == "vals:"
        assert "longer-key" in text


class TestScatter:
    def test_markers_and_legend(self):
        text = render_scatter(
            [("alpha", 10, 100), ("beta", 100, 10)], x_label="w", y_label="c"
        )
        assert "1" in text and "2" in text
        assert "1=alpha" in text and "2=beta" in text

    def test_axis_labels(self):
        text = render_scatter([("p", 1, 1), ("q", 10, 10)])
        assert "> x (log)" in text
        assert "y ^" in text

    def test_title(self):
        text = render_scatter([("p", 1, 1), ("q", 2, 2)], title="map:")
        assert text.splitlines()[0] == "map:"

    def test_linear_scales(self):
        text = render_scatter(
            [("p", 0, 0), ("q", 5, 5)], log_x=False, log_y=False
        )
        assert "(log)" not in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_scatter([])

    def test_rejects_nonpositive_for_log(self):
        with pytest.raises(ValueError):
            render_scatter([("p", 0, 1)])
        with pytest.raises(ValueError):
            render_scatter([("p", 1, 0)])

    def test_extremes_within_grid(self):
        points = [(f"p{i}", 10**i, 2**i) for i in range(5)]
        text = render_scatter(points, width=30, height=8)
        lines = [l for l in text.splitlines() if l.startswith("  |")]
        assert len(lines) == 8  # exactly the grid rows
        assert all(len(l) <= 3 + 30 for l in lines)
