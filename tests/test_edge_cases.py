"""Edge cases and failure injection across the whole stack.

Degenerate shapes (singleton universes, one set, full sets, empty
sets), truncated and duplicated streams, infeasible inputs, and
mid-stream adversities every component must survive or reject loudly.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.greedy import greedy_cover
from repro.baselines.trivial import FirstFitAlgorithm
from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.element_sampling import ElementSamplingAlgorithm
from repro.core.kk import KKAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.errors import InvalidCoverError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.stream import EdgeStream, stream_of
from repro.types import Edge

ALL_ALGORITHMS = [
    lambda: KKAlgorithm(seed=1),
    lambda: LowSpaceAdversarialAlgorithm(alpha=2, seed=1),
    lambda: RandomOrderAlgorithm(seed=1),
    lambda: ElementSamplingAlgorithm(alpha=2, seed=1),
    lambda: FirstFitAlgorithm(seed=1),
]


class TestDegenerateShapes:
    @pytest.mark.parametrize("make_algorithm", ALL_ALGORITHMS)
    def test_single_element_single_set(self, make_algorithm):
        instance = SetCoverInstance(1, [{0}])
        result = make_algorithm().run(stream_of(instance))
        result.verify(instance)
        assert result.cover_size == 1

    @pytest.mark.parametrize("make_algorithm", ALL_ALGORITHMS)
    def test_one_set_covers_everything(self, make_algorithm):
        instance = SetCoverInstance(8, [set(range(8))])
        result = make_algorithm().run(stream_of(instance))
        result.verify(instance)
        assert result.cover == frozenset({0})

    @pytest.mark.parametrize("make_algorithm", ALL_ALGORITHMS)
    def test_all_singleton_sets(self, make_algorithm):
        instance = SetCoverInstance(6, [{u} for u in range(6)])
        result = make_algorithm().run(stream_of(instance))
        result.verify(instance)
        assert result.cover_size == 6  # no smaller cover exists

    @pytest.mark.parametrize("make_algorithm", ALL_ALGORITHMS)
    def test_duplicate_identical_sets(self, make_algorithm):
        instance = SetCoverInstance(4, [{0, 1, 2, 3}] * 5)
        result = make_algorithm().run(stream_of(instance))
        result.verify(instance)
        assert result.cover_size == 1

    @pytest.mark.parametrize("make_algorithm", ALL_ALGORITHMS)
    def test_empty_sets_ignored(self, make_algorithm):
        instance = SetCoverInstance(3, [set(), {0, 1, 2}, set()])
        result = make_algorithm().run(stream_of(instance))
        result.verify(instance)
        assert result.cover == frozenset({1})


class TestStreamAdversities:
    def test_truncated_stream_fails_loudly(self):
        """A stream missing an element's every edge cannot be patched."""
        instance = SetCoverInstance(3, [{0, 1}, {2}])
        truncated = EdgeStream(
            instance, [Edge(0, 0), Edge(0, 1)]  # element 2 never appears
        )
        with pytest.raises(InvalidCoverError):
            KKAlgorithm(seed=1).run(truncated)

    def test_duplicate_edges_tolerated(self):
        """Repeated tuples may occur upstream; covers stay valid."""
        instance = SetCoverInstance(3, [{0, 1}, {1, 2}])
        edges = list(instance.edges()) * 3
        result = FirstFitAlgorithm(seed=1).run(EdgeStream(instance, edges))
        result.verify(instance)

    def test_duplicate_edges_kk_still_valid(self):
        instance = SetCoverInstance(4, [{0, 1}, {1, 2}, {2, 3}])
        edges = list(instance.edges()) * 2
        result = KKAlgorithm(seed=2).run(EdgeStream(instance, edges))
        result.verify(instance)

    def test_empty_stream_on_positive_universe(self):
        instance = SetCoverInstance(2, [{0, 1}])
        empty = EdgeStream(instance, [])
        with pytest.raises(InvalidCoverError):
            FirstFitAlgorithm(seed=1).run(empty)


class TestExtremeParameters:
    def test_alpha_one_adversarial(self):
        """α = 1 promotes on every uncovered edge; must stay valid."""
        instance = SetCoverInstance(5, [{0, 1, 2}, {2, 3, 4}, {0, 4}])
        result = LowSpaceAdversarialAlgorithm(alpha=1, seed=3).run(
            stream_of(instance)
        )
        result.verify(instance)

    def test_huge_alpha_adversarial(self):
        """α ≫ everything: promotions almost never fire; patching saves us."""
        instance = SetCoverInstance(5, [{0, 1, 2}, {2, 3, 4}, {0, 4}])
        result = LowSpaceAdversarialAlgorithm(alpha=10**6, seed=3).run(
            stream_of(instance)
        )
        result.verify(instance)

    def test_element_sampling_alpha_huge(self):
        """p ≈ 0: nothing sampled; everything patched, still valid."""
        instance = SetCoverInstance(5, [{0, 1, 2}, {2, 3, 4}])
        result = ElementSamplingAlgorithm(alpha=10**9, seed=4).run(
            stream_of(instance)
        )
        result.verify(instance)
        assert result.diagnostics["sampled_elements"] <= 5

    def test_random_order_algorithm_on_tiny_stream(self):
        """Stream shorter than one subepoch: loops exhaust gracefully."""
        instance = SetCoverInstance(2, [{0}, {1}])
        result = RandomOrderAlgorithm(seed=5).run(stream_of(instance))
        result.verify(instance)


class TestVerificationCatchesCorruption:
    """The verifier must reject every corruption mode (failure injection)."""

    @pytest.fixture
    def good_result(self, tiny_instance):
        result = FirstFitAlgorithm(seed=1).run(stream_of(tiny_instance))
        result.verify(tiny_instance)
        return result

    def test_dropping_certificate_entry(self, tiny_instance, good_result):
        del good_result.certificate[0]
        with pytest.raises(InvalidCoverError):
            good_result.verify(tiny_instance)

    def test_wrong_witness(self, tiny_instance, good_result):
        # Point element 0 to a set that does not contain it (set 2 = {2,3}).
        good_result.certificate[0] = 2
        object.__setattr__(
            good_result, "cover", good_result.cover | {2}
        )
        with pytest.raises(InvalidCoverError):
            good_result.verify(tiny_instance)

    def test_witness_outside_cover(self, tiny_instance, good_result):
        object.__setattr__(
            good_result,
            "cover",
            frozenset(good_result.cover - {good_result.certificate[0]}),
        )
        with pytest.raises(InvalidCoverError):
            good_result.verify(tiny_instance)


class TestGreedyEdgeCases:
    def test_greedy_on_single_set(self):
        instance = SetCoverInstance(3, [{0, 1, 2}])
        assert greedy_cover(instance).cover_size == 1

    def test_greedy_tie_breaking_deterministic(self):
        instance = SetCoverInstance(4, [{0, 1}, {2, 3}, {0, 1}, {2, 3}])
        a = greedy_cover(instance).cover
        b = greedy_cover(instance).cover
        assert a == b
