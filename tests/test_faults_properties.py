"""Property tests: the chaos invariant over the full fault grid.

Every registered algorithm, under every fault kind, at every tested
intensity, in both an adversarial and a random arrival order, must end
in a valid cover, a typed :class:`ReproError`, or an explicit
degradation record — never a bare builtin exception and never a
silently wrong answer.  This is the acceptance criterion of the fault
subsystem, executed cell by cell.
"""

from __future__ import annotations

import pytest

from repro.algorithms import registered_algorithms
from repro.analysis.chaos import run_chaos, run_chaos_cell
from repro.faults import FAULT_KINDS
from repro.generators.planted import planted_partition_instance

RATES = (0.01, 0.1, 0.5)
ORDERS = ("round-robin", "random")
ALGORITHMS = registered_algorithms()

ALLOWED = {"valid-cover", "degraded", "typed-error"}


@pytest.fixture(scope="module")
def grid_instance():
    return planted_partition_instance(n=24, m=16, opt_size=4, seed=11).instance


def _cell_seed(algorithm: str, kind: str, rate: float, order: str) -> int:
    # Stable across processes (no str hashing) so failures reproduce.
    return (
        ALGORITHMS.index(algorithm) * 10_000
        + FAULT_KINDS.index(kind) * 1_000
        + int(rate * 100) * 10
        + ORDERS.index(order)
    )


@pytest.mark.parametrize("kind", FAULT_KINDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_invariant_holds_under_best_effort(grid_instance, algorithm, kind):
    for rate in RATES:
        for order in ORDERS:
            cell = run_chaos_cell(
                grid_instance,
                algorithm,
                kind,
                rate,
                order,
                policy="best_effort",
                seed=_cell_seed(algorithm, kind, rate, order),
            )
            assert cell.outcome in ALLOWED, (
                f"{algorithm} × {kind}@{rate} × {order}: {cell.detail}"
            )


@pytest.mark.parametrize(
    # set-arrival is excluded: it requires set-grouped arrival and
    # (correctly) degrades on the orders the chaos grid uses.
    "algorithm",
    [name for name in ALGORITHMS if name != "set-arrival"],
)
def test_clean_stream_stays_clean(grid_instance, algorithm):
    # Rate-0 faults must not disturb a healthy run (zero-cost guarantee)
    # ... except lie-length, which lies by at least one edge by design.
    for kind in ("drop", "duplicate", "corrupt", "truncate", "reorder"):
        cell = run_chaos_cell(
            grid_instance,
            algorithm,
            kind,
            0.0,
            "round-robin",
            policy="best_effort",
            seed=42,
        )
        assert cell.outcome == "valid-cover", (
            f"{algorithm} × {kind}@0.0: {cell.outcome} ({cell.detail})"
        )


class TestRunChaos:
    def test_full_report_holds_invariant(self):
        report = run_chaos(seed=7)
        report.assert_invariant()
        expected = len(ALGORITHMS) * len(FAULT_KINDS) * 3 * 2
        assert len(report.rows) == expected

    def test_quick_grid_is_small(self):
        report = run_chaos(seed=7, quick=True)
        assert len(report.rows) == 2 * len(FAULT_KINDS) * 2
        report.assert_invariant()

    def test_deterministic_per_seed(self):
        a = run_chaos(seed=3, quick=True)
        b = run_chaos(seed=3, quick=True)
        assert [c.outcome for c in a.rows] == [c.outcome for c in b.rows]
        assert [c.cover_size for c in a.rows] == [c.cover_size for c in b.rows]

    def test_render_mentions_every_outcome(self):
        report = run_chaos(seed=7, quick=True)
        text = report.render()
        assert "outcomes:" in text
        for cell in report.rows:
            assert cell.outcome in text

    def test_assert_invariant_raises_on_violation(self):
        report = run_chaos(seed=7, quick=True)
        report.rows[0].outcome = "violation"
        report.rows[0].detail = "synthetic"
        with pytest.raises(AssertionError, match="synthetic"):
            report.assert_invariant()
        assert len(report.violations()) == 1
