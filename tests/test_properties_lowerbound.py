"""Property-based tests for the lower-bound substrate.

Hypothesis strategies drive the Lemma-1 family sampler, the promise
instances, and the protocol plumbing across their whole parameter
spaces.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.lowerbound.disjointness import (
    disjoint_instance,
    intersecting_instance,
)
from repro.lowerbound.family import build_family
from repro.lowerbound.protocol import Message, OneWayChain
from repro.lowerbound.simple_protocol import (
    PartyInput,
    run_simple_protocol,
)

seeds = st.integers(min_value=0, max_value=2**31)


class TestFamilyProperties:
    @given(
        n=st.integers(min_value=16, max_value=256),
        m=st.integers(min_value=2, max_value=12),
        t=st.integers(min_value=2, max_value=4),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_structure_invariants(self, n, m, t, seed):
        assume(t <= n)
        family = build_family(n, m, t, seed=seed, intersection_slack=50.0)
        # Sizes.
        assert family.part_size == max(1, round(math.sqrt(n / t)))
        assert family.set_size == family.part_size * t
        assert family.set_size <= n
        # Partition property.
        for i in range(family.m):
            union = set()
            total = 0
            for part in family.parts[i]:
                assert union.isdisjoint(part)
                union |= part
                total += len(part)
            assert total == family.set_size
            assert union <= set(range(n))

    @given(
        n=st.integers(min_value=64, max_value=256),
        seed=seeds,
    )
    @settings(max_examples=15, deadline=None)
    def test_complement_partitions_universe(self, n, seed):
        family = build_family(n, 4, 4, seed=seed, intersection_slack=50.0)
        for i in range(family.m):
            full = family.full_set(i)
            comp = family.complement(i)
            assert full | comp == set(range(n))
            assert full & comp == set()


class TestDisjointnessProperties:
    @given(
        t=st.integers(min_value=2, max_value=6),
        size=st.integers(min_value=1, max_value=6),
        seed=seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_disjoint_promise_holds(self, t, size, seed):
        m = t * size + 4
        instance = disjoint_instance(m, t, size, seed=seed)
        instance.check_promise()
        assert all(len(s) == size for s in instance.sets)

    @given(
        t=st.integers(min_value=2, max_value=6),
        size=st.integers(min_value=1, max_value=6),
        seed=seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_intersecting_promise_holds(self, t, size, seed):
        m = t * size + 4
        instance = intersecting_instance(m, t, size, seed=seed)
        instance.check_promise()
        shared = instance.intersecting_element
        assert all(shared in s for s in instance.sets)


class TestProtocolProperties:
    @given(
        words=st.lists(
            st.integers(min_value=0, max_value=100), min_size=2, max_size=8
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_max_message_is_max_of_forwarded(self, words):
        def party_for(w):
            def fn(incoming, _input):
                return Message(payload=None, words=w)

            return fn

        chain = OneWayChain([party_for(w) for w in words])
        result = chain.execute([None] * len(words))
        # The last message is the output announcement, excluded.
        assert result.message_words == words[:-1]
        assert result.max_message_words == max(words[:-1])


class TestSimpleProtocolProperties:
    @given(
        t=st.integers(min_value=2, max_value=5),
        n=st.integers(min_value=8, max_value=40),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_always_produces_cover_within_bound(self, t, n, seed):
        import random

        rng = random.Random(seed)
        # Build t parties whose sets jointly cover [n]: deal a partition
        # plus random extras.
        elements = list(range(n))
        rng.shuffle(elements)
        parties = []
        chunk = max(1, n // t)
        for p in range(t):
            share = elements[p * chunk : (p + 1) * chunk]
            sets = [set(share)] if share else []
            for _ in range(3):
                sets.append(
                    set(rng.sample(range(n), min(n, rng.randint(1, 5))))
                )
            parties.append(PartyInput(sets))
        # Last party sweeps up any remainder.
        remainder = elements[t * chunk :]
        if remainder:
            parties[-1].sets.append(set(remainder))
        result = run_simple_protocol(n, parties)
        assert set(result.certificate) == set(range(n))
        # Cover within the 2·sqrt(n·t)·OPT guarantee with OPT <= t + 1.
        assert result.cover_size <= 2 * math.sqrt(n * t) * (t + 1) + t
