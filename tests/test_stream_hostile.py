"""Tests for checkpoint/restore against truncated and length-lying buffers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidStreamError
from repro.faults import FaultSpec, inject
from repro.streaming.stream import (
    EdgeStream,
    FrozenEdges,
    StreamCheckpoint,
    stream_of,
)


@pytest.fixture
def edges(chain_instance):
    return tuple(chain_instance.edges())


@pytest.fixture
def frozen(edges):
    return FrozenEdges(edges)


class TestCheckpointRoundTrip:
    def test_resume_continues_where_left_off(self, chain_instance, frozen, edges):
        first_view = EdgeStream(chain_instance, frozen)
        reader = first_view.reader()
        consumed = reader.take(3)
        checkpoint = reader.checkpoint()
        assert consumed == edges[:3]
        assert checkpoint.position == 3

        second_view = EdgeStream(chain_instance, frozen)
        resumed = second_view.reader(resume_from=checkpoint)
        assert resumed.take_rest() == edges[3:]

    def test_checkpoint_at_stream_end(self, chain_instance, frozen, edges):
        view = EdgeStream(chain_instance, frozen)
        reader = view.reader()
        reader.take_rest()
        checkpoint = reader.checkpoint()
        fresh = EdgeStream(chain_instance, frozen)
        assert fresh.reader(resume_from=checkpoint).take_rest() == ()

    def test_resume_preserves_one_pass_discipline(
        self, chain_instance, frozen
    ):
        view = EdgeStream(chain_instance, frozen)
        checkpoint = view.reader().checkpoint()
        fresh = EdgeStream(chain_instance, frozen)
        fresh.reader(resume_from=checkpoint)
        from repro.errors import StreamExhaustedError

        with pytest.raises(StreamExhaustedError):
            fresh.reader(resume_from=checkpoint)


class TestHostileRestore:
    def test_truncated_buffer_rejected(self, chain_instance, frozen, edges):
        reader = EdgeStream(chain_instance, frozen).reader()
        reader.take(3)
        checkpoint = reader.checkpoint()
        truncated = EdgeStream(chain_instance, edges[:-2])
        with pytest.raises(InvalidStreamError, match="truncated or extended"):
            truncated.reader(resume_from=checkpoint)

    def test_extended_buffer_rejected(self, chain_instance, frozen, edges):
        checkpoint = EdgeStream(chain_instance, frozen).reader().checkpoint()
        extended = EdgeStream(chain_instance, edges + edges[:1])
        with pytest.raises(InvalidStreamError, match="truncated or extended"):
            extended.reader(resume_from=checkpoint)

    def test_length_lying_stream_rejected(self, chain_instance, frozen, edges):
        checkpoint = EdgeStream(chain_instance, frozen).reader().checkpoint()
        liar = EdgeStream(
            chain_instance, edges, declared_length=len(edges) + 5
        )
        with pytest.raises(InvalidStreamError, match="length-lying"):
            liar.reader(resume_from=checkpoint)

    def test_declared_length_mismatch_rejected(self, chain_instance, edges):
        checkpoint = StreamCheckpoint(
            position=0,
            buffer_length=len(edges),
            declared_length=len(edges) + 1,
        )
        honest = EdgeStream(chain_instance, edges)
        with pytest.raises(InvalidStreamError, match="declared"):
            honest.reader(resume_from=checkpoint)

    def test_position_out_of_range_rejected(self, chain_instance, edges):
        checkpoint = StreamCheckpoint(
            position=len(edges) + 1,
            buffer_length=len(edges),
            declared_length=len(edges),
        )
        honest = EdgeStream(chain_instance, edges)
        with pytest.raises(InvalidStreamError, match="position"):
            honest.reader(resume_from=checkpoint)


class TestDeclaredLength:
    def test_negative_declared_length_rejected(self, chain_instance, edges):
        with pytest.raises(InvalidStreamError, match="declared_length"):
            EdgeStream(chain_instance, edges, declared_length=-1)

    def test_length_lies_actual_length_does_not(self, chain_instance, edges):
        liar = EdgeStream(
            chain_instance, edges, declared_length=len(edges) + 7
        )
        assert liar.length == len(edges) + 7
        assert liar.actual_length == len(edges)

    def test_consumption_terminates_at_the_truth(self, chain_instance, edges):
        # Readers pace themselves on the buffer, not the declaration:
        # a lying stream must not hang a loop driven by `remaining`.
        liar = EdgeStream(
            chain_instance, edges, declared_length=len(edges) + 7
        )
        reader = liar.reader()
        taken = []
        while reader.remaining:
            chunk = reader.take(4)
            if not chunk:
                break
            taken.extend(chunk)
        assert tuple(taken) == edges

    def test_injected_lie_is_detectable(self, chain_instance):
        faulty = inject(
            stream_of(chain_instance), [FaultSpec("lie-length", 0.5, seed=2)]
        )
        assert faulty.length > faulty.actual_length
        assert faulty.injection.lies_about_length
        checkpoint = faulty.reader().checkpoint()
        # A checkpoint taken on the lying stream refuses to restore onto
        # it: declared and actual disagree, so positions are unreliable.
        replay = EdgeStream(
            chain_instance,
            faulty.peek_all(),
            declared_length=faulty.length,
        )
        with pytest.raises(InvalidStreamError):
            replay.reader(resume_from=checkpoint)
