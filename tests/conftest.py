"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.streaming.instance import SetCoverInstance


@pytest.fixture
def tiny_instance() -> SetCoverInstance:
    """4 elements, 3 sets; OPT = 2 ({0,1} via set 0, {2,3} via set 2)."""
    return SetCoverInstance(4, [{0, 1}, {1, 2}, {2, 3}], name="tiny")


@pytest.fixture
def chain_instance() -> SetCoverInstance:
    """6 elements in overlapping pairs; classic greedy-friendly chain."""
    return SetCoverInstance(
        6, [{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}], name="chain"
    )


@pytest.fixture
def star_instance() -> SetCoverInstance:
    """One big set covering everything plus singletons; OPT = 1."""
    return SetCoverInstance(
        5, [{0, 1, 2, 3, 4}, {0}, {1}, {2}, {3}, {4}], name="star"
    )
