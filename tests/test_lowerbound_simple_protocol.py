"""Tests for the deterministic 2√(nt) protocol."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.generators.planted import planted_partition_instance
from repro.lowerbound.simple_protocol import (
    PartyInput,
    run_simple_protocol,
    split_instance_among_parties,
)


class TestBasicExecution:
    def test_output_is_cover(self):
        planted = planted_partition_instance(60, 120, opt_size=6, seed=1)
        parties = split_instance_among_parties(planted.instance, 3, seed=1)
        result = run_simple_protocol(60, parties)
        covered = set()
        for party_id, local_id in result.cover:
            covered |= parties[party_id].sets[local_id]
        assert covered == set(range(60))

    def test_certificate_total_and_correct(self):
        planted = planted_partition_instance(40, 80, opt_size=4, seed=2)
        parties = split_instance_among_parties(planted.instance, 4, seed=2)
        result = run_simple_protocol(40, parties)
        assert set(result.certificate) == set(range(40))
        for u, (party_id, local_id) in result.certificate.items():
            assert u in parties[party_id].sets[local_id]

    def test_cover_entries_unique(self):
        planted = planted_partition_instance(40, 80, opt_size=4, seed=3)
        parties = split_instance_among_parties(planted.instance, 2, seed=3)
        result = run_simple_protocol(40, parties)
        assert len(result.cover) == len(set(result.cover))

    def test_rejects_single_party(self):
        with pytest.raises(ConfigurationError):
            run_simple_protocol(10, [PartyInput([{0}])])

    def test_infeasible_raises(self):
        parties = [PartyInput([{0, 1}]), PartyInput([{1}])]
        with pytest.raises(ProtocolError):
            run_simple_protocol(4, parties)


class TestGuarantees:
    @pytest.mark.parametrize("t", [2, 4, 8])
    def test_approximation_bound(self, t):
        n = 100
        planted = planted_partition_instance(n, 600, opt_size=10, seed=t)
        parties = split_instance_among_parties(planted.instance, t, seed=t)
        result = run_simple_protocol(n, parties)
        bound = 2 * math.sqrt(n * t) * planted.opt_upper_bound
        assert result.cover_size <= bound

    @pytest.mark.parametrize("t", [2, 4, 8])
    def test_message_length_o_tilde_n(self, t):
        n = 100
        planted = planted_partition_instance(n, 600, opt_size=10, seed=t)
        parties = split_instance_among_parties(planted.instance, t, seed=t)
        result = run_simple_protocol(n, parties)
        # words: <= n uncovered + 2n witnesses + 2*chosen; chosen <= sqrt(nt)+n
        assert result.max_message_words <= 6 * n

    def test_default_threshold_sqrt_n_over_t(self):
        planted = planted_partition_instance(64, 128, opt_size=8, seed=9)
        parties = split_instance_among_parties(planted.instance, 4, seed=9)
        result = run_simple_protocol(64, parties)
        assert result.threshold == pytest.approx(math.sqrt(64 / 4))

    def test_message_flat_in_m(self):
        n = 64
        messages = []
        for m in (100, 1000):
            planted = planted_partition_instance(n, m, opt_size=8, seed=10)
            parties = split_instance_among_parties(planted.instance, 4, seed=10)
            result = run_simple_protocol(n, parties)
            messages.append(result.max_message_words)
        assert messages[1] <= messages[0] * 2


class TestSplitInstance:
    def test_all_sets_distributed(self):
        planted = planted_partition_instance(30, 50, opt_size=3, seed=11)
        parties = split_instance_among_parties(planted.instance, 4, seed=11)
        assert sum(len(p.sets) for p in parties) == 50

    def test_rejects_single_party(self):
        planted = planted_partition_instance(30, 50, opt_size=3, seed=12)
        with pytest.raises(ConfigurationError):
            split_instance_among_parties(planted.instance, 1)

    def test_deterministic(self):
        planted = planted_partition_instance(30, 50, opt_size=3, seed=13)
        a = split_instance_among_parties(planted.instance, 3, seed=13)
        b = split_instance_among_parties(planted.instance, 3, seed=13)
        assert [p.sets for p in a] == [p.sets for p in b]


class TestEdgeCases:
    """Hardening: more parties than sets, and empty parties mid-chain."""

    def test_more_parties_than_sets_splits(self):
        planted = planted_partition_instance(20, 4, opt_size=4, seed=14)
        parties = split_instance_among_parties(planted.instance, 7, seed=14)
        assert len(parties) == 7
        assert sum(len(p.sets) for p in parties) == 4
        assert sum(1 for p in parties if not p.sets) == 3

    def test_more_parties_than_sets_protocol_runs(self):
        planted = planted_partition_instance(20, 4, opt_size=4, seed=15)
        parties = split_instance_among_parties(planted.instance, 7, seed=15)
        result = run_simple_protocol(20, parties)
        covered = set()
        for party_id, local_id in result.cover:
            covered |= parties[party_id].sets[local_id]
        assert covered == set(range(20))

    def test_empty_party_forwards_state(self):
        # An explicitly empty middle party must not disturb the outcome
        # reached by its neighbours, and still sends a message.
        planted = planted_partition_instance(24, 12, opt_size=4, seed=16)
        parties = split_instance_among_parties(planted.instance, 2, seed=16)
        with_gap = [parties[0], PartyInput([]), parties[1]]
        result = run_simple_protocol(24, with_gap)
        assert set(result.certificate) == set(range(24))
        assert len(result.message_words) == 2
        # The empty party's message carries exactly its predecessor's state.
        assert result.message_words[1] >= result.message_words[0]

    def test_empty_first_party(self):
        planted = planted_partition_instance(24, 12, opt_size=4, seed=17)
        parties = split_instance_among_parties(planted.instance, 2, seed=17)
        result = run_simple_protocol(
            24, [PartyInput([]), parties[0], parties[1]]
        )
        assert set(result.certificate) == set(range(24))
        # First message: n uncovered words, no witnesses, nothing chosen.
        assert result.message_words[0] == 24

    def test_empty_last_party_can_strand_residue(self):
        # If the last party is empty, patching still works because the
        # witnesses travelled with the state.
        planted = planted_partition_instance(24, 12, opt_size=4, seed=18)
        parties = split_instance_among_parties(planted.instance, 2, seed=18)
        result = run_simple_protocol(24, list(parties) + [PartyInput([])])
        assert set(result.certificate) == set(range(24))

    def test_all_empty_parties_infeasible(self):
        with pytest.raises(ProtocolError):
            run_simple_protocol(4, [PartyInput([]), PartyInput([])])
