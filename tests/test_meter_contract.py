"""The shared budget discipline of SpaceMeter and CommMeter.

Both meters deliberately **apply, then raise**: the update that crosses
the budget is recorded before the typed budget error fires, so a
tripped meter's report shows the true usage that crossed the cap (the
meters are forensic instruments first, enforcers second).  These
hypothesis properties pin the contract for both meters at once — a
future "fix" flipping either one to check-then-charge breaks here
loudly, with a citation to why the order is intentional.

The transport layer leans on the converse ordering: the comm meter is
charged before :meth:`Transport.send` runs, so a budget-tripped merge
shows the over-budget message as *metered but never transmitted*
(``test_distributed_transport.py`` asserts that side).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.comm import CommBudget, CommMeter
from repro.errors import CommBudgetError, SpaceBudgetExceededError
from repro.streaming.space import SpaceBudget, SpaceMeter

# Messages/charges small enough that multi-step sequences straddle the
# budget in interesting ways, large enough to cross it in one step too.
_sizes = st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=12)
_budgets = st.integers(min_value=1, max_value=100)


class TestSharedApplyThenRaiseContract:
    @given(sizes=_sizes, budget_words=_budgets)
    @settings(max_examples=200, deadline=None)
    def test_both_meters_apply_before_raising(self, sizes, budget_words):
        """One property, both meters: the tripping update is recorded.

        Drives a CommMeter and a SpaceMeter through the *same* size
        sequence against the same budget and asserts the identical
        discipline on whichever trips: the error's ``used`` equals the
        meter's post-update total, and that total includes the
        offending update.
        """
        comm = CommMeter(budget=CommBudget(budget_words))
        space = SpaceMeter(budget=SpaceBudget(budget_words))

        comm_applied = 0
        for i, words in enumerate(sizes):
            try:
                comm.record("a", "b", words)
                comm_applied += words
            except CommBudgetError as err:
                comm_applied += words  # applied first, then raised
                assert err.used == comm_applied
                assert comm.total_words == comm_applied
                assert comm.total_words > budget_words
                # The tripping message is visible in the report too.
                report = comm.report()
                assert report.num_messages == i + 1
                assert report.per_link_words["a->b"] == comm_applied
                break
        else:
            assert comm.total_words == sum(sizes) <= budget_words

        space_applied = 0
        for words in sizes:
            try:
                space.charge(words)
                space_applied += words
            except SpaceBudgetExceededError as err:
                space_applied += words  # applied first, then raised
                assert err.used == space_applied
                assert space.current_words == space_applied
                assert space.current_words > budget_words
                assert space.report().peak_words == space_applied
                break
        else:
            assert space.current_words == sum(sizes) <= budget_words

        # The shared contract proper: fed the same sizes and budget,
        # the two meters agree on whether the budget trips and on the
        # usage at the moment it does.
        assert comm_applied == space_applied

    @given(sizes=_sizes, budget_words=_budgets)
    @settings(max_examples=100, deadline=None)
    def test_space_component_updates_apply_before_raising(
        self, sizes, budget_words
    ):
        """set_component honours the same discipline as anonymous charges."""
        meter = SpaceMeter(budget=SpaceBudget(budget_words))
        total = 0
        for i, words in enumerate(sizes):
            total += words
            try:
                meter.set_component(f"c{i}", words)
            except SpaceBudgetExceededError as err:
                assert err.used == total
                assert meter.current_words == total
                assert meter.component(f"c{i}") == words
                return
        assert total <= budget_words

    def test_comm_meter_usable_after_trip(self):
        """A tripped meter keeps reporting (forensics), not half-states."""
        meter = CommMeter(budget=CommBudget(10))
        meter.record("a", "b", 6)
        with pytest.raises(CommBudgetError):
            meter.record("b", "c", 7)
        report = meter.report()
        assert report.total_words == 13
        assert report.per_link_words == {"a->b": 6, "b->c": 7}
        assert report.max_message_words == 7
