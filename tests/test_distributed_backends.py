"""The execution-backend layer: serial, thread, process are one contract.

The backend that runs shard work is operational, exactly like
``max_workers``: for a fixed (instance, workers, order, seed,
algorithm, strategy, coordinator) every backend must produce a
dataclass-equal :class:`DistributedResult` and a byte-identical merged
trace JSONL.  These tests pin that contract, the backend registry, the
typed parameter validation, and the pickle-clean :class:`ShardTask`
boundary that the process backend depends on.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    BACKEND_REGISTRY,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    build_shard_tasks,
    make_backend,
    registered_backends,
    run_distributed,
)
from repro.distributed.backends import execute_shard_task
from repro.errors import ConfigurationError, InvalidParameterError
from repro.generators.planted import planted_partition_instance
from repro.obs.tracer import TraceCollector


@pytest.fixture(scope="module")
def instance():
    return planted_partition_instance(80, 40, opt_size=8, seed=11).instance


class TestBackendRegistry:
    def test_registered_backends(self):
        assert registered_backends() == ["process", "serial", "thread"]
        assert set(BACKEND_REGISTRY) == {"serial", "thread", "process"}

    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread"), ThreadBackend)
        assert isinstance(make_backend("process"), ProcessBackend)

    def test_unknown_backend_is_typed_error(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            make_backend("gpu")
        assert excinfo.value.parameter == "backend"
        assert excinfo.value.value == "gpu"

    def test_unknown_backend_via_run_distributed(self, instance):
        with pytest.raises(InvalidParameterError):
            run_distributed(instance, workers=2, backend="gpu")


class TestMaxWorkersValidation:
    """Regression: ``max_workers < 1`` must raise the typed error."""

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_raises_invalid_parameter(self, instance, bad):
        with pytest.raises(InvalidParameterError) as excinfo:
            run_distributed(instance, workers=2, max_workers=bad)
        assert excinfo.value.parameter == "max_workers"
        assert excinfo.value.value == bad

    def test_subclasses_configuration_error(self, instance):
        # Existing callers catching ConfigurationError keep working.
        with pytest.raises(ConfigurationError):
            run_distributed(instance, workers=2, max_workers=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ingest": "teleport"},
            {"ingest": "stream", "chunk_size": 0},
            {"ingest": "stream", "queue_depth": 0},
        ],
    )
    def test_streaming_parameters_validated(self, instance, kwargs):
        with pytest.raises(InvalidParameterError):
            run_distributed(instance, workers=2, **kwargs)


class TestBackendParity:
    """Acceptance criterion: process == serial for every max_workers."""

    @pytest.mark.parametrize("max_workers", [1, 2, 4, 8])
    def test_process_equals_serial(self, instance, max_workers):
        kwargs = dict(workers=4, algorithm="kk", seed=29)
        serial_collector = TraceCollector()
        serial = run_distributed(
            instance,
            backend="serial",
            max_workers=max_workers,
            collector=serial_collector,
            **kwargs,
        )
        process_collector = TraceCollector()
        process = run_distributed(
            instance,
            backend="process",
            max_workers=max_workers,
            collector=process_collector,
            **kwargs,
        )
        assert process == serial
        assert process_collector.to_jsonl() == serial_collector.to_jsonl()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_all_backends_agree(self, instance, backend):
        kwargs = dict(workers=3, algorithm="first-fit", seed=5)
        reference = run_distributed(instance, backend="serial", **kwargs)
        result = run_distributed(
            instance, backend=backend, max_workers=3, **kwargs
        )
        assert result == reference
        result.verify(instance)

    def test_default_backend_is_thread(self, instance):
        explicit = run_distributed(
            instance, workers=2, backend="thread", seed=1
        )
        default = run_distributed(instance, workers=2, seed=1)
        assert default == explicit


class TestShardTaskPickle:
    """Satellite 1: pickled tasks reproduce results and traces exactly."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        workers=st.integers(min_value=1, max_value=5),
        algorithm=st.sampled_from(["kk", "first-fit", "store-all"]),
    )
    def test_pickle_round_trip_reproduces(self, seed, workers, algorithm):
        instance = planted_partition_instance(
            40, 20, opt_size=4, seed=7
        ).instance
        tasks = build_shard_tasks(
            instance,
            workers=workers,
            algorithm=algorithm,
            seed=seed,
            traced=True,
        )
        assert len(tasks) == workers
        for task in tasks:
            clone = pickle.loads(pickle.dumps(task))
            assert clone == task
            original = execute_shard_task(task)
            replayed = execute_shard_task(clone)
            assert replayed.output == original.output
            assert replayed.trace_jsonl == original.trace_jsonl
            assert replayed.trace_jsonl is not None

    def test_tasks_cover_all_edges(self, instance):
        tasks = build_shard_tasks(instance, workers=4, seed=0)
        assert sum(len(t.edges) for t in tasks) == instance.num_edges

    def test_untraced_task_has_no_trace(self, instance):
        task = build_shard_tasks(instance, workers=1, seed=0)[0]
        envelope = execute_shard_task(task)
        assert envelope.trace_jsonl is None
        assert envelope.index == 0
