"""Tests for metrics, aggregation, and power-law fitting."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import (
    RunMetrics,
    aggregate,
    fit_power_law,
    geometric_decay_rate,
    metrics_from_result,
)
from repro.core.kk import KKAlgorithm
from repro.generators.random_instances import fixed_size_instance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import stream_of


class TestAggregate:
    def test_single_value(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0
        assert agg.stdev == 0.0
        assert agg.count == 1

    def test_multiple_values(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.minimum == 1.0
        assert agg.maximum == 3.0
        assert agg.stdev == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_str_format(self):
        assert "±" in str(aggregate([1.0, 2.0]))


class TestFitPowerLaw:
    def test_exact_fit(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x**1.5 for x in xs]
        exponent, constant = fit_power_law(xs, ys)
        assert exponent == pytest.approx(1.5)
        assert constant == pytest.approx(3.0)

    def test_negative_exponent(self):
        xs = [1.0, 2.0, 4.0]
        ys = [10.0 / (x * x) for x in xs]
        exponent, _ = fit_power_law(xs, ys)
        assert exponent == pytest.approx(-2.0)

    def test_flat_series(self):
        exponent, constant = fit_power_law([1, 2, 4], [7, 7, 7])
        assert exponent == pytest.approx(0.0)
        assert constant == pytest.approx(7.0)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([0, 2], [1, 1])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 3])


class TestGeometricDecay:
    def test_halving_series(self):
        assert geometric_decay_rate([8, 4, 2, 1]) == pytest.approx(0.5)

    def test_drop_to_zero_counts(self):
        rate = geometric_decay_rate([4, 0])
        assert rate == pytest.approx(0.0)

    def test_insufficient_data(self):
        assert geometric_decay_rate([]) is None
        assert geometric_decay_rate([5]) is None
        assert geometric_decay_rate([0, 0]) is None


class TestRunMetrics:
    def make(self, **overrides):
        base = dict(
            algorithm="kk",
            order="random",
            n=100,
            m=1000,
            stream_length=5000,
            cover_size=40,
            peak_words=2000,
            opt_handle=10,
            opt_is_exact=True,
            valid=True,
        )
        base.update(overrides)
        return RunMetrics(**base)

    def test_ratio(self):
        assert self.make().ratio == 4.0

    def test_normalized_ratio(self):
        assert self.make().normalized_ratio == pytest.approx(
            4.0 / math.sqrt(100)
        )

    def test_words_per_set(self):
        assert self.make().words_per_set == 2.0

    def test_from_result(self):
        instance = fixed_size_instance(30, 60, set_size=5, seed=1)
        result = KKAlgorithm(seed=1).run(
            stream_of(instance, RandomOrder(seed=1))
        )
        metrics = metrics_from_result(
            result, instance, order="random", opt_handle=5, opt_is_exact=False
        )
        assert metrics.algorithm == "kk"
        assert metrics.cover_size == result.cover_size
        assert metrics.peak_words == result.space.peak_words
        assert metrics.valid
        assert metrics.n == 30
        assert metrics.stream_length == instance.num_edges
