"""Tests for the fault-injection stream wrappers."""

from __future__ import annotations

import pytest

from repro.core.kk import KKAlgorithm
from repro.errors import ConfigurationError, StreamExhaustedError
from repro.faults import (
    FAULT_KINDS,
    FaultSpec,
    FaultyStream,
    apply_faults,
    fault_plan,
    inject,
)
from repro.streaming.stream import stream_of


@pytest.fixture
def edges(chain_instance):
    return tuple(chain_instance.edges())


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="meteor", rate=0.1)

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rejects_out_of_range_rate(self, rate):
        with pytest.raises(ConfigurationError, match="rate"):
            FaultSpec(kind="drop", rate=rate)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind, rate=0.5)


class TestApplyFaults:
    def test_deterministic_per_seed(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        spec = [FaultSpec("corrupt", 0.5, seed=9)]
        first = apply_faults(edges, n, m, spec)
        second = apply_faults(edges, n, m, spec)
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2].counts == second[2].counts

    def test_different_seeds_differ(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        a, _, _ = apply_faults(edges, n, m, [FaultSpec("drop", 0.5, seed=1)])
        b, _, _ = apply_faults(edges, n, m, [FaultSpec("drop", 0.5, seed=2)])
        assert a != b  # 12 coin flips at p=0.5; collision would be freak luck

    @pytest.mark.parametrize("kind", ["drop", "duplicate", "corrupt", "truncate"])
    def test_rate_zero_is_identity(self, chain_instance, edges, kind):
        n, m = chain_instance.n, chain_instance.m
        out, declared, report = apply_faults(
            edges, n, m, [FaultSpec(kind, 0.0, seed=3)]
        )
        assert out == edges
        assert declared is None
        assert report.counts[kind] == 0

    def test_drop_removes_subsequence(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        out, _, report = apply_faults(
            edges, n, m, [FaultSpec("drop", 0.5, seed=4)]
        )
        assert len(out) == len(edges) - report.counts["drop"]
        # Surviving edges keep their relative order.
        positions = [edges.index(edge) for edge in out]
        assert positions == sorted(positions)

    def test_duplicate_adds_adjacent_copies(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        out, _, report = apply_faults(
            edges, n, m, [FaultSpec("duplicate", 1.0, seed=5)]
        )
        assert report.counts["duplicate"] == len(edges)
        assert len(out) == 2 * len(edges)
        assert all(out[2 * i] == out[2 * i + 1] for i in range(len(edges)))

    def test_corrupt_produces_only_unknown_ids(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        out, _, report = apply_faults(
            edges, n, m, [FaultSpec("corrupt", 1.0, seed=6)]
        )
        assert report.counts["corrupt"] == len(edges)
        for edge in out:
            assert edge.set_id >= m or edge.element >= n

    def test_truncate_drops_the_tail(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        out, _, report = apply_faults(
            edges, n, m, [FaultSpec("truncate", 0.5, seed=7)]
        )
        keep = len(edges) - int(0.5 * len(edges))
        assert out == edges[:keep]
        assert report.counts["truncate"] == len(edges) - keep

    def test_reorder_preserves_multiset(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        out, _, _ = apply_faults(
            edges, n, m, [FaultSpec("reorder", 0.5, seed=8)]
        )
        assert len(out) == len(edges)
        assert sorted(out) == sorted(edges)

    def test_lie_length_inflates_declared_only(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        out, declared, report = apply_faults(
            edges, n, m, [FaultSpec("lie-length", 0.25, seed=9)]
        )
        assert out == edges
        assert declared is not None and declared > len(edges)
        assert report.lies_about_length

    def test_pipeline_composes_in_order(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        out, declared, report = apply_faults(
            edges,
            n,
            m,
            [FaultSpec("drop", 0.3, seed=1), FaultSpec("lie-length", 0.5, seed=2)],
        )
        assert len(out) < len(edges)
        assert declared is not None and declared > len(out)
        assert set(report.counts) == {"drop", "lie-length"}

    def test_report_has_isolated_space(self, chain_instance, edges):
        n, m = chain_instance.n, chain_instance.m
        _, _, report = apply_faults(edges, n, m, [FaultSpec("drop", 0.1, seed=1)])
        assert report.space is not None
        assert report.space.peak_words >= 2 * len(edges)
        assert report.space.final_words == 0


class TestFaultyStream:
    def test_behaves_like_edge_stream(self, chain_instance, edges):
        stream = FaultyStream(chain_instance, edges, [FaultSpec("drop", 0.0)])
        assert stream.order_name.endswith("+faults")
        assert tuple(stream) == edges

    def test_one_pass_discipline(self, chain_instance, edges):
        stream = FaultyStream(chain_instance, edges, [FaultSpec("drop", 0.3)])
        stream.reader().take_rest()
        with pytest.raises(StreamExhaustedError):
            stream.reader()

    def test_lie_length_sets_declared(self, chain_instance, edges):
        stream = FaultyStream(
            chain_instance, edges, [FaultSpec("lie-length", 0.5, seed=1)]
        )
        assert stream.length > stream.actual_length
        assert stream.injection.lies_about_length

    def test_injection_cost_not_charged_to_algorithm(self, chain_instance):
        clean = KKAlgorithm(seed=0).run(stream_of(chain_instance))
        faulted_stream = inject(
            stream_of(chain_instance), [FaultSpec("drop", 0.0, seed=0)]
        )
        faulted = KKAlgorithm(seed=0).run(faulted_stream)
        # A no-op fault pipeline leaves the algorithm's own accounting
        # untouched; the injector buffer lives on its private meter.
        assert faulted.space.peak_words == clean.space.peak_words


class TestInject:
    def test_spends_source_pass(self, chain_instance):
        source = stream_of(chain_instance)
        inject(source, [FaultSpec("drop", 0.1, seed=1)])
        with pytest.raises(StreamExhaustedError):
            source.reader()

    def test_preserves_order_name(self, chain_instance):
        faulty = inject(stream_of(chain_instance), [FaultSpec("drop", 0.1)])
        assert faulty.order_name == "canonical+faults"


class TestFaultPlan:
    def test_one_spec_per_kind_with_distinct_seeds(self):
        plan = fault_plan(FAULT_KINDS, rate=0.2, seed=5)
        assert [spec.kind for spec in plan] == list(FAULT_KINDS)
        assert all(spec.rate == 0.2 for spec in plan)
        assert len({spec.seed for spec in plan}) == len(FAULT_KINDS)

    def test_deterministic(self):
        assert fault_plan(FAULT_KINDS, 0.1, seed=3) == fault_plan(
            FAULT_KINDS, 0.1, seed=3
        )
