"""Tests for graceful-degradation policies and failure salvage."""

from __future__ import annotations

import pytest

from repro.core.base import StreamingSetCoverAlgorithm
from repro.core.kk import KKAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import (
    ConfigurationError,
    ReproError,
    SpaceBudgetExceededError,
)
from repro.faults import FaultSpec, ResilientAlgorithm, inject
from repro.streaming.stream import stream_of


class BudgetBlownAlgorithm(StreamingSetCoverAlgorithm):
    """Covers greedily, then blows its budget after ``fail_after`` edges."""

    name = "budget-blown"

    def __init__(self, fail_after, seed=None):
        super().__init__(seed=seed)
        self.fail_after = fail_after

    def _run(self, stream):
        cover = set()
        certificate = {}
        self._register_salvage(cover=cover, certificate=certificate)
        for index, edge in enumerate(stream):
            if index >= self.fail_after:
                raise SpaceBudgetExceededError(
                    used=index, budget=self.fail_after
                )
            if edge.element not in certificate:
                certificate[edge.element] = edge.set_id
                cover.add(edge.set_id)
        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=self._meter.report(),
            algorithm=self.name,
        )


class BareKeyErrorAlgorithm(StreamingSetCoverAlgorithm):
    name = "bare-key-error"

    def _run(self, stream):
        self._register_salvage(cover=set(), certificate={})
        next(iter(stream))
        raise KeyError("phantom element")


class RottenCoverAlgorithm(BudgetBlownAlgorithm):
    """Salvage container poisoned with an out-of-range set id."""

    name = "rotten-cover"

    def _run(self, stream):
        result = None
        cover = {stream.instance.m + 7}
        certificate = {}
        self._register_salvage(cover=cover, certificate=certificate)
        for index, edge in enumerate(stream):
            if index >= self.fail_after:
                raise SpaceBudgetExceededError(used=index, budget=self.fail_after)
            if edge.element not in certificate:
                certificate[edge.element] = edge.set_id
                cover.add(edge.set_id)
        return result


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown degradation"):
            ResilientAlgorithm(KKAlgorithm(seed=0), policy="pray")

    def test_name_reflects_policy(self):
        wrapper = ResilientAlgorithm(KKAlgorithm(seed=0), policy="best_effort")
        assert "best_effort" in wrapper.name


class TestFailFast:
    def test_clean_run_is_ok(self, chain_instance):
        wrapper = ResilientAlgorithm(KKAlgorithm(seed=0), policy="fail_fast")
        outcome = wrapper.run(stream_of(chain_instance))
        assert outcome.ok
        assert outcome.result.is_valid(chain_instance)
        assert outcome.degradation is None

    def test_errors_propagate_untouched(self, chain_instance):
        wrapper = ResilientAlgorithm(
            BudgetBlownAlgorithm(fail_after=2), policy="fail_fast"
        )
        with pytest.raises(SpaceBudgetExceededError):
            wrapper.run(stream_of(chain_instance))


class TestSkipBadEdges:
    def test_repairs_corrupt_stream(self):
        # Dense instance: every element appears in several sets, so a
        # moderate corruption rate cannot erase one entirely and repair
        # must yield a full, valid cover.
        from repro.generators.planted import planted_partition_instance

        instance = planted_partition_instance(
            n=24, m=16, opt_size=4, seed=11
        ).instance
        faulty = inject(
            stream_of(instance), [FaultSpec("corrupt", 0.3, seed=3)]
        )
        wrapper = ResilientAlgorithm(KKAlgorithm(seed=0), policy="skip_bad_edges")
        outcome = wrapper.run(faulty)
        assert outcome.result is not None
        assert outcome.result.is_valid(instance)
        record = outcome.degradation
        assert record is not None
        assert record.relaxed_invariant == "well-formed-edges"
        assert record.edges_skipped > 0
        assert record.coverage_fraction == 1.0

    def test_corrects_length_lie(self, chain_instance):
        faulty = inject(
            stream_of(chain_instance), [FaultSpec("lie-length", 0.5, seed=3)]
        )
        wrapper = ResilientAlgorithm(KKAlgorithm(seed=0), policy="skip_bad_edges")
        outcome = wrapper.run(faulty)
        assert outcome.result.is_valid(chain_instance)
        assert outcome.degradation.relaxed_invariant == "declared-length"

    def test_clean_stream_yields_no_degradation(self, chain_instance):
        wrapper = ResilientAlgorithm(KKAlgorithm(seed=0), policy="skip_bad_edges")
        outcome = wrapper.run(stream_of(chain_instance))
        assert outcome.ok

    def test_algorithm_errors_still_propagate(self, chain_instance):
        wrapper = ResilientAlgorithm(
            BudgetBlownAlgorithm(fail_after=2), policy="skip_bad_edges"
        )
        with pytest.raises(SpaceBudgetExceededError):
            wrapper.run(stream_of(chain_instance))


class TestBestEffortSalvage:
    def test_repro_error_becomes_partial_result(self, chain_instance):
        wrapper = ResilientAlgorithm(
            BudgetBlownAlgorithm(fail_after=4), policy="best_effort"
        )
        outcome = wrapper.run(stream_of(chain_instance))
        record = outcome.degradation
        assert record is not None
        assert record.error_type == "SpaceBudgetExceededError"
        assert "complete-cover" in record.relaxed_invariant
        assert 0.0 < record.coverage_fraction < 1.0
        assert record.uncovered_count > 0
        assert outcome.result is not None
        assert all(0 <= s < chain_instance.m for s in outcome.result.cover)
        # The certificate it salvaged is genuinely consistent.
        for element, set_id in outcome.result.certificate.items():
            assert chain_instance.contains(set_id, element)

    def test_bare_key_error_salvaged(self, chain_instance):
        wrapper = ResilientAlgorithm(BareKeyErrorAlgorithm(), policy="best_effort")
        outcome = wrapper.run(stream_of(chain_instance))
        assert outcome.degradation is not None
        assert outcome.degradation.error_type == "KeyError"

    def test_out_of_range_sets_filtered_from_salvage(self, chain_instance):
        wrapper = ResilientAlgorithm(
            RottenCoverAlgorithm(fail_after=3), policy="best_effort"
        )
        outcome = wrapper.run(stream_of(chain_instance))
        assert outcome.result is not None
        assert chain_instance.m + 7 not in outcome.result.cover
        assert all(0 <= s < chain_instance.m for s in outcome.result.cover)

    def test_truncated_stream_never_raises_bare(self, chain_instance):
        faulty = inject(
            stream_of(chain_instance), [FaultSpec("truncate", 0.5, seed=5)]
        )
        wrapper = ResilientAlgorithm(KKAlgorithm(seed=0), policy="best_effort")
        try:
            outcome = wrapper.run(faulty)
        except ReproError:
            return  # typed failure is an allowed outcome
        if outcome.degradation is None:
            assert outcome.result.is_valid(chain_instance)

    def test_clean_run_untouched(self, chain_instance):
        wrapper = ResilientAlgorithm(KKAlgorithm(seed=0), policy="best_effort")
        outcome = wrapper.run(stream_of(chain_instance))
        assert outcome.ok
        assert outcome.result.is_valid(chain_instance)


class TestPartialStateAttachment:
    def test_base_run_attaches_partial(self, chain_instance):
        algorithm = BudgetBlownAlgorithm(fail_after=4)
        with pytest.raises(SpaceBudgetExceededError) as excinfo:
            algorithm.run(stream_of(chain_instance))
        partial = excinfo.value.partial
        assert partial is not None
        assert partial.edges_consumed >= 4
        assert len(partial.certificate) > 0
        assert partial.cover  # witnesses collected before the failure
        # The snapshot is a copy: the original error state is frozen.
        assert isinstance(partial.cover, frozenset)

    def test_partial_preserved_if_error_carries_one(self, chain_instance):
        # An error constructed *with* a partial keeps it (run() must not
        # overwrite an explicit snapshot with container state).
        from repro.errors import PartialState

        class ExplicitPartial(StreamingSetCoverAlgorithm):
            name = "explicit-partial"

            def _run(self, stream):
                next(iter(stream))
                raise SpaceBudgetExceededError(
                    used=9,
                    budget=1,
                    partial=PartialState(cover=frozenset({0}), edges_consumed=1),
                )

        with pytest.raises(SpaceBudgetExceededError) as excinfo:
            ExplicitPartial().run(stream_of(chain_instance))
        assert excinfo.value.partial.cover == frozenset({0})
