"""The tournament merge: pairing schedule, covers, adaptive τ, wire.

Contracts under test, from ``repro/distributed/chain.py`` and the
``TournamentCoordinator``:

* ``tournament_rounds`` pairs survivors adjacently with a trailing bye,
  uses every link exactly once (W−1 edges in ⌈log₂ W⌉ rounds), and is
  pure bookkeeping shared with the async simulator.
* ``tournament_merge`` produces valid covers/certificates for any party
  count, in both τ modes; adaptive τ defers blind leaf picks (∞ markers
  in ``thresholds``) while the headline ``threshold`` stays finite.
* End-to-end, ``--coordinator tree`` is comm-metered, transport-clean
  (delivered payload words equal charged words — the same parity gate
  the chain has), and carries per-round message maxima in diagnostics.
"""

from __future__ import annotations

import math

import pytest

from repro.distributed import run_distributed
from repro.distributed.chain import (
    chain_merge,
    tournament_merge,
    tournament_rounds,
)
from repro.distributed.transport import make_transport
from repro.errors import ConfigurationError
from repro.generators.planted import planted_partition_instance
from repro.types import make_rng


@pytest.fixture(scope="module")
def instance():
    return planted_partition_instance(60, 240, opt_size=6, seed=5).instance


def random_parties(n, t, seed):
    """Split n elements' singletons-plus-blocks over t parties."""
    rng = make_rng(seed)
    sets = [
        (f"s{j}", {rng.randrange(n) for _ in range(rng.randrange(1, 8))})
        for j in range(3 * t)
    ]
    # Guarantee feasibility: each element appears somewhere.
    for u in range(n):
        sets[u % len(sets)][1].add(u)
    return [sets[i::t] for i in range(t)]


class TestTournamentRounds:
    def test_five_parties_shape(self):
        rounds = tournament_rounds([0, 1, 2, 3, 4])
        assert rounds == [[(0, 1), (2, 3)], [(1, 3)], [(3, 4)]]

    def test_power_of_two_is_log_deep(self):
        rounds = tournament_rounds(list(range(8)))
        assert len(rounds) == 3
        assert [len(r) for r in rounds] == [4, 2, 1]

    @pytest.mark.parametrize("t", [1, 2, 3, 5, 8, 13])
    def test_every_link_used_once_all_parties_absorbed(self, t):
        rounds = tournament_rounds(list(range(t)))
        edges = [pair for r in rounds for pair in r]
        assert len(edges) == t - 1
        assert len(set(edges)) == t - 1
        sources = {src for src, _ in edges}
        assert len(sources) == t - 1  # every party ships at most once
        survivors = set(range(t)) - sources
        assert len(survivors) == 1
        assert len(rounds) == (math.ceil(math.log2(t)) if t > 1 else 0)

    def test_singleton_has_no_rounds(self):
        assert tournament_rounds([7]) == []


class TestTournamentMerge:
    @pytest.mark.parametrize("t", [1, 2, 3, 5, 8, 13])
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_valid_cover_any_party_count(self, t, adaptive):
        n = 50
        outcome = tournament_merge(
            n, random_parties(n, t, seed=t), adaptive=adaptive
        )
        assert set(outcome.certificate) == set(range(n))
        assert len(outcome.cover) == len(set(outcome.cover))
        assert outcome.rounds == (math.ceil(math.log2(t)) if t > 1 else 0)
        assert len(outcome.message_words) == t - 1
        assert len(outcome.edges) == t - 1

    def test_single_party_matches_chain(self):
        n = 50
        parties = random_parties(n, 1, seed=3)
        tree = tournament_merge(n, parties)
        chain = chain_merge(n, parties)
        assert tree.cover == chain.cover
        assert tree.certificate == chain.certificate

    def test_adaptive_recovers_cover_quality(self):
        # Fixed-tau leaves pick blind against the full universe and
        # duplicate coverage; adaptive defers picks until states merge.
        n, t = 100, 16
        parties = random_parties(n, t, seed=9)
        fixed = tournament_merge(n, parties, adaptive=False)
        adaptive = tournament_merge(n, parties, adaptive=True)
        assert adaptive.cover_size < fixed.cover_size

    def test_adaptive_thresholds_defer_leaves(self):
        n, t = 50, 4
        outcome = tournament_merge(
            n, random_parties(n, t, seed=2), adaptive=True
        )
        # Leaves first (deferred = inf), then one tau per internal node.
        assert len(outcome.thresholds) == t + (t - 1)
        assert all(tau == math.inf for tau in outcome.thresholds[:t])
        assert all(math.isfinite(tau) for tau in outcome.thresholds[t:])
        # The headline threshold never leaks an inf into diagnostics.
        assert math.isfinite(outcome.threshold)

    def test_explicit_threshold_and_adaptive_conflict(self):
        with pytest.raises(ConfigurationError):
            tournament_merge(
                10, random_parties(10, 2, seed=0), threshold=2.0, adaptive=True
            )

    def test_round_max_words_bound_message_words(self):
        n, t = 50, 8
        outcome = tournament_merge(n, random_parties(n, t, seed=4))
        assert len(outcome.round_max_words) == outcome.rounds
        assert max(outcome.round_max_words) == outcome.max_message_words
        words_by_round = {}
        for (round_index, _, _), words in zip(
            outcome.edges, outcome.message_words
        ):
            words_by_round.setdefault(round_index, []).append(words)
        for round_index, sizes in words_by_round.items():
            assert outcome.round_max_words[round_index] == max(sizes)


class TestTreeCoordinatorEndToEnd:
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_metered_and_diagnosed(self, instance, adaptive):
        result = run_distributed(
            instance,
            workers=8,
            coordinator="tree",
            adaptive_threshold=adaptive,
            seed=3,
        )
        result.verify(instance)
        diag = result.diagnostics
        assert diag["merge_rounds"] == 3.0
        assert result.comm.num_messages == 7  # the W-1 tree edges
        assert diag["max_message_words"] > 0
        for r in range(3):
            assert diag[f"round_max_words_{r}"] > 0
        assert max(diag[f"round_max_words_{r}"] for r in range(3)) <= (
            diag["max_message_words"]
        )
        assert diag["adaptive_threshold"] == (1.0 if adaptive else 0.0)

    def test_transport_parity_with_inproc(self, instance):
        inproc = run_distributed(
            instance, workers=6, coordinator="tree", seed=7
        )
        loopback = run_distributed(
            instance,
            workers=6,
            coordinator="tree",
            seed=7,
            transport=make_transport("loopback"),
        )
        assert loopback.cover == inproc.cover
        assert loopback.certificate == inproc.certificate
        assert loopback.comm == inproc.comm
        wire = loopback.transport
        assert wire.total_bytes >= 8 * loopback.total_comm_words

    def test_threshold_override_propagates(self, instance):
        loose = run_distributed(
            instance, workers=4, coordinator="tree", seed=2, threshold=1.0
        )
        strict = run_distributed(
            instance, workers=4, coordinator="tree", seed=2, threshold=50.0
        )
        loose.verify(instance)
        strict.verify(instance)
        # tau=50 exceeds every gain: all picks defer to witness patching.
        assert loose.diagnostics["threshold"] == 1.0
        assert strict.diagnostics["threshold"] == 50.0
