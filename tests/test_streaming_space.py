"""Tests for SpaceMeter / SpaceBudget: accounting semantics."""

from __future__ import annotations

import pytest

from repro.errors import SpaceBudgetExceededError
from repro.streaming.space import (
    SpaceBudget,
    SpaceMeter,
    words_for_mapping,
    words_for_set,
)


class TestComponents:
    def test_set_component(self):
        meter = SpaceMeter()
        meter.set_component("a", 10)
        assert meter.current_words == 10

    def test_components_sum(self):
        meter = SpaceMeter()
        meter.set_component("a", 10)
        meter.set_component("b", 5)
        assert meter.current_words == 15

    def test_overwrite_replaces(self):
        meter = SpaceMeter()
        meter.set_component("a", 10)
        meter.set_component("a", 3)
        assert meter.current_words == 3

    def test_component_query(self):
        meter = SpaceMeter()
        meter.set_component("a", 7)
        assert meter.component("a") == 7
        assert meter.component("missing") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().set_component("a", -1)

    def test_add_to_component(self):
        meter = SpaceMeter()
        meter.add_to_component("a", 4)
        meter.add_to_component("a", 3)
        assert meter.component("a") == 7

    def test_add_to_component_negative_floor(self):
        meter = SpaceMeter()
        meter.add_to_component("a", 2)
        with pytest.raises(ValueError):
            meter.add_to_component("a", -3)


class TestPeak:
    def test_peak_tracks_maximum(self):
        meter = SpaceMeter()
        meter.set_component("a", 10)
        meter.set_component("a", 2)
        assert meter.peak_words == 10
        assert meter.current_words == 2

    def test_peak_across_components(self):
        meter = SpaceMeter()
        meter.set_component("a", 5)
        meter.set_component("b", 5)
        meter.set_component("a", 0)
        assert meter.peak_words == 10

    def test_component_peaks_individual(self):
        meter = SpaceMeter()
        meter.set_component("a", 8)
        meter.set_component("a", 1)
        meter.set_component("b", 3)
        report = meter.report()
        assert report.peak_of("a") == 8
        assert report.peak_of("b") == 3
        assert report.peak_of("zzz") == 0

    def test_components_at_peak_snapshot(self):
        meter = SpaceMeter()
        meter.set_component("a", 5)
        meter.set_component("b", 7)  # peak now: a=5, b=7
        meter.set_component("b", 1)
        report = meter.report()
        assert report.components_at_peak == {"a": 5, "b": 7}

    def test_dominant_component(self):
        meter = SpaceMeter()
        meter.set_component("small", 1)
        meter.set_component("big", 100)
        assert meter.report().dominant_component() == "big"

    def test_dominant_component_empty(self):
        assert SpaceMeter().report().dominant_component() is None


class TestAnonymousCharges:
    def test_charge_release(self):
        meter = SpaceMeter()
        meter.charge(10)
        meter.release(4)
        assert meter.current_words == 6

    def test_release_too_much(self):
        meter = SpaceMeter()
        meter.charge(2)
        with pytest.raises(ValueError):
            meter.release(3)

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().charge(-1)

    def test_release_negative_rejected(self):
        with pytest.raises(ValueError):
            SpaceMeter().release(-1)

    def test_anonymous_appears_at_peak(self):
        meter = SpaceMeter()
        meter.charge(9)
        assert meter.report().components_at_peak.get("<anonymous>") == 9


class TestBudget:
    def test_budget_enforced(self):
        meter = SpaceMeter(budget=SpaceBudget(words=5))
        meter.set_component("a", 5)
        with pytest.raises(SpaceBudgetExceededError):
            meter.set_component("a", 6)

    def test_budget_error_details(self):
        meter = SpaceMeter(budget=SpaceBudget(words=5, context="kk run"))
        try:
            meter.charge(7)
        except SpaceBudgetExceededError as error:
            assert error.used == 7
            assert error.budget == 5
            assert "kk run" in str(error)
        else:
            pytest.fail("budget not enforced")

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            SpaceBudget(words=0)


class TestReset:
    def test_reset_clears_everything(self):
        meter = SpaceMeter()
        meter.set_component("a", 10)
        meter.charge(2)
        meter.reset()
        assert meter.current_words == 0
        assert meter.peak_words == 0
        assert meter.report().component_peaks == {}


class TestHelpers:
    def test_words_for_mapping_default(self):
        assert words_for_mapping(3) == 6

    def test_words_for_mapping_custom(self):
        assert words_for_mapping(3, words_per_entry=4) == 12

    def test_words_for_mapping_negative(self):
        with pytest.raises(ValueError):
            words_for_mapping(-1)

    def test_words_for_set(self):
        assert words_for_set(5) == 5

    def test_words_for_set_negative(self):
        with pytest.raises(ValueError):
            words_for_set(-1)
