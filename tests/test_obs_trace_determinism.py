"""Determinism and non-perturbation contracts of the tracing layer.

Two promises, both load-bearing for reproducibility claims:

1. **Traces are seed-deterministic** — the same seed and instance emit
   byte-identical JSONL, run to run and whatever the runner's worker
   count is (the collector merges cells sorted by label).
2. **Tracing never perturbs results** — attaching a recording tracer
   leaves covers, certificates, RNG draws and space reports
   bit-identical to the untraced run.
"""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm, registered_algorithms
from repro.analysis.runner import ExperimentRunner
from repro.cli import main
from repro.core.random_order import RandomOrderAlgorithm
from repro.errors import SpaceBudgetExceededError
from repro.faults.resilient import ResilientAlgorithm
from repro.generators.planted import planted_partition_instance
from repro.obs import events as obs_events
from repro.obs.summary import summarize
from repro.obs.tracer import RecordingTracer, TraceCollector, parse_jsonl
from repro.streaming.orders import RandomOrder, SetGroupedOrder, make_order
from repro.streaming.space import SpaceBudget
from repro.streaming.stream import stream_of


@pytest.fixture
def planted():
    return planted_partition_instance(40, 30, opt_size=4, seed=11).instance


def _traced_run(instance, algorithm_name, seed, order_seed=5):
    order_name = (
        "set-grouped" if algorithm_name == "set-arrival" else "random"
    )
    order = make_order(order_name, seed=order_seed)
    tracer = RecordingTracer()
    algorithm = make_algorithm(
        algorithm_name, instance, seed=seed, tracer=tracer
    )
    result = algorithm.run(stream_of(instance, order))
    tracer.finish()
    return result, tracer


class TestByteIdenticalTraces:
    def test_same_seed_same_jsonl(self, planted):
        _, first = _traced_run(planted, "random-order", seed=3)
        _, second = _traced_run(planted, "random-order", seed=3)
        assert first.to_jsonl() == second.to_jsonl()

    def test_different_seed_different_jsonl(self):
        # Needs an instance large enough that the epoch-0 sampling rate
        # stays below 1 — otherwise every seed admits every set and the
        # traces legitimately coincide.
        big = planted_partition_instance(60, 400, opt_size=6, seed=11).instance
        _, first = _traced_run(big, "random-order", seed=3)
        _, second = _traced_run(big, "random-order", seed=4)
        assert first.to_jsonl() != second.to_jsonl()

    @pytest.mark.parametrize("name", sorted(registered_algorithms()))
    def test_every_algorithm_traces_deterministically(self, planted, name):
        _, first = _traced_run(planted, name, seed=9)
        _, second = _traced_run(planted, name, seed=9)
        assert first.to_jsonl() == second.to_jsonl()
        assert first.open_spans == 0

    def test_runner_jsonl_identical_across_worker_counts(self, planted):
        outputs = []
        for max_workers in (1, 4):
            collector = TraceCollector()
            runner = ExperimentRunner(
                {
                    "kk": lambda s: make_algorithm("kk", planted, seed=s),
                    "first-fit": lambda s: make_algorithm(
                        "first-fit", planted, seed=s
                    ),
                },
                seed=42,
                collector=collector,
            )
            rows = runner.compare(
                planted, "random", replications=2, max_workers=max_workers
            )
            outputs.append((collector.to_jsonl(), rows))
        (jsonl_serial, rows_serial), (jsonl_parallel, rows_parallel) = outputs
        assert jsonl_serial == jsonl_parallel
        assert rows_serial == rows_parallel


class TestTracingDoesNotPerturb:
    @pytest.mark.parametrize("name", sorted(registered_algorithms()))
    def test_traced_equals_untraced(self, planted, name):
        order_name = "set-grouped" if name == "set-arrival" else "random"
        untraced = make_algorithm(name, planted, seed=7)
        baseline = untraced.run(
            stream_of(planted, make_order(order_name, seed=5))
        )
        traced, tracer = _traced_run(planted, name, seed=7)
        assert traced.cover == baseline.cover
        assert traced.certificate == baseline.certificate
        assert traced.space.peak_words == baseline.space.peak_words
        assert traced.space.final_words == baseline.space.final_words
        assert (
            traced.space.components_at_peak == baseline.space.components_at_peak
        )
        assert len(tracer.events) > 0


class TestAlgorithmOneSpans:
    def test_epoch_and_subepoch_spans_present(self, planted):
        tracer = RecordingTracer()
        algorithm = RandomOrderAlgorithm(seed=2)
        algorithm.set_tracer(tracer)
        algorithm.run(stream_of(planted, RandomOrder(seed=2)))
        summary = summarize(tracer.finish())
        assert summary.unbalanced_spans == 0
        assert summary.span_counts.get(obs_events.SPAN_RUN) == 1
        assert summary.span_counts.get(obs_events.SPAN_EPOCH0) == 1
        epochs = summary.span_counts.get(obs_events.SPAN_EPOCH, 0)
        subepochs = summary.span_counts.get(obs_events.SPAN_SUBEPOCH, 0)
        assert epochs >= 1
        assert subepochs >= epochs  # >= 1 subepoch span per epoch span
        assert summary.span_counts.get(obs_events.SPAN_REMAINDER) == 1
        # Every epoch row reports at least one subepoch.
        assert summary.epoch_rows
        for _, _, row_subepochs, _ in summary.epoch_rows:
            assert row_subepochs >= 1

    def test_patch_and_space_events_present(self, planted):
        _, tracer = _traced_run(planted, "random-order", seed=2)
        etypes = {e.etype for e in tracer.events}
        assert obs_events.PATCH_APPLIED in etypes
        assert obs_events.SPACE_SAMPLE in etypes


class TestFailureEvents:
    def test_run_failed_event_on_budget_exhaustion(self, planted):
        tracer = RecordingTracer()
        algorithm = make_algorithm("store-all", planted, seed=0, tracer=tracer)
        algorithm._space_budget = SpaceBudget(words=4)
        with pytest.raises(SpaceBudgetExceededError):
            algorithm.run(stream_of(planted, RandomOrder(seed=0)))
        failures = [
            e for e in tracer.events if e.etype == obs_events.RUN_FAILED
        ]
        assert len(failures) == 1
        assert failures[0].attrs["error"] == "SpaceBudgetExceededError"
        assert tracer.open_spans == 0  # the run span closed on the way out

    def test_degradation_event_from_best_effort_salvage(self, planted):
        tracer = RecordingTracer()
        algorithm = make_algorithm("kk", planted, seed=0, tracer=tracer)
        algorithm._space_budget = SpaceBudget(words=4)
        resilient = ResilientAlgorithm(algorithm, policy="best_effort")
        outcome = resilient.run(stream_of(planted, RandomOrder(seed=0)))
        assert outcome.degradation is not None
        events = {e.etype for e in tracer.events}
        assert obs_events.RUN_FAILED in events
        assert obs_events.DEGRADATION in events


class TestCliTrace:
    def test_trace_writes_deterministic_jsonl(self, tmp_path, capsys):
        from repro.streaming.io import dump_instance

        instance = planted_partition_instance(30, 24, opt_size=3, seed=1)
        path = tmp_path / "instance.txt"
        dump_instance(instance.instance, path)
        outputs = []
        for run in range(2):
            out = tmp_path / f"trace_{run}.jsonl"
            code = main(
                [
                    "trace",
                    str(path),
                    "--algorithm",
                    "random-order",
                    "--seed",
                    "5",
                    "-o",
                    str(out),
                ]
            )
            assert code == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]
        events = parse_jsonl(outputs[0].decode("utf-8"))
        summary = summarize(events)
        assert summary.unbalanced_spans == 0
        captured = capsys.readouterr().out
        assert "trace events" in captured
        assert "spans:" in captured

    def test_trace_without_output_prints_summary(self, tmp_path, capsys):
        from repro.streaming.io import dump_instance

        instance = planted_partition_instance(30, 24, opt_size=3, seed=1)
        path = tmp_path / "instance.txt"
        dump_instance(instance.instance, path)
        assert main(["trace", str(path), "--algorithm", "kk"]) == 0
        assert "events:" in capsys.readouterr().out


class TestChaosCollector:
    def test_quick_chaos_sweep_traces_cells(self):
        from repro.analysis.chaos import run_chaos

        collector = TraceCollector()
        report = run_chaos(seed=0, quick=True, collector=collector)
        report.assert_invariant()
        assert len(collector) > 0
        # Deterministic merged output for the same master seed.
        second = TraceCollector()
        run_chaos(seed=0, quick=True, collector=second)
        assert collector.to_jsonl() == second.to_jsonl()
