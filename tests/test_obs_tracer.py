"""Unit tests for the repro.obs tracing layer.

Covers the tracer protocol itself (spans, events, counters, the no-op
default), the canonical JSONL serialisation with its round-trip and
error reporting, the multi-cell collector, and the summary reducer.
"""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.generators.planted import planted_partition_instance
from repro.obs import events as obs_events
from repro.obs.summary import summarize
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceCollector,
    event_to_json,
    events_to_jsonl,
    parse_jsonl,
    parse_jsonl_cells,
    read_trace,
    write_trace,
)


class TestNullTracer:
    def test_disabled(self):
        assert NullTracer().enabled is False
        assert NULL_TRACER.enabled is False

    def test_span_is_reusable_noop(self):
        tracer = NullTracer()
        with tracer.span(obs_events.SPAN_RUN, algorithm="x"):
            with tracer.span(obs_events.SPAN_EPOCH):
                tracer.event(obs_events.SET_ADMITTED, set_id=1)
                tracer.count(obs_events.COIN_FLIP)
        # Nothing recorded anywhere, and no attribute to leak state into.
        assert not hasattr(tracer, "events")

    def test_null_span_swallows_exceptions_like_any_cm(self):
        tracer = NullTracer()
        with pytest.raises(RuntimeError):
            with tracer.span(obs_events.SPAN_RUN):
                raise RuntimeError("propagates")


class TestRecordingTracer:
    def test_span_begin_end_pairing(self):
        tracer = RecordingTracer()
        with tracer.span(obs_events.SPAN_RUN, algorithm="kk"):
            with tracer.span(obs_events.SPAN_EPOCH, epoch_index=1):
                pass
        tracer.finish()
        types = [e.etype for e in tracer.events]
        assert types == [
            obs_events.SPAN_BEGIN,
            obs_events.SPAN_BEGIN,
            obs_events.SPAN_END,
            obs_events.SPAN_END,
        ]
        run_begin, epoch_begin, epoch_end, run_end = tracer.events
        assert run_begin.kind == obs_events.SPAN_RUN
        assert epoch_begin.span == run_begin.seq
        assert epoch_end.attrs["begin"] == epoch_begin.seq
        assert run_end.attrs["begin"] == run_begin.seq

    def test_sequence_numbers_dense_from_zero(self):
        tracer = RecordingTracer()
        with tracer.span(obs_events.SPAN_RUN):
            tracer.event(obs_events.SET_ADMITTED, set_id=3)
        assert [e.seq for e in tracer.events] == list(range(len(tracer.events)))

    def test_unknown_span_kind_rejected(self):
        tracer = RecordingTracer()
        with pytest.raises(ValueError, match="span kind"):
            tracer.span("not-a-kind")

    def test_unknown_event_type_rejected(self):
        tracer = RecordingTracer()
        with pytest.raises(ValueError, match="event type"):
            tracer.event("not-an-event")

    def test_span_delimiters_not_emittable_directly(self):
        tracer = RecordingTracer()
        for etype in (obs_events.SPAN_BEGIN, obs_events.SPAN_END):
            with pytest.raises(ValueError):
                tracer.event(etype)

    def test_counters_flush_into_span_end(self):
        tracer = RecordingTracer()
        with tracer.span(obs_events.SPAN_EPOCH):
            tracer.count(obs_events.COIN_FLIP)
            tracer.count(obs_events.COIN_FLIP)
            tracer.count(obs_events.ELEMENT_COVERED, 5)
        end = tracer.events[-1]
        assert end.etype == obs_events.SPAN_END
        assert end.attrs[obs_events.COIN_FLIP] == 2
        assert end.attrs[obs_events.ELEMENT_COVERED] == 5

    def test_counters_scoped_to_innermost_span(self):
        tracer = RecordingTracer()
        with tracer.span(obs_events.SPAN_RUN):
            tracer.count(obs_events.COIN_FLIP)  # run-level
            with tracer.span(obs_events.SPAN_EPOCH):
                tracer.count(obs_events.COIN_FLIP, 10)  # epoch-level
        epoch_end, run_end = tracer.events[-2], tracer.events[-1]
        assert epoch_end.attrs[obs_events.COIN_FLIP] == 10
        assert run_end.attrs[obs_events.COIN_FLIP] == 1

    def test_root_counters_flush_on_finish(self):
        tracer = RecordingTracer()
        tracer.count("coin_flip", 7)
        tracer.finish()
        trailing = tracer.events[-1]
        assert trailing.etype == obs_events.COUNTER
        assert trailing.attrs["coin_flip"] == 7
        before = len(tracer.events)
        tracer.finish()  # idempotent
        assert len(tracer.events) == before

    def test_open_spans_visible(self):
        tracer = RecordingTracer()
        cm = tracer.span(obs_events.SPAN_RUN)
        cm.__enter__()
        assert tracer.open_spans == 1
        cm.__exit__(None, None, None)
        assert tracer.open_spans == 0

    def test_span_closes_on_exception(self):
        tracer = RecordingTracer()
        with pytest.raises(RuntimeError):
            with tracer.span(obs_events.SPAN_RUN):
                raise RuntimeError("boom")
        assert tracer.open_spans == 0
        assert tracer.events[-1].etype == obs_events.SPAN_END


class TestJsonl:
    def _sample(self):
        tracer = RecordingTracer()
        with tracer.span(obs_events.SPAN_RUN, algorithm="kk", stream_length=9):
            tracer.event(
                obs_events.SET_ADMITTED, set_id=2, probability=0.25
            )
            tracer.count(obs_events.COIN_FLIP, 3)
        tracer.finish()
        return tracer.events

    def test_round_trip(self):
        events = self._sample()
        parsed = parse_jsonl(events_to_jsonl(events))
        assert parsed == list(events)

    def test_canonical_form_sorted_compact(self):
        import json

        line = event_to_json(self._sample()[0])
        # Canonical == its own re-serialisation with sorted keys and no
        # whitespace; byte-identity of traces rests on this.
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )

    def test_bad_json_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_jsonl(event_to_json(self._sample()[0]) + "\n{not json")

    def test_missing_key_reports_line_number(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_jsonl('{"seq": 0}')

    def test_file_round_trip(self, tmp_path):
        events = self._sample()
        path = tmp_path / "trace.jsonl"
        write_trace(path, events)
        assert read_trace(path) == list(events)


class TestTraceCollector:
    def test_labels_sorted_regardless_of_registration_order(self):
        collector = TraceCollector()
        for label in ("b-cell", "a-cell", "c-cell"):
            with collector.tracer_for(label).span(obs_events.SPAN_RUN):
                pass
        assert collector.labels() == ["a-cell", "b-cell", "c-cell"]
        jsonl = collector.to_jsonl()
        cells = [line.split('"cell":"')[1].split('"')[0]
                 for line in jsonl.splitlines()]
        assert cells == sorted(cells)

    def test_tracer_for_replaces_prior_cell(self):
        collector = TraceCollector()
        first = collector.tracer_for("cell")
        first.event(obs_events.SET_ADMITTED, set_id=1)
        second = collector.tracer_for("cell")
        second.event(obs_events.SET_ADMITTED, set_id=2)
        events = collector.events_for("cell")
        payload = [e for e in events if e.etype == obs_events.SET_ADMITTED]
        assert [e.attrs["set_id"] for e in payload] == [2]

    def test_parse_jsonl_cells_round_trip(self):
        collector = TraceCollector()
        with collector.tracer_for("x").span(obs_events.SPAN_RUN):
            pass
        cells = parse_jsonl_cells(collector.to_jsonl())
        assert set(cells) == {"x"}
        assert len(collector) == 1

    def test_adopt_matches_in_process_recording(self):
        """An adopted cell serializes byte-identically to a live tracer.

        This is the cross-process merge contract the process backend
        relies on: a worker records in its own process, ships the
        finished events, and the parent's merged JSONL must not reveal
        which side of the fork recorded them.
        """

        def record():
            tracer = RecordingTracer()
            with tracer.span(obs_events.SPAN_RUN):
                tracer.event(obs_events.SET_ADMITTED, set_id=3)
            return tracer

        live = TraceCollector()
        in_process = live.tracer_for("shard[000]")
        with in_process.span(obs_events.SPAN_RUN):
            in_process.event(obs_events.SET_ADMITTED, set_id=3)

        adopted = TraceCollector()
        adopted.adopt("shard[000]", record().events)
        assert adopted.to_jsonl() == live.to_jsonl()

    def test_adopt_jsonl_round_trips(self):
        tracer = RecordingTracer()
        with tracer.span(obs_events.SPAN_RUN):
            tracer.event(obs_events.SET_ADMITTED, set_id=9)
        shipped = tracer.to_jsonl()

        collector = TraceCollector()
        collector.adopt_jsonl("cell", shipped)
        assert collector.labels() == ["cell"]
        assert collector.events_for("cell") == tracer.events
        # Adopted cells merge with live ones, sorted by label.
        with collector.tracer_for("a-live").span(obs_events.SPAN_RUN):
            pass
        merged = collector.to_jsonl()
        cells = [
            line.split('"cell":"')[1].split('"')[0]
            for line in merged.splitlines()
        ]
        assert cells == sorted(cells)

    def test_adopt_replaces_prior_cell(self):
        collector = TraceCollector()
        collector.tracer_for("cell").event(obs_events.SET_ADMITTED, set_id=1)
        tracer = RecordingTracer()
        tracer.event(obs_events.SET_ADMITTED, set_id=2)
        collector.adopt("cell", tracer.events)
        events = [
            e
            for e in collector.events_for("cell")
            if e.etype == obs_events.SET_ADMITTED
        ]
        assert [e.attrs["set_id"] for e in events] == [2]


class TestSummarize:
    def test_epoch_rows_and_counts(self):
        tracer = RecordingTracer()
        with tracer.span(obs_events.SPAN_RUN, algorithm="random-order"):
            with tracer.span(
                obs_events.SPAN_ALGORITHM, algorithm_index=1
            ):
                with tracer.span(
                    obs_events.SPAN_EPOCH, algorithm_index=1, epoch_index=1
                ):
                    with tracer.span(obs_events.SPAN_SUBEPOCH, batch_index=0):
                        tracer.count(obs_events.COIN_FLIP, 4)
                    with tracer.span(obs_events.SPAN_SUBEPOCH, batch_index=1):
                        tracer.count(obs_events.COIN_FLIP, 2)
        tracer.finish()
        summary = summarize(tracer.events)
        assert summary.unbalanced_spans == 0
        assert summary.max_depth == 4
        assert summary.span_counts[obs_events.SPAN_SUBEPOCH] == 2
        assert summary.counter_totals[obs_events.COIN_FLIP] == 6
        assert summary.epoch_rows == [(1, 1, 2, {obs_events.COIN_FLIP: 6})]
        assert "A(1) epoch 1: 2 subepoch(s)" in summary.render()

    def test_unbalanced_spans_detected(self):
        tracer = RecordingTracer()
        tracer.span(obs_events.SPAN_RUN).__enter__()
        summary = summarize(tracer.events)
        assert summary.unbalanced_spans == 1


class TestMakeAlgorithmTracer:
    def test_tracer_kwarg_attaches(self):
        instance = planted_partition_instance(20, 12, opt_size=3, seed=0).instance
        tracer = RecordingTracer()
        algorithm = make_algorithm("kk", instance, seed=1, tracer=tracer)
        assert algorithm.tracer is tracer

    def test_default_is_null(self):
        instance = planted_partition_instance(20, 12, opt_size=3, seed=0).instance
        algorithm = make_algorithm("kk", instance, seed=1)
        assert algorithm.tracer is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        instance = planted_partition_instance(20, 12, opt_size=3, seed=0).instance
        algorithm = make_algorithm(
            "kk", instance, seed=1, tracer=RecordingTracer()
        )
        algorithm.set_tracer(None)
        assert algorithm.tracer is NULL_TRACER


# -- collector merge properties (hypothesis) -------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.obs.events import TraceEvent  # noqa: E402


@st.composite
def labelled_cells(draw):
    """A few trace cells: label -> short list of simple events."""
    labels = draw(
        st.lists(
            st.text(
                alphabet="abcdefgh0123456789",
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    cells = {}
    for label in labels:
        values = draw(
            st.lists(st.integers(0, 50), min_size=0, max_size=6)
        )
        cells[label] = [
            TraceEvent(
                seq=i,
                span=-1,
                etype=obs_events.SET_ADMITTED,
                attrs={"set_id": value},
            )
            for i, value in enumerate(values)
        ]
    return cells


class TestCollectorMergeProperties:
    """Adoption is a set-of-cells operation, not a sequence of arrivals.

    The distributed layer re-delivers and reorders shard traces at
    will (duplicate envelopes, adversarial schedules); the collector's
    merged JSONL must depend only on the final cell contents — adopt is
    idempotent, order-independent, and equal across the events/JSONL
    entry points.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        cells=labelled_cells(),
        order_seed=st.integers(0, 2**31),
        duplicates=st.booleans(),
    )
    def test_adopt_is_idempotent_and_order_independent(
        self, cells, order_seed, duplicates
    ):
        import random

        reference = TraceCollector()
        for label in sorted(cells):
            reference.adopt(label, cells[label])

        shuffled = TraceCollector()
        order = list(cells)
        random.Random(order_seed).shuffle(order)
        for label in order:
            shuffled.adopt(label, cells[label])
            if duplicates:
                # A re-delivered cell replaces itself: same bytes out.
                shuffled.adopt(label, cells[label])
        assert shuffled.to_jsonl() == reference.to_jsonl()

    @settings(max_examples=60, deadline=None)
    @given(cells=labelled_cells())
    def test_adopt_jsonl_matches_adopt(self, cells):
        from_events = TraceCollector()
        from_text = TraceCollector()
        for label, events in cells.items():
            from_events.adopt(label, events)
            from_text.adopt_jsonl(label, events_to_jsonl(events))
        assert from_text.to_jsonl() == from_events.to_jsonl()
