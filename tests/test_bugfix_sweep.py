"""Regression tests for the determinism bugfix sweep.

Four small fixes, each with the failure mode it prevents pinned down:
tie-broken dominant components, finite-only coin probabilities,
ceiling-rounded shuffle windows, and bounded non-colliding retry seeds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.runner import derive_retry_seed
from repro.core.kk import KKAlgorithm
from repro.streaming.orders import LocallyShuffledOrder, check_permutation
from repro.streaming.space import SpaceReport
from repro.types import Edge


class TestDominantComponentTieBreak:
    def test_tie_independent_of_insertion_order(self):
        forward = SpaceReport(
            peak_words=10,
            final_words=10,
            components_at_peak={"alpha": 5, "beta": 5},
        )
        backward = SpaceReport(
            peak_words=10,
            final_words=10,
            components_at_peak={"beta": 5, "alpha": 5},
        )
        assert forward.dominant_component() == backward.dominant_component()
        # The deterministic (size, name) key picks the lexicographic
        # minimum — the same tie-break CommReport.busiest_link uses.
        assert forward.dominant_component() == "alpha"

    def test_strict_max_still_wins(self):
        report = SpaceReport(
            peak_words=9,
            final_words=9,
            components_at_peak={"zzz": 2, "aaa": 7},
        )
        assert report.dominant_component() == "aaa"

    def test_empty_is_none(self):
        assert SpaceReport(peak_words=0, final_words=0).dominant_component() is None


class TestCoinRejectsNonFinite:
    @pytest.mark.parametrize(
        "probability", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_raises(self, probability):
        algorithm = KKAlgorithm(seed=0)
        with pytest.raises(ValueError, match="finite"):
            algorithm._coin(probability)

    def test_boundaries_still_deterministic(self):
        algorithm = KKAlgorithm(seed=0)
        assert algorithm._coin(1.0) is True
        assert algorithm._coin(1.5) is True
        assert algorithm._coin(0.0) is False
        assert algorithm._coin(-0.5) is False

    def test_interior_probability_draws(self):
        algorithm = KKAlgorithm(seed=0)
        draws = {algorithm._coin(0.5) for _ in range(64)}
        assert draws == {True, False}


class TestLocallyShuffledWindow:
    def _edges(self, count=10):
        return [Edge(i, i % 3) for i in range(count)]

    def test_small_positive_randomness_perturbs_short_stream(self):
        # With floor rounding, randomness=0.11 on 10 edges collapsed to
        # window 1 — a no-op shuffle for *every* seed.  Ceiling gives
        # window 2, so some seed must transpose at least one pair.
        edges = self._edges(10)
        baselines = [
            LocallyShuffledOrder(0.0, seed=seed).apply(edges)
            for seed in range(10)
        ]
        shuffled = [
            LocallyShuffledOrder(0.11, seed=seed).apply(edges)
            for seed in range(10)
        ]
        assert any(a != b for a, b in zip(baselines, shuffled))

    def test_output_is_a_permutation(self):
        edges = self._edges(10)
        for randomness in (0.11, 0.5, 1.0):
            out = LocallyShuffledOrder(randomness, seed=3).apply(edges)
            check_permutation(edges, out)

    def test_zero_randomness_is_pure_base(self):
        edges = self._edges(10)
        assert LocallyShuffledOrder(0.0, seed=7).apply(
            edges
        ) == LocallyShuffledOrder(0.0, seed=7).apply(edges)


class TestDeriveRetrySeed:
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        attempt=st.integers(min_value=0, max_value=16),
    )
    def test_derived_seed_in_range(self, seed, attempt):
        derived = derive_retry_seed(seed, attempt)
        assert 0 <= derived < 2**63

    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_first_retry_reuses_spec_seed(self, seed):
        assert derive_retry_seed(seed, 0) == seed
        assert derive_retry_seed(seed, 1) == seed

    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        attempt=st.integers(min_value=2, max_value=16),
    )
    def test_later_retries_differ_from_spec_seed(self, seed, attempt):
        assert derive_retry_seed(seed, attempt) != seed

    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_later_retries_differ_across_attempts(self, seed):
        derived = [derive_retry_seed(seed, attempt) for attempt in (2, 3, 4, 5)]
        assert len(set(derived)) == len(derived)

    def test_deterministic(self):
        assert derive_retry_seed(12345, 3) == derive_retry_seed(12345, 3)

    def test_zero_seed_attempt_without_mixing_still_differs(self):
        # seed=0, attempt whose remix happens to land on 0 must be bumped
        # by the collision guard, never returned as-is.
        for attempt in range(2, 64):
            assert derive_retry_seed(0, attempt) != 0
