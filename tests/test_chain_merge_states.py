"""Chain-merge edge semantics: repeated keys, partial mode, snapshots.

Two under-tested corners of :func:`repro.distributed.chain.chain_merge`:

* **Repeated keys across parties** — under by-element or hash sharding
  the same set key appears at several parties with partial membership
  views; each party acts on its own view, the certificate is built from
  the union, and the output cover never lists a key twice.
* **Captured states** — with ``capture_states=True`` every hand-off's
  snapshot must recount to *exactly* the words the hop was charged:
  ``state_words`` over the snapshot equals ``message_words[i]``, the
  invariant the transport layer relies on when it ships the state as
  real bytes.
"""

from __future__ import annotations

import pytest

from repro.distributed.chain import (
    chain_merge,
    state_words,
    tournament_merge,
)
from repro.errors import ProtocolError


def repeated_key_parties():
    """Three parties sharing keys: ``"a"`` at all three with disjoint
    views, ``"b"`` at two, ``"c"`` at one.  Universe 0..8; element 9
    (when ``n=10``) is held by nobody."""
    return [
        [("a", {0, 1}), ("b", {2, 3})],
        [("a", {4, 5}), ("c", {6, 7})],
        [("a", {8}), ("b", {3})],
    ]


class TestRepeatedKeys:
    def test_cover_deduplicates_repeated_keys(self):
        outcome = chain_merge(9, repeated_key_parties(), threshold=1.0)
        assert len(outcome.cover) == len(set(outcome.cover))
        assert set(outcome.certificate) == set(range(9))
        # The certificate may use any view of a repeated key, but every
        # certified element must come from some party's view of it.
        all_views = {}
        for share in repeated_key_parties():
            for key, members in share:
                all_views.setdefault(key, set()).update(members)
        for element, key in outcome.certificate.items():
            assert element in all_views[key]

    def test_partial_leaves_unheld_elements_uncovered(self):
        outcome = chain_merge(
            10, repeated_key_parties(), threshold=1.0, partial=True
        )
        assert outcome.uncovered == (9,)
        assert 9 not in outcome.certificate
        assert set(outcome.certificate) == set(range(9))

    def test_without_partial_unheld_element_raises(self):
        with pytest.raises(ProtocolError):
            chain_merge(10, repeated_key_parties(), threshold=1.0)

    def test_tournament_partial_matches_chain_uncovered(self):
        chain = chain_merge(
            10, repeated_key_parties(), threshold=1.0, partial=True
        )
        tree = tournament_merge(
            10, repeated_key_parties(), threshold=1.0, partial=True
        )
        assert tree.uncovered == chain.uncovered == (9,)
        assert set(tree.certificate) == set(range(9))


class TestCapturedStates:
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_chain_snapshots_recount_to_charged_words(self, adaptive):
        outcome = chain_merge(
            9,
            repeated_key_parties(),
            capture_states=True,
            adaptive=adaptive,
        )
        assert len(outcome.forwarded_states) == len(outcome.message_words)
        assert len(outcome.message_words) == 2  # t - 1 hops
        for i, (uncovered, witnesses, chosen) in enumerate(
            outcome.forwarded_states
        ):
            recounted = state_words(
                set(uncovered), dict(witnesses), list(chosen)
            )
            assert recounted == outcome.message_words[i]

    @pytest.mark.parametrize("adaptive", [False, True])
    def test_tournament_snapshots_recount_to_charged_words(self, adaptive):
        outcome = tournament_merge(
            9,
            repeated_key_parties(),
            capture_states=True,
            adaptive=adaptive,
        )
        assert len(outcome.forwarded_states) == len(outcome.message_words)
        assert len(outcome.message_words) == 2  # t - 1 edges
        for i, (uncovered, witnesses, chosen) in enumerate(
            outcome.forwarded_states
        ):
            recounted = state_words(
                set(uncovered), dict(witnesses), list(chosen)
            )
            assert recounted == outcome.message_words[i]

    def test_snapshots_off_by_default(self):
        outcome = chain_merge(9, repeated_key_parties())
        assert outcome.forwarded_states == ()

    def test_monotone_uncovered_along_the_chain(self):
        outcome = chain_merge(
            9, repeated_key_parties(), capture_states=True
        )
        snapshots = [set(u) for u, _, _ in outcome.forwarded_states]
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert later <= earlier
