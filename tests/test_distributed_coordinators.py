"""Tests for the merge coordinators and the end-to-end executor.

The load-bearing test is chain-vs-protocol parity: a by-set distributed
run with the chain coordinator must reproduce
:func:`run_simple_protocol`'s cover size and ``max_message_words``
*exactly* — including on the Lemma-1 lower-bound family instances the
acceptance criteria name.
"""

from __future__ import annotations

import pytest

from repro.distributed import (
    CommBudget,
    make_coordinator,
    registered_coordinators,
    run_distributed,
)
from repro.distributed.router import STRATEGIES
from repro.errors import (
    CommBudgetError,
    ConfigurationError,
    InvalidCoverError,
    ProtocolError,
)
from repro.generators.planted import planted_partition_instance
from repro.lowerbound.family import build_family
from repro.lowerbound.simple_protocol import (
    run_simple_protocol,
    split_instance_among_parties,
)
from repro.streaming.instance import SetCoverInstance


@pytest.fixture
def instance():
    return planted_partition_instance(48, 36, opt_size=6, seed=2).instance


def lb_family_instance(n=64, m=10, t=4, seed=0):
    """A set-cover instance over a Lemma-1 family plus one patch set.

    The complement of T_0 is appended so the instance is feasible —
    the same shape the lower-bound experiments use.
    """
    family = build_family(n, m, t, seed=seed)
    sets = [family.full_set(i) for i in range(family.m)]
    sets.append(family.complement(0))
    return SetCoverInstance(n, sets, name=f"lb-family(n={n},m={m},t={t})")


class TestRegistry:
    def test_four_coordinators(self):
        assert registered_coordinators() == ["chain", "greedy", "tree", "union"]

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_coordinator("quorum")

    def test_threshold_only_for_protocol_merges(self):
        make_coordinator("chain", threshold=3.0)
        make_coordinator("tree", threshold=3.0)
        for name in ("union", "greedy"):
            with pytest.raises(ConfigurationError, match="--threshold"):
                make_coordinator(name, threshold=3.0)

    def test_options_object_equivalent_to_kwarg(self):
        from repro.distributed import CoordinatorOptions

        via_options = make_coordinator(
            "chain", CoordinatorOptions(threshold=3.0)
        )
        via_kwarg = make_coordinator("chain", threshold=3.0)
        assert via_options.threshold == via_kwarg.threshold == 3.0

    def test_adaptive_threshold_mutually_exclusive(self):
        from repro.distributed import CoordinatorOptions

        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            make_coordinator(
                "chain",
                CoordinatorOptions(threshold=3.0, adaptive_threshold=True),
            )

    def test_adaptive_threshold_rejected_by_flag_name(self):
        from repro.distributed import CoordinatorOptions

        with pytest.raises(ConfigurationError, match="--adaptive-threshold"):
            make_coordinator(
                "union", CoordinatorOptions(adaptive_threshold=True)
            )

    def test_options_and_legacy_kwarg_conflict(self):
        from repro.distributed import CoordinatorOptions

        with pytest.raises(ConfigurationError):
            make_coordinator(
                "chain", CoordinatorOptions(threshold=3.0), threshold=3.0
            )


class TestAllCoordinatorsProduceValidCovers:
    @pytest.mark.parametrize("coordinator", ["union", "greedy", "chain", "tree"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_valid_cover(self, instance, coordinator, strategy):
        result = run_distributed(
            instance,
            workers=3,
            algorithm="kk",
            strategy=strategy,
            coordinator=coordinator,
            seed=4,
        )
        result.verify(instance)
        assert result.is_valid(instance)
        assert result.cover_size >= 1

    @pytest.mark.parametrize("coordinator", ["union", "greedy", "chain", "tree"])
    def test_single_worker(self, instance, coordinator):
        result = run_distributed(
            instance, workers=1, coordinator=coordinator, seed=0
        )
        result.verify(instance)

    def test_more_workers_than_sets(self, instance):
        result = run_distributed(
            instance, workers=instance.m + 4, coordinator="chain", seed=1
        )
        result.verify(instance)

    def test_comm_report_populated(self, instance):
        result = run_distributed(
            instance, workers=3, coordinator="union", seed=4
        )
        assert result.total_comm_words > 0
        assert result.max_message_words > 0
        assert result.comm.num_messages == 3
        assert len(result.shards) == 3

    def test_greedy_no_larger_than_union(self, instance):
        union = run_distributed(
            instance, workers=4, coordinator="union", seed=6
        )
        greedy = run_distributed(
            instance, workers=4, coordinator="greedy", seed=6
        )
        assert greedy.cover_size <= union.cover_size


class TestChainProtocolParity:
    """Chain merge over by-set shards == the t-party simple protocol."""

    def _assert_parity(self, instance, workers, seed):
        result = run_distributed(
            instance,
            workers=workers,
            algorithm="kk",
            strategy="by-set",
            coordinator="chain",
            seed=seed,
        )
        result.verify(instance)
        parties = split_instance_among_parties(instance, workers, seed=seed)
        protocol = run_simple_protocol(instance.n, parties)
        assert result.cover_size == protocol.cover_size
        assert result.max_message_words == protocol.max_message_words

    @pytest.mark.parametrize("workers", [2, 3, 4, 8])
    def test_planted(self, instance, workers):
        self._assert_parity(instance, workers, seed=11)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_lb_family(self, seed, workers):
        self._assert_parity(lb_family_instance(seed=seed), workers, seed=seed)

    def test_threshold_override_propagates(self, instance):
        result = run_distributed(
            instance, workers=3, coordinator="chain", seed=5, threshold=2.0
        )
        parties = split_instance_among_parties(instance, 3, seed=5)
        protocol = run_simple_protocol(instance.n, parties, threshold=2.0)
        assert result.cover_size == protocol.cover_size
        assert result.max_message_words == protocol.max_message_words


class TestBudgetsAndFailures:
    def test_comm_budget_enforced(self, instance):
        generous = run_distributed(
            instance, workers=3, coordinator="chain", seed=4
        )
        with pytest.raises(CommBudgetError):
            run_distributed(
                instance,
                workers=3,
                coordinator="chain",
                seed=4,
                comm_budget=CommBudget(generous.total_comm_words // 2),
            )

    def test_generous_budget_passes(self, instance):
        reference = run_distributed(
            instance, workers=3, coordinator="chain", seed=4
        )
        budgeted = run_distributed(
            instance,
            workers=3,
            coordinator="chain",
            seed=4,
            comm_budget=CommBudget(reference.total_comm_words),
        )
        assert budgeted.cover == reference.cover

    def test_chain_infeasible_instance_raises_protocol_error(self):
        # Element 3 is in no set: routing succeeds, the chain's last
        # party has no witness to patch with.
        bad = SetCoverInstance(4, [{0, 1}, {2}])
        with pytest.raises(ProtocolError):
            run_distributed(bad, workers=2, coordinator="chain", seed=0)

    def test_greedy_stall_is_typed(self):
        # Shard covers that do not jointly cover the universe make the
        # greedy merge stall; it must raise InvalidCoverError, not loop.
        from repro.distributed.comm import CommMeter as Meter
        from repro.distributed.coordinator import GreedyCoordinator
        from repro.distributed.worker import ShardOutput

        instance = SetCoverInstance(3, [{0, 1, 2}])
        outputs = [
            ShardOutput(
                index=0,
                cover=frozenset({0}),
                certificate={0: 0, 1: 0},
                members_by_set={0: frozenset({0, 1})},  # element 2 unseen
                set_order=(0,),
            )
        ]
        with pytest.raises(InvalidCoverError):
            GreedyCoordinator().merge(instance, None, outputs, Meter())

    def test_invalid_worker_counts(self, instance):
        with pytest.raises(ConfigurationError):
            run_distributed(instance, workers=0)
        with pytest.raises(ConfigurationError):
            run_distributed(instance, workers=2, max_workers=0)


class TestFaultsCompose:
    def test_per_shard_faults_run_and_report(self, instance):
        from repro.faults.injectors import FaultSpec

        result = run_distributed(
            instance,
            workers=3,
            coordinator="union",
            seed=4,
            faults=[FaultSpec(kind="duplicate", rate=0.2, seed=1)],
        )
        result.verify(instance)
        assert all(r.injection is not None for r in result.shards)
        touched = sum(
            sum(r.injection.counts.values()) for r in result.shards
        )
        assert touched > 0

    def test_fault_free_runs_unchanged_by_fault_machinery(self, instance):
        # Pre-drawing fault seeds must not shift algorithm seeds: a run
        # with an empty fault list equals a run with faults=None.
        plain = run_distributed(instance, workers=3, seed=9)
        empty = run_distributed(instance, workers=3, seed=9, faults=[])
        assert plain == empty

    def test_corrupt_faults_never_crash(self, instance):
        from repro.faults.injectors import FaultSpec

        result = run_distributed(
            instance,
            workers=3,
            coordinator="union",
            seed=4,
            faults=[FaultSpec(kind="corrupt", rate=0.3, seed=2)],
        )
        # A corrupted stream may degrade the cover; it must not raise
        # on the way there, and the report must count what was dropped.
        assert result.workers == 3
