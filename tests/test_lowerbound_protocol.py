"""Tests for the one-way protocol simulator and boundary probing."""

from __future__ import annotations

import pytest

from repro.core.kk import KKAlgorithm
from repro.errors import ProtocolError
from repro.lowerbound.protocol import (
    Message,
    OneWayChain,
    run_partitioned_stream,
)
from repro.streaming.instance import SetCoverInstance
from repro.types import Edge


class TestMessage:
    def test_words_recorded(self):
        assert Message(payload="x", words=5).words == 5

    def test_rejects_negative_words(self):
        with pytest.raises(ProtocolError):
            Message(payload="x", words=-1)


class TestOneWayChain:
    def test_sequential_execution(self):
        transcript = []

        def party(index):
            def fn(incoming, party_input):
                received = incoming.payload if incoming else 0
                transcript.append((index, received))
                return Message(payload=received + party_input, words=1)

            return fn

        chain = OneWayChain([party(0), party(1), party(2)])
        result = chain.execute([10, 20, 30])
        assert result.output == 60
        assert transcript == [(0, 0), (1, 10), (2, 30)]

    def test_message_sizes_exclude_output(self):
        def fn(incoming, party_input):
            return Message(payload=None, words=party_input)

        chain = OneWayChain([fn, fn, fn])
        result = chain.execute([5, 7, 100])
        assert result.message_words == [5, 7]
        assert result.max_message_words == 7

    def test_rejects_single_party(self):
        with pytest.raises(ProtocolError):
            OneWayChain([lambda i, x: Message(payload=None, words=0)])

    def test_rejects_input_count_mismatch(self):
        def fn(incoming, party_input):
            return Message(payload=None, words=0)

        with pytest.raises(ProtocolError):
            OneWayChain([fn, fn]).execute([1, 2, 3])

    def test_rejects_non_message_return(self):
        def bad(incoming, party_input):
            return "not a message"

        def good(incoming, party_input):
            return Message(payload=None, words=0)

        with pytest.raises(ProtocolError):
            OneWayChain([bad, good]).execute([1, 2])


class TestRunPartitionedStream:
    @pytest.fixture
    def instance(self):
        return SetCoverInstance(4, [{0, 1}, {1, 2}, {2, 3}, {0, 3}])

    def test_boundary_count(self, instance):
        edges = list(instance.edges())
        parties = [edges[:3], edges[3:6], edges[6:]]
        result, messages = run_partitioned_stream(
            KKAlgorithm(seed=1), instance, parties
        )
        assert len(messages) == 2
        result.verify(instance)

    def test_messages_positive_after_state_builds(self, instance):
        edges = list(instance.edges())
        parties = [edges[:4], edges[4:]]
        _result, messages = run_partitioned_stream(
            KKAlgorithm(seed=2), instance, parties
        )
        assert messages[0] > 0

    def test_messages_monotone_for_kk(self, instance):
        # KK state (counters + first sets) only grows.
        edges = list(instance.edges())
        parties = [edges[:2], edges[2:5], edges[5:]]
        _result, messages = run_partitioned_stream(
            KKAlgorithm(seed=3), instance, parties
        )
        assert messages == sorted(messages)

    def test_empty_middle_party_allowed(self, instance):
        edges = list(instance.edges())
        parties = [edges[:4], [], edges[4:]]
        _result, messages = run_partitioned_stream(
            KKAlgorithm(seed=4), instance, parties
        )
        assert len(messages) == 2
        assert messages[0] == messages[1]  # no edges between boundaries

    def test_rejects_single_party(self, instance):
        with pytest.raises(ProtocolError):
            run_partitioned_stream(
                KKAlgorithm(seed=5), instance, [list(instance.edges())]
            )

    def test_result_matches_plain_run(self, instance):
        from repro.streaming.stream import EdgeStream

        edges = list(instance.edges())
        parties = [edges[: len(edges) // 2], edges[len(edges) // 2 :]]
        protocol_result, _ = run_partitioned_stream(
            KKAlgorithm(seed=6), instance, parties
        )
        plain = KKAlgorithm(seed=6).run(EdgeStream(instance, edges))
        assert protocol_result.cover == plain.cover
