"""Tests for the element-sampling algorithm (Table 1 row 1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.element_sampling import (
    ElementSamplingAlgorithm,
    _greedy_picks,
    _greedy_picks_reference,
)
from repro.errors import ConfigurationError
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.streaming.orders import RandomOrder, RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream, stream_of


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_cover(self, seed):
        instance = fixed_size_instance(60, 200, set_size=8, seed=seed)
        result = ElementSamplingAlgorithm(alpha=10, seed=seed).run(
            stream_of(instance, RandomOrder(seed=seed))
        )
        result.verify(instance)

    def test_valid_on_adversarial_order(self):
        instance = fixed_size_instance(60, 200, set_size=8, seed=3)
        result = ElementSamplingAlgorithm(alpha=10, seed=3).run(
            stream_of(instance, RoundRobinInterleaveOrder(seed=3))
        )
        result.verify(instance)

    def test_tiny_instance(self, tiny_instance):
        result = ElementSamplingAlgorithm(alpha=2, seed=4).run(
            stream_of(tiny_instance)
        )
        result.verify(tiny_instance)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            ElementSamplingAlgorithm(alpha=0.5)

    def test_rejects_bad_constant(self):
        with pytest.raises(ConfigurationError):
            ElementSamplingAlgorithm(alpha=4, sample_constant=0)


class TestSampleProbability:
    def test_formula(self):
        algorithm = ElementSamplingAlgorithm(alpha=20, sample_constant=1.0)
        assert algorithm.sample_probability(2**10) == pytest.approx(10 / 20)

    def test_capped_at_one(self):
        algorithm = ElementSamplingAlgorithm(alpha=2)
        assert algorithm.sample_probability(2**20) == 1.0

    def test_shrinks_with_alpha(self):
        small = ElementSamplingAlgorithm(alpha=50).sample_probability(2**12)
        large = ElementSamplingAlgorithm(alpha=100).sample_probability(2**12)
        assert large == pytest.approx(small / 2)


class TestSpaceScaling:
    def test_projection_space_shrinks_with_alpha(self):
        instance = fixed_size_instance(200, 1000, set_size=20, seed=5)
        replayable = ReplayableStream(instance, RandomOrder(seed=5))
        small = ElementSamplingAlgorithm(alpha=20, seed=5).run(
            replayable.fresh()
        )
        large = ElementSamplingAlgorithm(alpha=80, seed=5).run(
            replayable.fresh()
        )
        assert (
            large.space.peak_of("projections")
            < small.space.peak_of("projections") / 2
        )

    def test_full_storage_when_p_one(self):
        instance = fixed_size_instance(50, 100, set_size=10, seed=6)
        result = ElementSamplingAlgorithm(alpha=1, seed=6).run(
            stream_of(instance, RandomOrder(seed=6))
        )
        # p = 1: every distinct edge is stored (2 words each).
        assert (
            result.space.peak_of("projections") == 2 * instance.num_edges
        )


class TestQuality:
    def test_small_alpha_near_greedy(self):
        from repro.baselines.greedy import greedy_cover_size

        planted = planted_partition_instance(100, 500, opt_size=10, seed=7)
        result = ElementSamplingAlgorithm(alpha=1, seed=7).run(
            stream_of(planted.instance, RandomOrder(seed=7))
        )
        # alpha = 1 -> p = 1 -> offline greedy on the full instance.
        assert result.cover_size <= 2 * greedy_cover_size(planted.instance)

    def test_cover_within_alpha_opt_band(self):
        planted = planted_partition_instance(100, 800, opt_size=10, seed=8)
        alpha = 8.0
        result = ElementSamplingAlgorithm(alpha=alpha, seed=8).run(
            stream_of(planted.instance, RoundRobinInterleaveOrder(seed=8))
        )
        log_m = math.log2(planted.instance.m)
        assert result.cover_size <= alpha * log_m * planted.opt_upper_bound

    def test_cover_grows_with_alpha(self):
        planted = planted_partition_instance(200, 1000, opt_size=10, seed=9)
        replayable = ReplayableStream(planted.instance, RandomOrder(seed=9))
        small = ElementSamplingAlgorithm(
            alpha=10, sample_constant=0.5, seed=9
        ).run(replayable.fresh())
        large = ElementSamplingAlgorithm(
            alpha=80, sample_constant=0.5, seed=9
        ).run(replayable.fresh())
        assert large.cover_size >= small.cover_size


class TestDiagnostics:
    def test_keys_present(self):
        instance = fixed_size_instance(50, 100, set_size=10, seed=10)
        result = ElementSamplingAlgorithm(alpha=5, seed=10).run(
            stream_of(instance, RandomOrder(seed=10))
        )
        for key in (
            "alpha",
            "sample_probability",
            "sampled_elements",
            "stored_projection_edges",
            "greedy_picks",
            "cached_certifications",
            "patched_elements",
        ):
            assert key in result.diagnostics

    def test_deterministic_under_seed(self):
        instance = fixed_size_instance(50, 100, set_size=10, seed=11)
        replayable = ReplayableStream(instance, RandomOrder(seed=11))
        a = ElementSamplingAlgorithm(alpha=12, seed=11).run(replayable.fresh())
        b = ElementSamplingAlgorithm(alpha=12, seed=11).run(replayable.fresh())
        assert a.cover == b.cover


class TestGreedyPicksEquivalence:
    """The vectorized offline-greedy must replay the dict-scan oracle.

    Byte-identity includes the tie-break rule (earliest-stored set wins)
    and the exact pick sequence, not just the final cover — the sampled
    sub-instance's greedy solution is part of the algorithm's output.
    """

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_vectorized_matches_reference(self, data):
        universe = data.draw(st.integers(1, 40), label="universe")
        num_sets = data.draw(st.integers(0, 12), label="num_sets")
        projections = {}
        for index in range(num_sets):
            members = data.draw(
                st.sets(st.integers(0, universe - 1), max_size=12),
                label=f"set_{index}",
            )
            # Non-dense, non-sorted set ids: insertion order is the
            # tie-break, so ids must not accidentally encode it.
            projections[(index * 7 + 3) % (num_sets * 7 + 1)] = members
        uncovered = data.draw(
            st.sets(st.integers(0, universe - 1), max_size=30),
            label="uncovered",
        )
        fast = list(
            _greedy_picks(
                {s: set(m) for s, m in projections.items()}, set(uncovered)
            )
        )
        reference = list(
            _greedy_picks_reference(
                {s: set(m) for s, m in projections.items()}, set(uncovered)
            )
        )
        assert fast == reference

    def test_empty_inputs(self):
        assert list(_greedy_picks({}, {1, 2})) == []
        assert list(_greedy_picks({1: {2}}, set())) == []
