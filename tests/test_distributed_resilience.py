"""Shard-level resilience: retries, deadlines, quorum, degradation.

The contracts layered onto the distributed executor by this package's
fault-tolerance work:

1. **Recovery** — :func:`run_tasks_with_recovery` with a clean plan is
   bit-identical to a plain dispatch; a transient crash retries with
   the :func:`derive_retry_seed` discipline (attempt 2's seed is
   remixed, attempt 1's is not); a permanent crash or a blown deadline
   abandons the shard with a typed-error record, never an exception
   from inside the pool.
2. **Quorum** — ``run_distributed`` with survivors below ``min_shards``
   raises the abandoned shard's typed error carrying the quorum
   context; with quorum met it returns a *valid partial* cover whose
   every lost shard is an explicit
   :class:`~repro.faults.resilient.DegradationRecord`.
3. **Chaos invariant** — the shard-fault chaos grid never sees a bare
   crash or a silently-wrong answer in any cell.
"""

from __future__ import annotations

import pytest

from repro.analysis.chaos import run_shard_chaos
from repro.analysis.runner import derive_retry_seed
from repro.distributed import (
    SerialBackend,
    build_shard_tasks,
    run_distributed,
    run_tasks_with_recovery,
)
from repro.errors import (
    InvalidParameterError,
    ShardCrashError,
    ShardTimeoutError,
)
from repro.faults.shards import (
    PERMANENT,
    SHARD_FAULT_KINDS,
    ShardFaultPlan,
    ShardFaultSpec,
)
from repro.generators.planted import planted_partition_instance


@pytest.fixture(scope="module")
def instance():
    return planted_partition_instance(40, 80, opt_size=4, seed=13).instance


@pytest.fixture
def tasks(instance):
    return build_shard_tasks(instance, workers=4, seed=31)


class TestRunTasksWithRecovery:
    def test_clean_plan_matches_plain_dispatch(self, tasks):
        backend = SerialBackend()
        plain = backend.run_tasks(tasks, max_workers=1)
        envelopes, outcomes = run_tasks_with_recovery(
            backend, tasks, max_workers=1
        )
        assert [e.output for e in envelopes] == [e.output for e in plain]
        assert all(o.state == "ok" for o in outcomes)
        assert all(o.attempts == 1 for o in outcomes)
        assert not any(o.retried or o.abandoned for o in outcomes)

    def test_single_transient_crash_retries_with_same_seed(self, tasks):
        # One crash then success: attempt 2 runs, and derive_retry_seed
        # remixes from the second retry on — attempt 2's seed differs
        # from the pre-drawn one, which is the documented discipline.
        plan = ShardFaultPlan(specs={1: ShardFaultSpec(crash_attempts=1)})

        class Recording(SerialBackend):
            executed_seeds = {}

            def run_tasks(self, run, max_workers):
                Recording.executed_seeds = {t.index: t.seed for t in run}
                return super().run_tasks(run, max_workers)

        envelopes, outcomes = run_tasks_with_recovery(
            Recording(), tasks, 1, shard_faults=plan
        )
        assert all(e is not None for e in envelopes)
        retried = outcomes[1]
        assert retried.state == "ok"
        assert retried.attempts == 2
        assert retried.retried and not retried.abandoned
        assert Recording.executed_seeds[1] == derive_retry_seed(
            tasks[1].seed, 2
        )
        assert Recording.executed_seeds[1] != tasks[1].seed
        # The untouched shards keep their pre-drawn seeds exactly.
        assert Recording.executed_seeds[0] == tasks[0].seed

    def test_permanent_crash_abandons_with_typed_record(self, tasks):
        plan = ShardFaultPlan(
            specs={2: ShardFaultSpec(crash_attempts=PERMANENT)}
        )
        envelopes, outcomes = run_tasks_with_recovery(
            SerialBackend(), tasks, 1, shard_faults=plan, max_attempts=3
        )
        assert envelopes[2] is None
        lost = outcomes[2]
        assert lost.abandoned
        assert lost.attempts == 3
        assert lost.error_type == "ShardCrashError"
        error = lost.to_error()
        assert isinstance(error, ShardCrashError)
        assert "shard[2]" in str(error)

    def test_straggler_past_deadline_times_out(self, tasks):
        plan = ShardFaultPlan(
            specs={0: ShardFaultSpec(straggle_steps=10)}
        )
        envelopes, outcomes = run_tasks_with_recovery(
            SerialBackend(), tasks, 1, shard_faults=plan, deadline_steps=5
        )
        assert envelopes[0] is None
        lost = outcomes[0]
        assert lost.state == "timed-out"
        assert lost.completion_step > 5
        error = lost.to_error(deadline_steps=5)
        assert isinstance(error, ShardTimeoutError)

    def test_straggler_within_deadline_survives(self, tasks):
        plan = ShardFaultPlan(specs={0: ShardFaultSpec(straggle_steps=3)})
        envelopes, outcomes = run_tasks_with_recovery(
            SerialBackend(), tasks, 1, shard_faults=plan, deadline_steps=10
        )
        assert envelopes[0] is not None
        assert outcomes[0].completion_step == 4  # 1 attempt step + 3 straggle

    def test_backoff_accumulates_on_the_logical_clock(self, tasks):
        plan = ShardFaultPlan(specs={0: ShardFaultSpec(crash_attempts=2)})
        _, outcomes = run_tasks_with_recovery(
            SerialBackend(), tasks, 1, shard_faults=plan, backoff_steps=4
        )
        # Three attempts of 1 step each, two backoffs of 4 between them.
        assert outcomes[0].attempts == 3
        assert outcomes[0].completion_step == 3 * 1 + 2 * 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_steps": -1},
            {"attempt_steps": 0},
            {"deadline_steps": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, tasks, kwargs):
        with pytest.raises(InvalidParameterError):
            run_tasks_with_recovery(SerialBackend(), tasks, 1, **kwargs)


class TestQuorumPolicy:
    def test_quorum_met_yields_explicit_degradation(self, instance):
        plan = ShardFaultPlan(
            specs={3: ShardFaultSpec(crash_attempts=PERMANENT)}
        )
        result = run_distributed(
            instance,
            workers=4,
            coordinator="union",
            seed=7,
            backend="serial",
            shard_faults=plan,
            min_shards=2,
        )
        assert result.diagnostics["shards_lost"] == 1.0
        assert len(result.degradations) == 1
        record = result.degradations[0]
        assert record.policy == "quorum-degraded"
        assert record.error_type == "ShardCrashError"
        assert record.details["survivors"] == 3.0
        result.verify(instance, allow_partial=True)
        assert set(result.uncovered) == instance.uncovered_by(result.cover)

    def test_quorum_not_met_raises_with_context(self, instance):
        plan = ShardFaultPlan(
            specs={
                i: ShardFaultSpec(crash_attempts=PERMANENT) for i in range(3)
            }
        )
        with pytest.raises(ShardCrashError, match="quorum not met: 1/4"):
            run_distributed(
                instance,
                workers=4,
                coordinator="union",
                seed=7,
                backend="serial",
                shard_faults=plan,
                min_shards=2,
            )

    def test_default_quorum_is_every_shard(self, instance):
        # Without min_shards, losing any shard is fatal — resilience is
        # opt-in, never a silent relaxation of the cover contract.
        plan = ShardFaultPlan(
            specs={0: ShardFaultSpec(crash_attempts=PERMANENT)}
        )
        with pytest.raises(ShardCrashError, match="need 4"):
            run_distributed(
                instance,
                workers=4,
                coordinator="union",
                seed=7,
                backend="serial",
                shard_faults=plan,
            )

    @pytest.mark.parametrize("coordinator", ("union", "greedy", "chain"))
    def test_partial_cover_is_verified_per_coordinator(
        self, instance, coordinator
    ):
        plan = ShardFaultPlan(
            specs={1: ShardFaultSpec(crash_attempts=PERMANENT)}
        )
        result = run_distributed(
            instance,
            workers=4,
            coordinator=coordinator,
            seed=19,
            backend="serial",
            shard_faults=plan,
            min_shards=1,
        )
        result.verify(instance, allow_partial=True)
        assert result.degradations
        assert 0.0 < result.degradations[0].coverage_fraction <= 1.0

    def test_no_fault_resilient_run_matches_plain(self, instance):
        # Turning the resilience machinery on without faults must not
        # change a byte: attempt-1 seeds are the pre-drawn seeds.
        plain = run_distributed(
            instance, workers=4, coordinator="chain", seed=3, backend="serial"
        )
        resilient = run_distributed(
            instance,
            workers=4,
            coordinator="chain",
            seed=3,
            backend="serial",
            shard_faults=ShardFaultPlan(),
            min_shards=4,
        )
        assert resilient.cover == plain.cover
        assert resilient.certificate == plain.certificate
        assert resilient.comm == plain.comm

    def test_min_shards_out_of_range(self, instance):
        with pytest.raises(InvalidParameterError, match="min_shards"):
            run_distributed(
                instance, workers=4, min_shards=0, backend="serial"
            )

    def test_resilience_requires_materialized_ingest(self, instance):
        with pytest.raises(InvalidParameterError, match="ingest"):
            run_distributed(
                instance,
                workers=4,
                backend="serial",
                ingest="stream",
                min_shards=2,
            )

    def test_unknown_coordinator_fails_before_shard_work(self, instance):
        with pytest.raises(InvalidParameterError) as excinfo:
            run_distributed(instance, workers=4, coordinator="nope")
        assert "known coordinators" in str(excinfo.value)


class TestShardChaosGrid:
    def test_quick_grid_holds_the_invariant(self, instance):
        report = run_shard_chaos(instance, seed=5, quick=True)
        report.assert_invariant()
        assert not report.violations()
        # Every fault kind appears in the grid and the crash cells do
        # degrade somewhere (the rates are chosen to make that certain
        # enough at this seed; a change here means the grid went inert).
        kinds = {row.fault_kind for row in report.rows}
        assert kinds == set(SHARD_FAULT_KINDS)
        outcomes = report.outcome_counts()
        assert sum(outcomes.values()) == len(report.rows)

    def test_render_mentions_every_cell(self, instance):
        report = run_shard_chaos(instance, seed=5, quick=True)
        text = report.render()
        assert "crash" in text and "straggle" in text and "duplicate" in text
