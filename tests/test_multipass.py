"""Tests for the multi-pass threshold-greedy algorithm."""

from __future__ import annotations

import math

import pytest

from repro.baselines.greedy import greedy_cover_size
from repro.errors import ConfigurationError, InvalidCoverError
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.multipass import (
    MultiPassThresholdGreedy,
    geometric_thresholds,
)
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import RandomOrder, RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream


class TestThresholdSchedule:
    def test_geometric_shape(self):
        schedule = geometric_thresholds(256, 4)
        assert len(schedule) == 4
        assert schedule[-1] == 1.0
        assert all(a >= b for a, b in zip(schedule, schedule[1:]))
        assert schedule[0] == pytest.approx(256 ** (3 / 4))

    def test_single_pass_is_first_fit_threshold(self):
        assert geometric_thresholds(100, 1) == [1.0]

    def test_rejects_zero_passes(self):
        with pytest.raises(ConfigurationError):
            geometric_thresholds(100, 0)

    def test_explicit_schedule_validated(self):
        with pytest.raises(ConfigurationError):
            MultiPassThresholdGreedy(thresholds=[4.0, 8.0, 1.0])
        with pytest.raises(ConfigurationError):
            MultiPassThresholdGreedy(thresholds=[4.0, 2.0])  # must end at 1
        with pytest.raises(ConfigurationError):
            MultiPassThresholdGreedy(thresholds=[])

    def test_schedule_for_uses_explicit(self):
        algorithm = MultiPassThresholdGreedy(thresholds=[8.0, 2.0, 1.0])
        assert algorithm.schedule_for(10**6) == [8.0, 2.0, 1.0]


class TestCorrectness:
    @pytest.mark.parametrize("passes", [1, 2, 4])
    def test_valid_cover(self, passes):
        instance = fixed_size_instance(60, 200, set_size=8, seed=passes)
        replayable = ReplayableStream(instance, RandomOrder(seed=passes))
        result = MultiPassThresholdGreedy(passes=passes, seed=passes).run(
            replayable
        )
        result.verify(instance)

    def test_no_patching_needed(self):
        instance = fixed_size_instance(60, 200, set_size=8, seed=5)
        replayable = ReplayableStream(instance, RandomOrder(seed=5))
        result = MultiPassThresholdGreedy(passes=3, seed=5).run(replayable)
        # Every element witnessed by a cover set during the passes.
        assert set(result.certificate) == set(range(60))

    def test_adversarial_order_valid(self):
        instance = fixed_size_instance(60, 200, set_size=8, seed=6)
        replayable = ReplayableStream(
            instance, RoundRobinInterleaveOrder(seed=6)
        )
        result = MultiPassThresholdGreedy(passes=3, seed=6).run(replayable)
        result.verify(instance)

    def test_infeasible_raises(self):
        instance = SetCoverInstance(3, [{0, 1}])
        replayable = ReplayableStream(instance)
        with pytest.raises(InvalidCoverError):
            MultiPassThresholdGreedy(passes=2, seed=7).run(replayable)

    def test_deterministic(self):
        instance = fixed_size_instance(40, 100, set_size=6, seed=8)
        replayable = ReplayableStream(instance, RandomOrder(seed=8))
        a = MultiPassThresholdGreedy(passes=3, seed=8).run(replayable)
        b = MultiPassThresholdGreedy(passes=3, seed=8).run(replayable)
        assert a.cover == b.cover


class TestQualityVsPasses:
    def test_more_passes_better_cover(self):
        """Cover quality improves with more passes (layered workload)."""
        from repro.generators.hard import layered_hard_instance

        instance = layered_hard_instance(
            256, layers=6, sets_per_layer=40, seed=9
        )
        replayable = ReplayableStream(instance, RandomOrder(seed=9))
        sizes = {}
        for passes in (1, 3, 6):
            result = MultiPassThresholdGreedy(passes=passes, seed=9).run(
                replayable
            )
            result.verify(instance)
            sizes[passes] = result.cover_size
        assert sizes[6] < sizes[1]
        assert sizes[3] < sizes[1]

    def test_many_passes_approach_greedy(self):
        """On heavy-tailed inputs the quality curve approaches greedy.

        (On uniform-set-size instances only one threshold of the
        geometric schedule bites, so the multi-pass advantage needs
        heterogeneous set sizes — the workloads [11, 21] target.)
        """
        from repro.generators.zipf import zipf_instance

        instance = zipf_instance(300, 1200, seed=10)
        replayable = ReplayableStream(instance, RandomOrder(seed=10))
        passes = math.ceil(math.log2(300))
        result = MultiPassThresholdGreedy(passes=passes, seed=10).run(
            replayable
        )
        greedy = greedy_cover_size(instance)
        assert result.cover_size <= 1.5 * greedy

    def test_single_pass_matches_first_fit_bound(self):
        instance = fixed_size_instance(60, 300, set_size=6, seed=11)
        replayable = ReplayableStream(instance, RandomOrder(seed=11))
        result = MultiPassThresholdGreedy(passes=1, seed=11).run(replayable)
        assert result.cover_size <= instance.n


class TestDiagnosticsAndSpace:
    def test_pass_counts_recorded(self):
        instance = fixed_size_instance(50, 150, set_size=6, seed=12)
        replayable = ReplayableStream(instance, RandomOrder(seed=12))
        result = MultiPassThresholdGreedy(passes=3, seed=12).run(replayable)
        assert result.diagnostics["passes_configured"] == 3
        assert 1 <= result.diagnostics["passes_used"] <= 3
        assert "added_pass_1" in result.diagnostics

    def test_space_is_o_of_m(self):
        """Counters dominate: Õ(m) like the KK-algorithm."""
        peaks = []
        for m in (200, 800):
            instance = fixed_size_instance(50, m, set_size=6, seed=13)
            replayable = ReplayableStream(instance, RandomOrder(seed=13))
            result = MultiPassThresholdGreedy(passes=3, seed=13).run(
                replayable
            )
            peaks.append(result.space.peak_words)
        assert peaks[1] > 2 * peaks[0]

    def test_early_stop_when_covered(self):
        """Once everything is covered mid-schedule, later passes skip."""
        instance = SetCoverInstance(4, [{0, 1, 2, 3}])
        replayable = ReplayableStream(instance)
        result = MultiPassThresholdGreedy(passes=6, seed=14).run(replayable)
        assert result.diagnostics["passes_used"] < 6
