"""Tests for exact OPT and lower bounds."""

from __future__ import annotations

import pytest

from repro.analysis.opt import exact_opt, opt_lower_bound, opt_or_bound
from repro.baselines.greedy import greedy_cover_size
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.streaming.instance import SetCoverInstance


class TestExactOpt:
    def test_tiny_instance(self, tiny_instance):
        size, cover = exact_opt(tiny_instance)
        assert size == 2
        assert tiny_instance.is_cover(cover)

    def test_star_instance(self, star_instance):
        size, cover = exact_opt(star_instance)
        assert size == 1
        assert cover == frozenset({0})

    def test_chain_instance(self, chain_instance):
        size, cover = exact_opt(chain_instance)
        assert size == 3
        assert chain_instance.is_cover(cover)

    def test_matches_planted_optimum(self):
        planted = planted_partition_instance(24, 40, opt_size=4, seed=1)
        size, _ = exact_opt(planted.instance)
        assert size <= 4  # planted cover is an upper bound; exact <= it

    def test_never_beats_lower_bound(self):
        instance = fixed_size_instance(25, 50, set_size=5, seed=2)
        size, _ = exact_opt(instance)
        assert size >= opt_lower_bound(instance)

    def test_never_exceeds_greedy(self):
        instance = fixed_size_instance(25, 50, set_size=5, seed=3)
        size, _ = exact_opt(instance)
        assert size <= greedy_cover_size(instance)

    def test_cover_returned_is_cover(self):
        instance = fixed_size_instance(20, 30, set_size=5, seed=4)
        size, cover = exact_opt(instance)
        assert instance.is_cover(cover)
        assert len(cover) == size

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleInstanceError):
            exact_opt(SetCoverInstance(3, [{0}]))

    def test_node_limit_enforced(self):
        instance = fixed_size_instance(60, 200, set_size=6, seed=5)
        with pytest.raises(ConfigurationError):
            exact_opt(instance, node_limit=10)

    def test_singleton_universe(self):
        size, cover = exact_opt(SetCoverInstance(1, [{0}, {0}]))
        assert size == 1


class TestLowerBound:
    def test_counting_bound(self):
        # 10 elements, max set size 3 -> at least ceil(10/3) = 4.
        instance = SetCoverInstance(
            10, [set(range(i, min(i + 3, 10))) for i in range(0, 10, 2)]
        )
        assert opt_lower_bound(instance) >= 4

    def test_dual_bound_disjoint_elements(self):
        # Three elements with disjoint covering sets force OPT >= 3.
        instance = SetCoverInstance(3, [{0}, {1}, {2}])
        assert opt_lower_bound(instance) == 3

    def test_bound_at_most_opt(self):
        for seed in range(4):
            instance = fixed_size_instance(20, 40, set_size=5, seed=seed)
            size, _ = exact_opt(instance)
            assert opt_lower_bound(instance) <= size

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleInstanceError):
            opt_lower_bound(SetCoverInstance(2, [{0}]))

    def test_at_least_one(self, star_instance):
        assert opt_lower_bound(star_instance) >= 1


class TestOptOrBound:
    def test_exact_for_small(self, tiny_instance):
        value, is_exact = opt_or_bound(tiny_instance)
        assert is_exact
        assert value == 2

    def test_falls_back_for_large(self):
        instance = fixed_size_instance(200, 4000, set_size=10, seed=6)
        value, is_exact = opt_or_bound(instance)
        assert not is_exact
        assert value >= 1

    def test_fallback_on_node_limit(self):
        instance = fixed_size_instance(30, 60, set_size=5, seed=7)
        value, is_exact = opt_or_bound(instance, node_limit=5)
        # Exact solve aborted; bound returned.
        assert value >= 1
