"""Tests for arrival-order policies: permutation property, model shapes."""

from __future__ import annotations

import pytest

from repro.errors import InvalidStreamError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import (
    ORDER_REGISTRY,
    CanonicalOrder,
    ExplicitOrder,
    LargeSetsLastOrder,
    RandomOrder,
    RoundRobinInterleaveOrder,
    SetGroupedOrder,
    check_permutation,
    make_order,
)
from repro.types import Edge


@pytest.fixture
def edges(chain_instance):
    return list(chain_instance.edges())


ALL_SEEDED_ORDERS = [
    RandomOrder,
    SetGroupedOrder,
    RoundRobinInterleaveOrder,
    LargeSetsLastOrder,
]


class TestPermutationProperty:
    @pytest.mark.parametrize("order_cls", ALL_SEEDED_ORDERS)
    def test_is_permutation(self, order_cls, edges):
        reordered = order_cls(seed=1).apply(edges)
        check_permutation(edges, reordered)

    def test_canonical_is_identity(self, edges):
        assert CanonicalOrder().apply(edges) == edges

    @pytest.mark.parametrize("order_cls", ALL_SEEDED_ORDERS)
    def test_deterministic_under_seed(self, order_cls, edges):
        assert order_cls(seed=5).apply(edges) == order_cls(seed=5).apply(edges)

    def test_random_order_seeds_differ(self, edges):
        # Not guaranteed in general, but these seeds do differ.
        assert RandomOrder(seed=1).apply(edges) != RandomOrder(seed=2).apply(edges)


class TestSetGroupedOrder:
    def test_sets_contiguous(self, edges):
        reordered = SetGroupedOrder(seed=3).apply(edges)
        seen_closed = set()
        current = None
        for edge in reordered:
            if edge.set_id != current:
                assert edge.set_id not in seen_closed
                if current is not None:
                    seen_closed.add(current)
                current = edge.set_id
        # every set appears
        assert {e.set_id for e in reordered} == {e.set_id for e in edges}


class TestRoundRobin:
    def test_prefix_spreads_sets(self):
        # 3 sets with 3 elements each: the first 3 edges must name 3
        # distinct sets.
        instance = SetCoverInstance(
            9, [{0, 1, 2}, {3, 4, 5}, {6, 7, 8}]
        )
        reordered = RoundRobinInterleaveOrder(seed=0).apply(
            list(instance.edges())
        )
        assert len({e.set_id for e in reordered[:3]}) == 3

    def test_unequal_sizes_handled(self):
        instance = SetCoverInstance(4, [{0}, {1, 2, 3}])
        reordered = RoundRobinInterleaveOrder(seed=0).apply(
            list(instance.edges())
        )
        check_permutation(list(instance.edges()), reordered)


class TestLargeSetsLast:
    def test_small_sets_first(self):
        instance = SetCoverInstance(5, [{0, 1, 2, 3}, {4}])
        reordered = LargeSetsLastOrder(seed=0).apply(list(instance.edges()))
        assert reordered[0].set_id == 1
        assert reordered[-1].set_id == 0


class TestLocallyShuffledOrder:
    def test_is_permutation(self, edges):
        from repro.streaming.orders import LocallyShuffledOrder

        for randomness in (0.0, 0.3, 1.0):
            reordered = LocallyShuffledOrder(randomness, seed=1).apply(edges)
            check_permutation(edges, reordered)

    def test_zero_randomness_keeps_round_robin_spread(self, edges):
        from repro.streaming.orders import LocallyShuffledOrder

        # Zero randomness leaves the adversarial round-robin base
        # untouched: the first k edges come from k distinct sets.
        reordered = LocallyShuffledOrder(0.0, seed=2).apply(edges)
        prefix_sets = {e.set_id for e in reordered[:3]}
        assert len(prefix_sets) == 3

    def test_rejects_bad_randomness(self):
        from repro.errors import InvalidStreamError
        from repro.streaming.orders import LocallyShuffledOrder

        with pytest.raises(InvalidStreamError):
            LocallyShuffledOrder(-0.1)
        with pytest.raises(InvalidStreamError):
            LocallyShuffledOrder(1.5)

    def test_deterministic(self, edges):
        from repro.streaming.orders import LocallyShuffledOrder

        a = LocallyShuffledOrder(0.5, seed=4).apply(edges)
        b = LocallyShuffledOrder(0.5, seed=4).apply(edges)
        assert a == b

    def test_full_randomness_differs_from_base(self):
        from repro.streaming.instance import SetCoverInstance
        from repro.streaming.orders import LocallyShuffledOrder

        instance = SetCoverInstance(
            30, [set(range(i, i + 10)) for i in range(0, 21, 2)]
        )
        edges = list(instance.edges())
        zero = LocallyShuffledOrder(0.0, seed=5).apply(edges)
        full = LocallyShuffledOrder(1.0, seed=5).apply(edges)
        assert zero != full


class TestExplicitOrder:
    def test_applies_positions(self, edges):
        reversed_positions = list(range(len(edges)))[::-1]
        reordered = ExplicitOrder(reversed_positions).apply(edges)
        assert reordered == edges[::-1]

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidStreamError):
            ExplicitOrder([0, 0, 1])

    def test_rejects_length_mismatch(self, edges):
        order = ExplicitOrder(list(range(3)))
        with pytest.raises(InvalidStreamError):
            order.apply(edges)


class TestRegistry:
    def test_all_registered_constructible(self):
        for name in ORDER_REGISTRY:
            order = make_order(name, seed=1)
            assert order.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidStreamError):
            make_order("bogus")


class TestCheckPermutation:
    def test_accepts_shuffle(self, edges):
        check_permutation(edges, list(reversed(edges)))

    def test_rejects_length_change(self, edges):
        with pytest.raises(InvalidStreamError):
            check_permutation(edges, edges[:-1])

    def test_rejects_substitution(self, edges):
        tampered = list(edges)
        tampered[0] = Edge(99, 99)
        with pytest.raises(InvalidStreamError):
            check_permutation(edges, tampered)

    def test_rejects_duplication(self, edges):
        tampered = list(edges)
        tampered[1] = tampered[0]
        with pytest.raises(InvalidStreamError):
            check_permutation(edges, tampered)
