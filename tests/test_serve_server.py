"""The live server: registry ops, batch-twin parity, admission, drain.

Every test runs against a real localhost TCP server on a background
event-loop thread (skipped gracefully where the sandbox forbids
binding — the PR-8 socket contract).  The three load-bearing claims:

1. **Batch-twin parity** — a served solve/distribute returns the same
   cover, certificate, and trace JSONL bytes the direct library call
   produces, including under concurrent clients.
2. **Typed admission** — an oversized request is refused with an
   :class:`AdmissionError` whose fields survive the wire; a contended
   pool queues FIFO and both requests succeed.
3. **Graceful shutdown** (the drain contract) — in-flight requests
   finish and answer, queued admissions get a typed shutting-down
   rejection, the port stops accepting, and no server thread or shared
   memory segment remains live.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.algorithms import make_algorithm
from repro.distributed import run_distributed
from repro.distributed.shmem import _LIVE_SEGMENTS
from repro.errors import (
    AdmissionError,
    RemoteServeError,
    TransportError,
)
from repro.generators.planted import planted_partition_instance
from repro.obs.tracer import RecordingTracer, events_to_jsonl
from repro.serve import (
    InstanceRegistry,
    ServeClient,
    ServeConfig,
    start_server_thread,
)
from repro.streaming.io import dumps_instance
from repro.streaming.orders import make_order
from repro.streaming.stream import stream_of

SEED = 11


def make_instance(seed: int = SEED):
    return planted_partition_instance(80, 30, opt_size=6, seed=seed).instance


def start_or_skip(config=None, registry=None):
    """A running server handle, or a graceful skip where bind is denied."""
    try:
        return start_server_thread(
            config if config is not None else ServeConfig(port=0), registry
        )
    except TransportError as exc:
        pytest.skip(f"sandbox forbids binding localhost TCP: {exc}")


@pytest.fixture(scope="module")
def instance():
    return make_instance()


@pytest.fixture(scope="module")
def handle(instance):
    registry = InstanceRegistry()
    registry.load_instance("demo", instance)
    server = start_or_skip(registry=registry)
    with server:
        yield server


@pytest.fixture()
def client(handle):
    with ServeClient(host=handle.host, port=handle.port) as c:
        yield c


def batch_solve(instance, algorithm="kk", order_name="canonical", seed=0):
    order = make_order(order_name, seed=seed)
    tracer = RecordingTracer()
    result = make_algorithm(
        algorithm, instance, seed=seed, alpha=None, tracer=tracer
    ).run(stream_of(instance, order))
    result.verify(instance)
    tracer.finish()
    return result, events_to_jsonl(tracer.events)


class TestControlPlane:
    def test_ping(self, client):
        assert client.ping()["server"] == "repro-serve"

    def test_load_list_unload_round_trip(self, client):
        other = make_instance(seed=99)
        loaded = client.load("other", other)
        assert loaded["name"] == "other"
        assert loaded["n"] == other.n
        names = [e["name"] for e in client.instances()]
        assert names == sorted(names)
        assert "other" in names and "demo" in names
        assert client.unload("other") == {"unloaded": "other"}
        assert "other" not in [e["name"] for e in client.instances()]

    def test_load_accepts_io_text(self, client):
        other = make_instance(seed=5)
        client.load("fromtext", dumps_instance(other))
        entry = [
            e for e in client.instances() if e["name"] == "fromtext"
        ][0]
        assert entry["edges"] == other.num_edges
        client.unload("fromtext")

    def test_duplicate_load_is_typed(self, client, instance):
        with pytest.raises(RemoteServeError) as excinfo:
            client.load("demo", instance)
        assert excinfo.value.error_type == "InvalidParameterError"

    def test_unknown_instance_is_typed(self, client):
        with pytest.raises(RemoteServeError) as excinfo:
            client.solve("missing")
        assert excinfo.value.error_type == "InvalidParameterError"
        assert "demo" in str(excinfo.value)  # names the loaded ones

    def test_unknown_algorithm_is_typed(self, client):
        with pytest.raises(RemoteServeError) as excinfo:
            client.solve("demo", algorithm="quantum")
        assert excinfo.value.error_type == "InvalidParameterError"

    def test_stats_counters_accumulate(self, client):
        before = client.stats()["counters"].get("solve", 0)
        client.solve("demo")
        after = client.stats()["counters"]
        assert after["solve"] == before + 1
        assert after.get("stats", 0) >= 2


class TestBatchTwinParity:
    def test_solve_matches_batch_twin(self, client, instance):
        for algorithm, order_name, seed in [
            ("kk", "canonical", 0),
            ("kk", "random", 7),
            ("store-all", "large-sets-last", 2),
        ]:
            twin, twin_trace = batch_solve(
                instance, algorithm, order_name, seed
            )
            served = client.solve(
                "demo",
                algorithm=algorithm,
                order=order_name,
                seed=seed,
                include_trace=True,
            )
            assert tuple(served["cover"]) == tuple(sorted(twin.cover))
            assert tuple(tuple(p) for p in served["certificate"]) == tuple(
                sorted(twin.certificate.items())
            )
            assert served["peak_words"] == twin.space.peak_words
            assert served["trace_jsonl"] == twin_trace
            assert served["valid"] is True

    def test_concurrent_solves_match_batch_twin(self, handle, instance):
        """N simultaneous clients, same request: all byte-identical."""
        twin, twin_trace = batch_solve(instance, "kk", "random", 13)
        results, failures = [], []

        def one_client():
            try:
                with ServeClient(host=handle.host, port=handle.port) as c:
                    results.append(
                        c.solve(
                            "demo", order="random", seed=13,
                            include_trace=True,
                        )
                    )
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=one_client) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert len(results) == 4
        for served in results:
            assert tuple(served["cover"]) == tuple(sorted(twin.cover))
            assert served["trace_jsonl"] == twin_trace
            assert served["peak_words"] == twin.space.peak_words

    def test_distribute_matches_batch_twin(self, client, instance):
        twin = run_distributed(
            instance, workers=3, algorithm="kk", coordinator="greedy",
            seed=SEED,
        )
        twin.verify(instance)
        served = client.distribute(
            "demo", workers=3, coordinator="greedy", seed=SEED
        )
        assert tuple(served["cover"]) == tuple(sorted(twin.cover))
        assert served["total_comm_words"] == twin.total_comm_words
        assert served["max_message_words"] == twin.max_message_words
        assert served["messages"] == twin.comm.num_messages

    def test_summary_reports_trace(self, client):
        served = client.summary("demo", algorithm="kk", seed=1)
        assert served["trace_events"] > 0
        assert "events" in served["summary_text"]

    def test_chaos_solve_reports_outcome(self, client):
        served = client.solve(
            "demo", fault_kind="drop", fault_rate=0.3, seed=3,
            policy="best_effort",
        )
        assert served["outcome"] in ("ok", "degraded")
        assert served["degraded"] == (served["outcome"] == "degraded")
        if served["outcome"] == "ok":
            assert served["valid"] is True


class TestAdmission:
    def test_oversized_request_rejected_with_fields(self, instance):
        registry = InstanceRegistry()
        entry = registry.load_instance("demo", instance)
        config = ServeConfig(
            port=0, space_pool_words=entry.estimated_solve_words // 2
        )
        with start_or_skip(config, registry) as handle:
            with ServeClient(host=handle.host, port=handle.port) as c:
                with pytest.raises(AdmissionError) as excinfo:
                    c.solve("demo")
                error = excinfo.value
                assert error.reason == "exceeds-capacity"
                assert (
                    error.requested_space_words == entry.estimated_solve_words
                )
                assert (
                    error.available_space_words
                    == entry.estimated_solve_words // 2
                )
                assert error.retry_after is None
                # The pool recorded the rejection; the server stayed up.
                stats = c.stats()
                assert stats["pool"]["rejections"] == {
                    "exceeds-capacity": 1
                }
                assert c.ping()["server"] == "repro-serve"

    def test_contended_pool_queues_fifo_and_serves_both(self, instance):
        registry = InstanceRegistry()
        entry = registry.load_instance("demo", instance)
        config = ServeConfig(port=0, space_pool_words=entry.estimated_solve_words)
        with start_or_skip(config, registry) as handle:
            results, failures = [], []

            def solve(delay_ms):
                try:
                    with ServeClient(
                        host=handle.host, port=handle.port
                    ) as c:
                        results.append(c.solve("demo", delay_ms=delay_ms))
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)

            slow = threading.Thread(target=solve, args=(400,))
            slow.start()
            time.sleep(0.15)  # slow solve holds the whole pool
            fast = threading.Thread(target=solve, args=(0,))
            fast.start()
            slow.join()
            fast.join()
            assert not failures
            assert len(results) == 2
            assert all(r["valid"] for r in results)
            with ServeClient(host=handle.host, port=handle.port) as c:
                pool = c.stats()["pool"]
                assert pool["queued_total"] >= 1
                assert pool["admitted"] == 2
                assert pool["completed"] == 2


class TestGracefulShutdown:
    def test_drain_completes_inflight_and_rejects_queued(self, instance):
        """The satellite-2 contract, end to end."""
        registry = InstanceRegistry()
        entry = registry.load_instance("demo", instance)
        config = ServeConfig(
            port=0, space_pool_words=entry.estimated_solve_words
        )
        handle = start_or_skip(config, registry)
        outcomes = {}

        def inflight():
            with ServeClient(host=handle.host, port=handle.port) as c:
                outcomes["inflight"] = c.solve("demo", delay_ms=800)

        def queued():
            with ServeClient(host=handle.host, port=handle.port) as c:
                try:
                    outcomes["queued"] = c.solve("demo")
                except AdmissionError as exc:
                    outcomes["queued_error"] = exc

        first = threading.Thread(target=inflight)
        first.start()
        time.sleep(0.25)  # in flight, holding the whole pool
        second = threading.Thread(target=queued)
        second.start()
        time.sleep(0.25)  # queued behind the first

        handle.stop()
        first.join(10)
        second.join(10)

        # The in-flight request drained to a full, valid answer.
        assert outcomes["inflight"]["valid"] is True
        # The queued admission was evicted with the typed rejection.
        assert "queued" not in outcomes
        assert outcomes["queued_error"].reason == "shutting-down"
        # The port no longer accepts.
        with pytest.raises(TransportError):
            ServeClient(host=handle.host, port=handle.port, timeout=2)
        # This server's event-loop thread is joined and gone (other
        # servers in the process keep their own threads).
        assert not handle.thread.is_alive()
        # No shared-memory segment leaked (PR-7 leak-check contract).
        assert len(_LIVE_SEGMENTS) == 0

    def test_stop_is_idempotent(self, instance):
        registry = InstanceRegistry()
        registry.load_instance("demo", instance)
        handle = start_or_skip(registry=registry)
        with ServeClient(host=handle.host, port=handle.port) as c:
            assert c.solve("demo")["valid"] is True
        handle.stop()
        handle.stop()  # second stop is a no-op

    def test_client_shutdown_request_stops_server(self, instance):
        registry = InstanceRegistry()
        registry.load_instance("demo", instance)
        handle = start_or_skip(registry=registry)
        with ServeClient(host=handle.host, port=handle.port) as c:
            assert c.shutdown() == {"stopping": True}
        # The foreground serve loop would now drain; emulate it.
        handle.stop()
        with pytest.raises(TransportError):
            ServeClient(host=handle.host, port=handle.port, timeout=2)
