"""Property tests: CommMeter totals equal a naive recount of all messages.

Mirrors the SpaceMeter equivalence suite: the meter's O(1) incremental
accounting must agree with the obvious O(messages) oracle that simply
re-adds every message, for arbitrary message sequences and for real
distributed runs across random (W, strategy, seed) configurations.
"""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import CommMeter, run_distributed
from repro.distributed.comm import words_for_cover_message
from repro.distributed.router import STRATEGIES
from repro.generators.planted import planted_partition_instance


def naive_recount(messages):
    """The oracle: recompute every statistic from the raw message log."""
    per_link_words = defaultdict(int)
    per_link_messages = defaultdict(int)
    total = 0
    biggest = 0
    for src, dst, words in messages:
        link = f"{src}->{dst}"
        per_link_words[link] += words
        per_link_messages[link] += 1
        total += words
        biggest = max(biggest, words)
    return {
        "total_words": total,
        "max_message_words": biggest,
        "num_messages": len(messages),
        "per_link_words": dict(per_link_words),
        "per_link_messages": dict(per_link_messages),
    }


nodes = st.sampled_from(
    ["shard[0]", "shard[1]", "shard[2]", "shard[3]", "coordinator"]
)
message_lists = st.lists(
    st.tuples(nodes, nodes, st.integers(min_value=0, max_value=10_000)),
    max_size=200,
)


class TestMeterAgainstOracle:
    @given(messages=message_lists)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_sequences(self, messages):
        meter = CommMeter(log_messages=True)
        for src, dst, words in messages:
            meter.record(src, dst, words)
        report = meter.report()
        oracle = naive_recount(report.messages)
        assert list(report.messages) == list(messages)
        assert report.total_words == oracle["total_words"]
        assert report.max_message_words == oracle["max_message_words"]
        assert report.num_messages == oracle["num_messages"]
        assert report.per_link_words == oracle["per_link_words"]
        assert report.per_link_messages == oracle["per_link_messages"]

    @given(messages=message_lists)
    @settings(max_examples=50, deadline=None)
    def test_reset_restarts_the_count(self, messages):
        meter = CommMeter(log_messages=True)
        for src, dst, words in messages:
            meter.record(src, dst, words)
        meter.reset()
        for src, dst, words in messages:
            meter.record(src, dst, words)
        report = meter.report()
        assert report.num_messages == len(messages)
        assert report.total_words == sum(w for _, _, w in messages)


class TestDistributedRunsAgainstOracle:
    @given(
        workers=st.integers(min_value=1, max_value=6),
        strategy=st.sampled_from(STRATEGIES),
        coordinator=st.sampled_from(["union", "greedy", "chain"]),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_report_matches_message_log(
        self, workers, strategy, coordinator, seed
    ):
        instance = planted_partition_instance(
            24, 18, opt_size=4, seed=7
        ).instance
        result = run_distributed(
            instance,
            workers=workers,
            strategy=strategy,
            coordinator=coordinator,
            seed=seed,
            comm_log=True,
        )
        oracle = naive_recount(result.comm.messages)
        assert result.comm.total_words == oracle["total_words"]
        assert result.comm.max_message_words == oracle["max_message_words"]
        assert result.comm.num_messages == oracle["num_messages"]
        assert result.comm.per_link_words == oracle["per_link_words"]
        assert result.comm.per_link_messages == oracle["per_link_messages"]

    @given(
        workers=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=15, deadline=None)
    def test_union_words_recomputable_from_shard_reports(self, workers, seed):
        # The union coordinator's per-shard upload is exactly
        # cover_size + 2 * certificate_size words, so the total is
        # recomputable from the ShardReports alone.
        instance = planted_partition_instance(
            24, 18, opt_size=4, seed=3
        ).instance
        result = run_distributed(
            instance,
            workers=workers,
            strategy="by-set",
            coordinator="union",
            seed=seed,
        )
        expected = sum(
            words_for_cover_message(r.cover_size, r.certificate_size)
            for r in result.shards
        )
        assert result.total_comm_words == expected
