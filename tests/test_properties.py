"""Property-based tests (hypothesis) for core invariants.

Strategies generate arbitrary feasible instances; properties assert the
paper-level invariants every component must satisfy regardless of
input: covers verify, orders permute, meters never under-count, greedy
dominates OPT, serialisation round-trips, etc.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.opt import exact_opt, opt_lower_bound
from repro.baselines.greedy import greedy_cover
from repro.baselines.trivial import FirstFitAlgorithm
from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.kk import KKAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.streaming.instance import SetCoverInstance
from repro.streaming.io import dumps_instance, loads_instance
from repro.streaming.orders import (
    LargeSetsLastOrder,
    RandomOrder,
    RoundRobinInterleaveOrder,
    SetGroupedOrder,
    check_permutation,
)
from repro.streaming.stream import stream_of


@st.composite
def feasible_instances(draw, max_n=24, max_m=12):
    """Arbitrary feasible instances (every element in >= 1 set)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    sets = [
        draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1), max_size=n
            )
        )
        for _ in range(m)
    ]
    # Guarantee feasibility: deal uncovered elements round-robin.
    covered = set().union(*sets) if sets else set()
    for u in range(n):
        if u not in covered:
            sets[u % m].add(u)
    return SetCoverInstance(n, sets, name="hyp")


seeds = st.integers(min_value=0, max_value=2**31)


class TestOrderProperties:
    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_random_order_is_permutation(self, instance, seed):
        edges = list(instance.edges())
        check_permutation(edges, RandomOrder(seed=seed).apply(edges))

    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_round_robin_is_permutation(self, instance, seed):
        edges = list(instance.edges())
        check_permutation(
            edges, RoundRobinInterleaveOrder(seed=seed).apply(edges)
        )

    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_set_grouped_groups(self, instance, seed):
        edges = SetGroupedOrder(seed=seed).apply(list(instance.edges()))
        closed = set()
        current = None
        for edge in edges:
            if edge.set_id != current:
                assert edge.set_id not in closed
                if current is not None:
                    closed.add(current)
                current = edge.set_id

    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_large_sets_last_sorted(self, instance, seed):
        edges = LargeSetsLastOrder(seed=seed).apply(list(instance.edges()))
        sizes = [instance.set_size(e.set_id) for e in edges]
        # Set sizes are non-decreasing at group boundaries.
        group_sizes = []
        current = None
        for edge, size in zip(edges, sizes):
            if edge.set_id != current:
                group_sizes.append(size)
                current = edge.set_id
        assert group_sizes == sorted(group_sizes)


class TestAlgorithmProperties:
    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_kk_always_valid(self, instance, seed):
        result = KKAlgorithm(seed=seed).run(
            stream_of(instance, RandomOrder(seed=seed))
        )
        result.verify(instance)

    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_adversarial_always_valid(self, instance, seed):
        alpha = max(2.0, 2 * math.sqrt(instance.n))
        result = LowSpaceAdversarialAlgorithm(alpha=alpha, seed=seed).run(
            stream_of(instance, RoundRobinInterleaveOrder(seed=seed))
        )
        result.verify(instance)

    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_random_order_always_valid(self, instance, seed):
        result = RandomOrderAlgorithm(seed=seed).run(
            stream_of(instance, RandomOrder(seed=seed))
        )
        result.verify(instance)

    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_cover_never_beats_opt(self, instance, seed):
        size, _ = exact_opt(instance)
        result = FirstFitAlgorithm(seed=seed).run(
            stream_of(instance, RandomOrder(seed=seed))
        )
        assert result.cover_size >= size

    @given(instance=feasible_instances(), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_space_meter_nonnegative_peak(self, instance, seed):
        result = KKAlgorithm(seed=seed).run(
            stream_of(instance, RandomOrder(seed=seed))
        )
        assert result.space.peak_words >= result.space.final_words >= 0


class TestSolverProperties:
    @given(instance=feasible_instances(max_n=16, max_m=8))
    @settings(max_examples=30, deadline=None)
    def test_greedy_between_opt_and_ln_bound(self, instance):
        size, _ = exact_opt(instance)
        greedy = greedy_cover(instance)
        greedy.verify(instance)
        assert size <= greedy.cover_size
        assert greedy.cover_size <= size * (math.log(instance.n) + 1)

    @given(instance=feasible_instances(max_n=16, max_m=8))
    @settings(max_examples=30, deadline=None)
    def test_lower_bound_below_opt(self, instance):
        size, _ = exact_opt(instance)
        assert opt_lower_bound(instance) <= size

    @given(instance=feasible_instances(max_n=16, max_m=8))
    @settings(max_examples=30, deadline=None)
    def test_exact_cover_is_minimal_cover(self, instance):
        size, cover = exact_opt(instance)
        assert instance.is_cover(cover)
        # Removing any set breaks optimality-as-cover or it wasn't minimal
        # in size; at least check size consistency.
        assert len(cover) == size


class TestSerializationProperties:
    @given(instance=feasible_instances())
    @settings(max_examples=40, deadline=None)
    def test_io_roundtrip(self, instance):
        assert loads_instance(dumps_instance(instance)) == instance

    @given(instance=feasible_instances())
    @settings(max_examples=40, deadline=None)
    def test_edges_reconstruct_instance(self, instance):
        from repro.streaming.instance import instance_from_edges

        rebuilt = instance_from_edges(
            instance.n, instance.m, instance.edges()
        )
        assert rebuilt == instance


class TestDegreeProperties:
    @given(instance=feasible_instances())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_equals_edges(self, instance):
        assert sum(instance.element_degrees()) == instance.num_edges

    @given(instance=feasible_instances())
    @settings(max_examples=40, deadline=None)
    def test_every_element_positive_degree(self, instance):
        assert all(d >= 1 for d in instance.element_degrees())
