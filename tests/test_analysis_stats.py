"""Tests for instance statistics and the describe/generate CLI paths."""

from __future__ import annotations

import pytest

from repro.analysis.stats import DistributionSummary, describe_instance
from repro.cli import main
from repro.generators.planted import planted_partition_instance
from repro.streaming.instance import SetCoverInstance


class TestDistributionSummary:
    def test_basic(self):
        summary = DistributionSummary.of([1, 2, 3, 4, 100])
        assert summary.minimum == 1
        assert summary.maximum == 100
        assert summary.median == 3
        assert summary.mean == pytest.approx(22.0)

    def test_singleton(self):
        summary = DistributionSummary.of([7])
        assert summary.minimum == summary.maximum == 7
        assert summary.p90 == 7.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DistributionSummary.of([])

    def test_str_readable(self):
        assert "min 1" in str(DistributionSummary.of([1, 2]))


class TestDescribeInstance:
    def test_shapes(self, tiny_instance):
        stats = describe_instance(tiny_instance)
        assert stats.n == 4
        assert stats.m == 3
        assert stats.num_edges == 6
        assert stats.density == pytest.approx(6 / 12)

    def test_opt_exact_for_small(self, tiny_instance):
        stats = describe_instance(tiny_instance)
        assert stats.opt_is_exact
        assert stats.opt_handle == 2

    def test_no_opt_mode(self, tiny_instance):
        stats = describe_instance(tiny_instance, compute_opt=False)
        assert not stats.opt_is_exact
        assert stats.opt_handle == 1

    def test_high_degree_count(self):
        # One element in every set: cutoff = 1.1*m/sqrt(n).
        instance = SetCoverInstance(
            9, [{0, i} for i in range(1, 9)]
        )
        stats = describe_instance(instance)
        assert stats.high_degree_elements >= 1

    def test_empty_sets_counted(self):
        instance = SetCoverInstance(2, [{0, 1}, set(), set()])
        assert describe_instance(instance).empty_sets == 2

    def test_as_pairs_complete(self, tiny_instance):
        pairs = describe_instance(tiny_instance).as_pairs()
        keys = [k for k, _ in pairs]
        assert "universe n" in keys
        assert any(k.startswith("OPT") for k in keys)


class TestCliDescribeGenerate:
    @pytest.mark.parametrize(
        "workload", ["uniform", "planted", "zipf", "quadratic", "domset"]
    )
    def test_generate_then_describe(self, tmp_path, capsys, workload):
        path = tmp_path / "inst.txt"
        code = main(
            [
                "generate",
                str(path),
                "--workload",
                workload,
                "--n",
                "30",
                "--m",
                "60",
                "--opt-size",
                "3",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert path.exists()
        code = main(["describe", str(path), "--no-opt"])
        assert code == 0
        out = capsys.readouterr().out
        assert "universe n" in out

    def test_generate_two_tier(self, tmp_path):
        path = tmp_path / "tt.txt"
        assert main(
            ["generate", str(path), "--workload", "two-tier", "--n", "100",
             "--m", "200", "--seed", "2"]
        ) == 0

    def test_describe_with_opt(self, tmp_path, capsys):
        planted = planted_partition_instance(20, 30, opt_size=2, seed=3)
        from repro.streaming.io import dump_instance

        path = tmp_path / "p.txt"
        dump_instance(planted.instance, path)
        assert main(["describe", str(path)]) == 0
        assert "OPT" in capsys.readouterr().out
