"""Tests for the shard router and the round-robin deal."""

from __future__ import annotations

import pytest

from repro.distributed.router import (
    STRATEGIES,
    ShardRouter,
    deal_round_robin,
    edge_hash_worker,
)
from repro.errors import ConfigurationError
from repro.generators.planted import planted_partition_instance
from repro.lowerbound.simple_protocol import split_instance_among_parties
from repro.streaming.orders import RandomOrder


@pytest.fixture
def instance():
    return planted_partition_instance(40, 30, opt_size=4, seed=7).instance


def _ordered_edges(instance, seed=0):
    return RandomOrder(seed=seed).apply(list(instance.edges()))


class TestDealRoundRobin:
    def test_partitions_all_items(self):
        assignment, per_worker = deal_round_robin(17, 4, seed=3)
        assert sorted(sum(per_worker, [])) == list(range(17))
        for item, worker in enumerate(assignment):
            assert item in per_worker[worker]

    def test_balanced_within_one(self):
        _, per_worker = deal_round_robin(17, 4, seed=3)
        sizes = [len(items) for items in per_worker]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_in_seed(self):
        assert deal_round_robin(20, 3, seed=5) == deal_round_robin(20, 3, seed=5)
        assert deal_round_robin(20, 3, seed=5) != deal_round_robin(20, 3, seed=6)

    def test_more_workers_than_items(self):
        assignment, per_worker = deal_round_robin(3, 8, seed=1)
        assert sorted(sum(per_worker, [])) == [0, 1, 2]
        assert sum(1 for items in per_worker if not items) == 5

    def test_zero_items(self):
        assignment, per_worker = deal_round_robin(0, 4, seed=1)
        assert assignment == []
        assert per_worker == [[], [], [], []]

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            deal_round_robin(5, 0)
        with pytest.raises(ConfigurationError):
            deal_round_robin(-1, 2)

    def test_matches_split_instance_among_parties(self, instance):
        """The by-set deal IS the simple protocol's party split."""
        for t in (2, 3, 5):
            for seed in (0, 9, 42):
                parties = split_instance_among_parties(instance, t, seed=seed)
                _, per_worker = deal_round_robin(instance.m, t, seed=seed)
                assert len(parties) == len(per_worker)
                for party, share in zip(parties, per_worker):
                    assert party.sets == [
                        set(instance.set_members(s)) for s in share
                    ]


class TestShardRouter:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_shards_partition_the_stream(self, instance, strategy):
        edges = _ordered_edges(instance)
        plan = ShardRouter(strategy, workers=4, seed=2).route_edges(
            instance, edges
        )
        assert plan.total_edges == len(edges)
        flat = [e for shard in plan.shard_edges for e in shard]
        assert sorted(flat) == sorted(edges)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_shards_preserve_arrival_order(self, instance, strategy):
        edges = _ordered_edges(instance, seed=5)
        plan = ShardRouter(strategy, workers=3, seed=2).route_edges(
            instance, edges
        )
        position = {edge: i for i, edge in enumerate(edges)}
        for shard in plan.shard_edges:
            positions = [position[e] for e in shard]
            assert positions == sorted(positions)

    def test_by_set_keeps_sets_whole(self, instance):
        edges = _ordered_edges(instance)
        plan = ShardRouter("by-set", workers=4, seed=2).route_edges(
            instance, edges
        )
        owner = {}
        for index, shard in enumerate(plan.shard_edges):
            for edge in shard:
                assert owner.setdefault(edge[0], index) == index

    def test_by_element_keeps_elements_whole(self, instance):
        edges = _ordered_edges(instance)
        plan = ShardRouter("by-element", workers=4, seed=2).route_edges(
            instance, edges
        )
        owner = {}
        for index, shard in enumerate(plan.shard_edges):
            for edge in shard:
                assert owner.setdefault(edge[1], index) == index

    def test_by_set_order_matches_deal(self, instance):
        plan = ShardRouter("by-set", workers=3, seed=11).route_edges(
            instance, _ordered_edges(instance)
        )
        _, per_worker = deal_round_robin(instance.m, 3, seed=11)
        assert [list(order) for order in plan.set_order] == per_worker

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deterministic_in_inputs(self, instance, strategy):
        edges = _ordered_edges(instance)
        a = ShardRouter(strategy, workers=4, seed=3).route_edges(instance, edges)
        b = ShardRouter(strategy, workers=4, seed=3).route_edges(instance, edges)
        assert a == b

    def test_single_worker_gets_everything(self, instance):
        edges = _ordered_edges(instance)
        plan = ShardRouter("by-set", workers=1, seed=0).route_edges(
            instance, edges
        )
        assert list(plan.shard_edges[0]) == edges
        assert sorted(plan.set_order[0]) == list(range(instance.m))

    def test_more_workers_than_sets(self, instance):
        workers = instance.m + 5
        plan = ShardRouter("by-set", workers=workers, seed=1).route_edges(
            instance, _ordered_edges(instance)
        )
        assert plan.workers == workers
        assert sum(1 for order in plan.set_order if not order) == 5
        assert plan.total_edges == instance.num_edges

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter("by-universe", workers=2)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter("by-set", workers=0)

    def test_route_stream_consumes_the_pass(self, instance):
        from repro.streaming.stream import stream_of
        from repro.streaming.orders import CanonicalOrder

        stream = stream_of(instance, CanonicalOrder())
        plan = ShardRouter("hash", workers=2, seed=4).route_stream(stream)
        assert plan.total_edges == instance.num_edges
        assert plan.order_name == "canonical"


class TestEdgeHash:
    def test_stable_across_calls(self):
        assert edge_hash_worker(3, 17, 8, 42) == edge_hash_worker(3, 17, 8, 42)

    def test_seed_changes_partition(self):
        pairs = [(s, u) for s in range(20) for u in range(20)]
        a = [edge_hash_worker(s, u, 4, 1) for s, u in pairs]
        b = [edge_hash_worker(s, u, 4, 2) for s, u in pairs]
        assert a != b

    def test_roughly_uniform(self):
        workers = 4
        counts = [0] * workers
        for s in range(50):
            for u in range(50):
                counts[edge_hash_worker(s, u, workers, 7)] += 1
        expected = 50 * 50 / workers
        for count in counts:
            assert 0.8 * expected < count < 1.2 * expected
