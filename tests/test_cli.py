"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.generators.planted import planted_partition_instance
from repro.streaming.io import dump_instance


@pytest.fixture
def instance_file(tmp_path):
    planted = planted_partition_instance(30, 60, opt_size=3, seed=1)
    path = tmp_path / "instance.txt"
    dump_instance(planted.instance, path)
    return str(path)


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "table1-row2", "--full"])
        assert args.experiment == "table1-row2"
        assert args.full

    def test_solve_parses(self):
        args = build_parser().parse_args(
            ["solve", "x.txt", "--algorithm", "kk", "--order", "random"]
        )
        assert args.algorithm == "kk"

    def test_chaos_parses(self):
        args = build_parser().parse_args(
            ["chaos", "--quick", "--policy", "skip_bad_edges", "--seed", "3"]
        )
        assert args.command == "chaos"
        assert args.quick
        assert args.policy == "skip_bad_edges"
        assert args.seed == 3

    def test_distribute_parses(self):
        args = build_parser().parse_args(
            [
                "distribute",
                "x.txt",
                "--workers",
                "4",
                "--strategy",
                "by-element",
                "--coordinator",
                "greedy",
                "--max-workers",
                "2",
            ]
        )
        assert args.command == "distribute"
        assert args.workers == 4
        assert args.strategy == "by-element"
        assert args.coordinator == "greedy"
        assert args.max_workers == 2

    def test_distribute_short_workers_flag(self):
        args = build_parser().parse_args(["distribute", "x.txt", "-W", "8"])
        assert args.workers == 8

    def test_distribute_backend_parses(self):
        args = build_parser().parse_args(
            [
                "distribute",
                "x.txt",
                "--backend",
                "process",
                "--ingest",
                "stream",
                "--chunk-size",
                "128",
                "--queue-depth",
                "3",
            ]
        )
        assert args.backend == "process"
        assert args.ingest == "stream"
        assert args.chunk_size == 128
        assert args.queue_depth == 3

    def test_distribute_backend_defaults(self):
        args = build_parser().parse_args(["distribute", "x.txt"])
        assert args.backend == "thread"
        assert args.ingest == "materialize"

    def test_distribute_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["distribute", "x.txt", "--backend", "gpu"]
            )

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1-row1" in out
        assert "invariants" in out


class TestRun:
    def test_runs_quick_experiment(self, capsys):
        assert main(["run", "lb-family", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "lb-family" in out
        assert "findings:" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "bogus"]) == 1
        assert "error" in capsys.readouterr().err

    def test_markdown_flag(self, capsys):
        assert main(["run", "lb-family", "--markdown"]) == 0
        assert "|" in capsys.readouterr().out


class TestSolve:
    @pytest.mark.parametrize(
        "algorithm",
        ["kk", "adversarial", "random-order", "element-sampling", "first-fit"],
    )
    def test_solves_with_each_algorithm(self, capsys, instance_file, algorithm):
        code = main(
            [
                "solve",
                instance_file,
                "--algorithm",
                algorithm,
                "--order",
                "random",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cover size" in out
        assert "cover:" in out

    def test_set_arrival_on_grouped_order(self, capsys, instance_file):
        code = main(
            [
                "solve",
                instance_file,
                "--algorithm",
                "set-arrival",
                "--order",
                "set-grouped",
            ]
        )
        assert code == 0

    def test_set_arrival_on_random_order_fails_gracefully(
        self, capsys, instance_file
    ):
        code = main(
            [
                "solve",
                instance_file,
                "--algorithm",
                "set-arrival",
                "--order",
                "random",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_alpha_option(self, capsys, instance_file):
        code = main(
            [
                "solve",
                instance_file,
                "--algorithm",
                "adversarial",
                "--alpha",
                "20",
            ]
        )
        assert code == 0

    def test_missing_file_errors(self):
        with pytest.raises(FileNotFoundError):
            main(["solve", "/nonexistent/file.txt"])


class TestDistribute:
    @pytest.mark.parametrize("coordinator", ["union", "greedy", "chain"])
    def test_distributes_with_each_coordinator(
        self, capsys, instance_file, coordinator
    ):
        code = main(
            [
                "distribute",
                instance_file,
                "--workers",
                "4",
                "--coordinator",
                coordinator,
                "--seed",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total comm words" in out
        assert "max message words" in out
        assert "per-shard:" in out
        assert "cover:" in out

    def test_output_identical_across_max_workers(self, capsys, instance_file):
        assert main(["distribute", instance_file, "--max-workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["distribute", instance_file, "--max-workers", "4"]) == 0
        threaded = capsys.readouterr().out
        assert serial == threaded

    def test_output_identical_across_backends(self, capsys, instance_file):
        """The backend is operational: identical stdout for every choice."""
        reports = {}
        for backend in ("serial", "thread", "process"):
            code = main(
                [
                    "distribute",
                    instance_file,
                    "--workers",
                    "4",
                    "--max-workers",
                    "4",
                    "--seed",
                    "7",
                    "--backend",
                    backend,
                ]
            )
            assert code == 0
            reports[backend] = capsys.readouterr().out
        assert reports["serial"] == reports["thread"]
        assert reports["serial"] == reports["process"]
        assert "cover:" in reports["serial"]

    def test_streaming_ingest_output_identical(self, capsys, instance_file):
        base = ["distribute", instance_file, "--workers", "3", "--seed", "4"]
        assert main(base + ["--ingest", "materialize"]) == 0
        materialized = capsys.readouterr().out
        assert (
            main(
                base
                + ["--ingest", "stream", "--chunk-size", "8", "--queue-depth", "2"]
            )
            == 0
        )
        streamed = capsys.readouterr().out
        assert materialized == streamed

    def test_comm_budget_violation_exits_nonzero(self, capsys, instance_file):
        code = main(
            ["distribute", instance_file, "--workers", "4", "--comm-budget", "1"]
        )
        assert code == 1
        assert "communication budget exceeded" in capsys.readouterr().err

    def test_strategy_and_order_options(self, capsys, instance_file):
        code = main(
            [
                "distribute",
                instance_file,
                "--strategy",
                "hash",
                "--coordinator",
                "union",
                "--order",
                "random",
                "--algorithm",
                "first-fit",
            ]
        )
        assert code == 0


class TestGenerateRoundTrip:
    @pytest.mark.parametrize(
        "workload", ["uniform", "planted", "zipf", "two-tier", "domset"]
    )
    def test_generate_then_solve(self, capsys, tmp_path, workload):
        path = str(tmp_path / f"{workload}.txt")
        code = main(
            [
                "generate",
                path,
                "--workload",
                workload,
                "--n",
                "40",
                "--m",
                "60",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        code = main(["solve", path, "--algorithm", "kk", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "valid" in out
        assert "cover:" in out

    def test_generate_then_distribute(self, capsys, tmp_path):
        path = str(tmp_path / "planted.txt")
        assert main(["generate", path, "--n", "40", "--m", "60"]) == 0
        capsys.readouterr()
        assert main(["distribute", path, "--workers", "4"]) == 0
        assert "valid" in capsys.readouterr().out


class TestChaos:
    def test_quick_sweep_holds_invariant(self, capsys):
        assert main(["chaos", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "chaos invariant holds" in out
        assert "outcomes:" in out

    def test_markdown_flag(self, capsys):
        assert main(["chaos", "--quick", "--markdown"]) == 0
        assert "|" in capsys.readouterr().out

    def test_policy_option(self, capsys):
        assert main(["chaos", "--quick", "--policy", "skip_bad_edges"]) == 0


class TestDistributeResilience:
    def test_unknown_coordinator_is_typed_error(self, capsys, instance_file):
        # No argparse choices= gate: an unknown coordinator flows to
        # make_coordinator and comes back as the same typed error an
        # unknown backend gets, naming the known registry.
        code = main(
            ["distribute", instance_file, "--coordinator", "bogus"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "coordinator" in err
        assert "known coordinators" in err
        assert "chain" in err and "greedy" in err and "union" in err

    def test_async_flags_parse(self):
        args = build_parser().parse_args(
            [
                "distribute",
                "x.txt",
                "--async-sim",
                "--schedule-seed",
                "9",
                "--default-delay",
                "2",
                "--crash",
                "0.3",
                "--straggle",
                "0.5",
                "--straggle-steps",
                "8",
                "--duplicate",
                "0.7",
                "--min-shards",
                "2",
                "--deadline-steps",
                "6",
                "--max-attempts",
                "4",
                "--backoff-steps",
                "2",
            ]
        )
        assert args.async_sim
        assert args.schedule_seed == 9
        assert args.crash == 0.3
        assert args.min_shards == 2
        assert args.deadline_steps == 6

    def test_async_sim_matches_sync_output_lines(self, capsys, instance_file):
        assert main(["distribute", instance_file, "--seed", "4"]) == 0
        sync_out = capsys.readouterr().out
        assert (
            main(
                [
                    "distribute",
                    instance_file,
                    "--seed",
                    "4",
                    "--async-sim",
                    "--schedule-seed",
                    "12",
                ]
            )
            == 0
        )
        async_out = capsys.readouterr().out
        assert "logical steps" in async_out

        # Semantic values agree: the cover and comm accounting are the
        # sync path's, the transport lines are extra.  (Column widths
        # differ, so compare values, not raw lines.)
        def value(text, prefix):
            for line in text.splitlines():
                if line.startswith(prefix):
                    return line[len(prefix):].strip()
            raise AssertionError(f"no line starts with {prefix!r}")

        for prefix in ("cover:", "total comm words", "max message words"):
            assert value(async_out, prefix) == value(sync_out, prefix)

    def test_crash_with_quorum_prints_degradation(self, capsys, instance_file):
        code = main(
            [
                "distribute",
                instance_file,
                "--workers",
                "4",
                "--seed",
                "3",
                "--crash",
                "0.6",
                "--min-shards",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded: shard[" in out
        assert "partial" in out

    def test_async_stream_ingest_rejected(self, capsys, instance_file):
        code = main(
            [
                "distribute",
                instance_file,
                "--async-sim",
                "--ingest",
                "stream",
            ]
        )
        assert code == 1
        assert "ingest" in capsys.readouterr().err

    def test_chaos_shards_flag(self, capsys):
        assert main(["chaos", "--shards", "--quick", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "shard-fault chaos" in out.lower() or "crash" in out
