"""Zero-copy shard shipping: lifecycle, leak safety, payload sizes.

Three contracts from ``repro/distributed/shmem.py``:

1. **Lifecycle** — segments round-trip their columns exactly, cleanup
   is idempotent and actually unlinks the backing file, and nothing is
   left registered for the atexit sweep afterwards.
2. **Leak safety** — a worker raising mid-shard (or the dispatch
   failing any other way) still leaves zero named segments behind; the
   parent's ``finally`` owns the unlink.
3. **O(descriptor) shipping** — a shipped :class:`ShardTask` pickles to
   a near-constant size however long the stream is, while the classic
   pickled-edges payload grows linearly; and the shipping mode is
   operational only (shared-memory and pickle dispatches produce
   dataclass-equal results).

Plus the :meth:`ShardAccumulator.feed_columns` fast path, which must
build byte-identical accumulator state to the scalar :meth:`feed`.
"""

from __future__ import annotations

import dataclasses
import pickle
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    ProcessBackend,
    build_shard_tasks,
    run_distributed,
)
from repro.distributed.shmem import (
    _LIVE_SEGMENTS,
    EdgeSegment,
    SpanView,
    measure_shipping,
    shared_memory_available,
    ship_tasks,
)
from repro.distributed.worker import ShardAccumulator
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.types import Edge

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no multiprocessing.shared_memory"
)

SHM_DIR = Path("/dev/shm")


def _named_segments():
    """Names of this package's segments currently backed in /dev/shm."""
    if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs platforms
        return set()
    return {p.name for p in SHM_DIR.glob("repro-*")}


@pytest.fixture(scope="module")
def instance():
    return planted_partition_instance(80, 40, opt_size=8, seed=11).instance


class TestSegmentLifecycle:
    def test_columns_round_trip(self):
        shards = [
            (np.array([3, 1, 4], dtype=np.int64), np.array([1, 5, 9], dtype=np.int64)),
            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)),
            (np.array([2, 7], dtype=np.int64), np.array([1, 8], dtype=np.int64)),
        ]
        segment = EdgeSegment.create(shards)
        try:
            assert len(segment.spans) == 3
            assert [s.length for s in segment.spans] == [3, 0, 2]
            assert [s.offset for s in segment.spans] == [0, 3, 3]
            assert all(s.total == 5 for s in segment.spans)
            for (set_ids, elements), span in zip(shards, segment.spans):
                view = SpanView(span)
                try:
                    assert view.set_ids.tolist() == set_ids.tolist()
                    assert view.elements.tolist() == elements.tolist()
                finally:
                    view.close()
        finally:
            segment.cleanup()

    def test_cleanup_unlinks_and_is_idempotent(self):
        segment = EdgeSegment.create(
            [(np.array([1], dtype=np.int64), np.array([2], dtype=np.int64))]
        )
        name = segment.name
        assert name in _LIVE_SEGMENTS
        if SHM_DIR.is_dir():
            assert name in _named_segments()
        segment.cleanup()
        segment.cleanup()  # idempotent
        assert name not in _LIVE_SEGMENTS
        assert name not in _named_segments()

    def test_zero_length_span_attaches_nothing(self):
        segment = EdgeSegment.create(
            [(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))]
        )
        try:
            view = SpanView(segment.spans[0])
            assert len(view.set_ids) == 0
            assert len(view.elements) == 0
            view.close()
            view.close()  # idempotent
        finally:
            segment.cleanup()

    def test_view_close_releases_mapping(self):
        segment = EdgeSegment.create(
            [(np.array([5, 6], dtype=np.int64), np.array([7, 8], dtype=np.int64))]
        )
        try:
            view = SpanView(segment.spans[0])
            view.close()
            # After close the views are detached placeholders.
            assert len(view.set_ids) == 0
        finally:
            segment.cleanup()


class TestShipTasks:
    def test_spans_partition_the_stream(self, instance):
        tasks = build_shard_tasks(instance, workers=4, seed=0)
        total = sum(len(t.edges) for t in tasks)
        shipped, segment = ship_tasks(tasks)
        assert segment is not None
        try:
            assert all(t.edges == () for t in shipped)
            assert all(t.span is not None for t in shipped)
            assert sum(t.span.length for t in shipped) == total
            # Shipped edges read back equal to the originals, in order.
            for original, task in zip(tasks, shipped):
                view = SpanView(task.span)
                try:
                    pairs = list(
                        zip(view.set_ids.tolist(), view.elements.tolist())
                    )
                    assert pairs == [tuple(e) for e in original.edges]
                finally:
                    view.close()
        finally:
            segment.cleanup()

    def test_fallback_returns_tasks_unchanged(self, instance, monkeypatch):
        import repro.distributed.shmem as shmem

        monkeypatch.setattr(shmem, "_shared_memory", None)
        tasks = build_shard_tasks(instance, workers=3, seed=1)
        shipped, segment = ship_tasks(tasks)
        assert segment is None
        assert shipped == list(tasks)

    def test_pickled_task_is_descriptor_sized(self):
        # The regression this suite exists for: a shipped task's pickle
        # must stay O(descriptor) as the stream grows, while the classic
        # payload grows with it.  (n, m) are held fixed — the task's
        # set_order legitimately scales with m, but never with edges.
        sizes = []
        for set_size in (4, 40):
            inst = fixed_size_instance(200, 300, set_size, seed=3)
            tasks = build_shard_tasks(inst, workers=2, seed=3)
            shipped, segment = ship_tasks(tasks)
            assert segment is not None
            try:
                plain = max(
                    len(pickle.dumps(t, pickle.HIGHEST_PROTOCOL))
                    for t in tasks
                )
                slim = max(
                    len(pickle.dumps(t, pickle.HIGHEST_PROTOCOL))
                    for t in shipped
                )
                sizes.append((plain, slim))
            finally:
                segment.cleanup()
        (small_plain, small_slim), (large_plain, large_slim) = sizes
        assert large_plain > 4 * small_plain  # payload grows with stream
        assert abs(large_slim - small_slim) < 128  # descriptor stays flat
        assert large_slim < large_plain / 10

    def test_measure_shipping_reports(self, instance):
        tasks = build_shard_tasks(instance, workers=4, seed=0)
        report = measure_shipping(tasks, "pickle")
        assert report.mode == "pickle"
        assert report.tasks == 4
        assert report.stream_edges == instance.num_edges
        assert report.total_task_bytes == sum(report.task_bytes)
        assert report.max_task_bytes == max(report.task_bytes)
        shipped, segment = ship_tasks(tasks)
        assert segment is not None
        try:
            shm_report = measure_shipping(shipped, "shared-memory", segment)
            assert shm_report.stream_edges == instance.num_edges
            assert shm_report.segment_bytes == segment.nbytes
            assert shm_report.total_task_bytes < report.total_task_bytes
        finally:
            segment.cleanup()


class TestLeakSafety:
    def test_crashing_worker_leaves_no_segments(self, instance):
        # A task whose algorithm cannot resolve raises inside the child;
        # the parent's finally must still unlink the dispatch's segment.
        tasks = [
            dataclasses.replace(task, algorithm="no-such-algorithm")
            for task in build_shard_tasks(instance, workers=2, seed=0)
        ]
        before = _named_segments()
        backend = ProcessBackend(use_shared_memory=True)
        with pytest.raises(Exception):
            backend.run_tasks(tasks, max_workers=2)
        assert _named_segments() == before
        assert not _LIVE_SEGMENTS

    def test_successful_dispatch_leaves_no_segments(self, instance):
        tasks = build_shard_tasks(instance, workers=2, algorithm="kk", seed=5)
        before = _named_segments()
        backend = ProcessBackend(use_shared_memory=True)
        envelopes = backend.run_tasks(tasks, max_workers=2)
        assert len(envelopes) == 2
        assert backend.last_shipping is not None
        assert backend.last_shipping.mode == "shared-memory"
        assert _named_segments() == before
        assert not _LIVE_SEGMENTS


class TestShippingModeIsOperational:
    def test_shm_and_pickle_results_equal(self, instance, monkeypatch):
        kwargs = dict(
            workers=4, algorithm="kk", seed=29, backend="process",
            max_workers=2,
        )
        monkeypatch.delenv("REPRO_SHM", raising=False)
        shm = run_distributed(instance, **kwargs)
        monkeypatch.setenv("REPRO_SHM", "0")
        pickled = run_distributed(instance, **kwargs)
        assert shm == pickled
        assert shm.shipping is not None and shm.shipping.mode == "shared-memory"
        assert pickled.shipping is not None and pickled.shipping.mode == "pickle"
        assert (
            shm.shipping.max_task_bytes < pickled.shipping.max_task_bytes
        )

    def test_env_switch_controls_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert ProcessBackend().use_shared_memory is False
        monkeypatch.setenv("REPRO_SHM", "1")
        assert ProcessBackend().use_shared_memory is True
        monkeypatch.delenv("REPRO_SHM")
        assert ProcessBackend().use_shared_memory is True

    def test_inline_dispatch_ships_nothing(self, instance):
        tasks = build_shard_tasks(instance, workers=3, seed=2)
        backend = ProcessBackend(use_shared_memory=True)
        backend.run_tasks(tasks, max_workers=1)
        assert backend.last_shipping is None


EDGES = st.lists(
    st.tuples(st.integers(-2, 12), st.integers(-2, 15)), max_size=80
)


class TestFeedColumnsEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(pairs=EDGES, buffer_raw=st.booleans())
    def test_matches_scalar_feed(self, pairs, buffer_raw):
        edges = [Edge(s, u) for s, u in pairs]
        set_ids = np.array([s for s, _ in pairs], dtype=np.int64)
        elements = np.array([u for _, u in pairs], dtype=np.int64)
        scalar = ShardAccumulator(0, n=16, m=13, buffer_raw=buffer_raw)
        vector = ShardAccumulator(0, n=16, m=13, buffer_raw=buffer_raw)
        scalar.feed(edges)
        # Feed in two chunks to exercise cross-chunk first-appearance.
        half = len(pairs) // 2
        vector.feed_columns(set_ids[:half], elements[:half])
        vector.feed_columns(set_ids[half:], elements[half:])
        assert vector.edges_fed == scalar.edges_fed
        assert vector.raw == scalar.raw
        assert vector.clean == scalar.clean
        assert vector.dropped == scalar.dropped
        assert vector.set_ids == scalar.set_ids
        assert vector.members_by_set == scalar.members_by_set


class TestShipTasksCleanupPaths:
    """Regressions for the create-to-rewrite window and the atexit sweep."""

    def test_rewrite_failure_cleans_segment_promptly(
        self, instance, monkeypatch
    ):
        # If the task rewrite between segment creation and return blows
        # up, the brand-new segment must be unlinked on the spot — not
        # parked in the registry until the atexit sweep.
        from repro.distributed import shmem

        tasks = build_shard_tasks(instance, workers=3, seed=5)
        before = _named_segments()

        def broken_replace(*args, **kwargs):
            raise RuntimeError("rewrite failed")

        monkeypatch.setattr(shmem, "replace", broken_replace)
        with pytest.raises(RuntimeError, match="rewrite failed"):
            ship_tasks(tasks)
        assert _named_segments() == before
        assert not shmem._LIVE_SEGMENTS

    def test_atexit_sweep_survives_a_failing_cleanup(self, instance):
        # One segment whose cleanup raises must not abort the sweep:
        # the remaining live segments still get unlinked, and the bad
        # handle is dropped from the registry so a second sweep is a
        # no-op instead of a re-raise.
        from repro.distributed import shmem

        tasks = build_shard_tasks(instance, workers=2, seed=6)
        _, first = ship_tasks(tasks)
        _, second = ship_tasks(tasks)
        assert first is not None and second is not None

        original_cleanup = first.cleanup
        calls = {"count": 0}

        def failing_cleanup():
            calls["count"] += 1
            raise OSError("unlink refused")

        first.cleanup = failing_cleanup
        try:
            shmem._cleanup_live_segments()
            assert calls["count"] == 1
            assert first.name not in shmem._LIVE_SEGMENTS
            assert second.name not in _named_segments()
            # Second sweep: the failing handle is gone, nothing raises.
            shmem._cleanup_live_segments()
            assert calls["count"] == 1
        finally:
            first.cleanup = original_cleanup
            first.cleanup()
        assert first.name not in _named_segments()
        assert not shmem._LIVE_SEGMENTS

    def test_unlink_failure_does_not_block_later_segments(self, instance):
        # The ISSUE scenario verbatim: a segment whose *unlink* raises
        # mid-sweep must not prevent later live segments from being
        # unlinked.  The sweep snapshots the live set up front, so the
        # failing segment's own registry mutation (cleanup pops itself
        # before unlinking) cannot perturb the iteration either.
        from repro.distributed import shmem

        tasks = build_shard_tasks(instance, workers=2, seed=8)
        _, first = ship_tasks(tasks)
        _, second = ship_tasks(tasks)
        assert first is not None and second is not None

        real_unlink = first._shm.unlink

        def refusing_unlink():
            raise OSError("unlink refused")

        first._shm.unlink = refusing_unlink
        try:
            shmem._cleanup_live_segments()
        finally:
            first._shm.unlink = real_unlink
        # The later segment was unlinked despite the earlier failure,
        # and no handle lingers to make a second sweep re-raise.
        assert second.name not in _named_segments()
        assert not shmem._LIVE_SEGMENTS
        shmem._cleanup_live_segments()  # no-op, nothing raises
        real_unlink()  # reclaim the segment the fault left behind
        assert first.name not in _named_segments()

    def test_failed_cleanup_drop_is_by_identity(self, instance):
        # The sweep drops a failed segment's handle by *identity*; a
        # different live segment that happens to sit under the failing
        # segment's name (shm name reuse) must survive the drop.
        from repro.distributed import shmem

        tasks = build_shard_tasks(instance, workers=2, seed=9)
        _, failing = ship_tasks(tasks)
        _, survivor = ship_tasks(tasks)
        assert failing is not None and survivor is not None

        def boom():
            raise OSError("unlink refused")

        failing.cleanup = boom
        # Simulate name reuse: the survivor owns the failing segment's
        # original name slot; the failing handle sits under a stale key.
        shmem._LIVE_SEGMENTS.pop(failing.name)
        shmem._LIVE_SEGMENTS.pop(survivor.name)
        stale_key = "stale:" + failing.name
        shmem._LIVE_SEGMENTS[stale_key] = failing
        shmem._LIVE_SEGMENTS[failing.name] = survivor
        try:
            shmem._cleanup_live_segments()
            # The stale alias holding the failing handle is gone, and a
            # pop-by-name sweep would have evicted the survivor's
            # reused-name entry instead — it must still be there.
            assert stale_key not in shmem._LIVE_SEGMENTS
            assert shmem._LIVE_SEGMENTS.get(failing.name) is survivor
            # The survivor itself was still swept (snapshot iteration).
            assert survivor.name not in _named_segments()
        finally:
            del failing.cleanup
            shmem._LIVE_SEGMENTS.clear()
            failing.cleanup()
            survivor.cleanup()
        assert not shmem._LIVE_SEGMENTS
