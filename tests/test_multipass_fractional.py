"""Tests for the multi-pass fractional MWU algorithm and rounding."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, InvalidCoverError
from repro.generators.planted import planted_partition_instance
from repro.generators.random_instances import fixed_size_instance
from repro.multipass import (
    FractionalCover,
    FractionalMWU,
    randomized_rounding,
)
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream


class TestFractionalCover:
    def test_value(self):
        cover = FractionalCover({0: 0.5, 3: 1.5})
        assert cover.value == 2.0

    def test_coverage_of(self, tiny_instance):
        cover = FractionalCover({0: 0.5, 1: 0.25})
        # element 1 is in sets 0 and 1.
        assert cover.coverage_of(tiny_instance, 1) == pytest.approx(0.75)

    def test_min_coverage(self, tiny_instance):
        cover = FractionalCover({0: 1.0, 1: 1.0, 2: 1.0})
        # element 0 only in set 0 -> coverage 1.
        assert cover.min_coverage(tiny_instance) == pytest.approx(1.0)

    def test_scaling_to_feasible(self, tiny_instance):
        cover = FractionalCover({0: 0.5, 2: 0.5})
        scaled = cover.scaled_to_feasible(tiny_instance)
        assert scaled.min_coverage(tiny_instance) >= 1.0 - 1e-9
        assert scaled.value == pytest.approx(2.0)

    def test_scaling_rejects_zero_floor(self, tiny_instance):
        cover = FractionalCover({0: 1.0})  # elements 2, 3 untouched
        with pytest.raises(InvalidCoverError):
            cover.scaled_to_feasible(tiny_instance)

    def test_already_feasible_untouched(self, tiny_instance):
        cover = FractionalCover({0: 2.0, 2: 2.0})
        scaled = cover.scaled_to_feasible(tiny_instance)
        assert scaled.value == pytest.approx(4.0)


class TestFractionalMWU:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            FractionalMWU(increments=0)
        with pytest.raises(ConfigurationError):
            FractionalMWU(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            FractionalMWU(epsilon=1.0)

    def test_fractional_solution_feasible(self):
        instance = fixed_size_instance(30, 60, set_size=6, seed=1)
        replayable = ReplayableStream(instance, RandomOrder(seed=1))
        algorithm = FractionalMWU(increments=20, seed=1)
        fractional = algorithm.solve_fractional(replayable)
        assert fractional.min_coverage(instance) >= 1.0 - 1e-9

    def test_integral_run_valid(self):
        instance = fixed_size_instance(30, 60, set_size=6, seed=2)
        replayable = ReplayableStream(instance, RandomOrder(seed=2))
        result = FractionalMWU(increments=16, seed=2).run(replayable)
        result.verify(instance)

    def test_few_increments_still_valid_via_patching(self):
        instance = fixed_size_instance(40, 80, set_size=4, seed=3)
        replayable = ReplayableStream(instance, RandomOrder(seed=3))
        result = FractionalMWU(increments=2, seed=3).run(replayable)
        result.verify(instance)

    def test_diagnostics(self):
        instance = fixed_size_instance(20, 40, set_size=5, seed=4)
        replayable = ReplayableStream(instance, RandomOrder(seed=4))
        result = FractionalMWU(increments=8, seed=4).run(replayable)
        for key in ("increments", "epsilon", "fractional_value", "support_size"):
            assert key in result.diagnostics

    def test_fractional_value_reasonable(self):
        """Scaled value stays within O(log n/ε) of the planted optimum."""
        planted = planted_partition_instance(60, 120, opt_size=6, seed=5)
        replayable = ReplayableStream(planted.instance, RandomOrder(seed=5))
        algorithm = FractionalMWU(increments=40, epsilon=0.5, seed=5)
        fractional = algorithm.solve_fractional(replayable)
        bound = planted.opt_upper_bound * (math.log(60) / 0.5 + 2)
        assert fractional.value <= bound

    def test_deterministic(self):
        instance = fixed_size_instance(20, 40, set_size=5, seed=6)
        replayable = ReplayableStream(instance, RandomOrder(seed=6))
        a = FractionalMWU(increments=8, seed=6).run(replayable)
        b = FractionalMWU(increments=8, seed=6).run(replayable)
        assert a.cover == b.cover


class TestRandomizedRounding:
    def test_rounds_to_cover(self, tiny_instance):
        fractional = FractionalCover({0: 1.0, 2: 1.0})
        cover = randomized_rounding(fractional, tiny_instance, seed=1)
        assert tiny_instance.is_cover(cover)

    def test_patches_missed_elements(self, tiny_instance):
        # Support misses element 3 entirely with low probability draws;
        # patching guarantees a cover regardless.
        fractional = FractionalCover({0: 1.0})
        cover = randomized_rounding(fractional, tiny_instance, seed=2)
        assert tiny_instance.is_cover(cover)

    def test_rejects_empty(self, tiny_instance):
        with pytest.raises(InvalidCoverError):
            randomized_rounding(FractionalCover(), tiny_instance, seed=3)

    def test_expected_size_scales_with_value(self, star_instance):
        fractional = FractionalCover({0: 1.0})
        cover = randomized_rounding(fractional, star_instance, seed=4)
        assert cover == {0}

    def test_deterministic_under_seed(self, tiny_instance):
        fractional = FractionalCover({0: 1.0, 1: 0.5, 2: 1.0})
        a = randomized_rounding(fractional, tiny_instance, seed=5)
        b = randomized_rounding(fractional, tiny_instance, seed=5)
        assert a == b
