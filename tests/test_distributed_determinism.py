"""The distributed determinism contract: ``max_workers`` changes nothing.

``workers`` (the shard count) is semantic; ``max_workers`` (the real
thread count) is operational.  Every field of the
:class:`DistributedResult` — cover, certificate, comm report, per-shard
space reports — and every byte of the collected trace must be identical
whether the shards ran serially or on a pool.
"""

from __future__ import annotations

import pytest

from repro.distributed import run_distributed
from repro.distributed.router import STRATEGIES
from repro.faults.injectors import FaultSpec
from repro.generators.planted import planted_partition_instance
from repro.obs.tracer import TraceCollector


@pytest.fixture
def instance():
    return planted_partition_instance(60, 48, opt_size=6, seed=13).instance


class TestMaxWorkersInvariance:
    @pytest.mark.parametrize("coordinator", ["union", "greedy", "chain"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_result_bit_identical(self, instance, strategy, coordinator):
        kwargs = dict(
            workers=4,
            algorithm="kk",
            strategy=strategy,
            coordinator=coordinator,
            seed=21,
        )
        serial = run_distributed(instance, max_workers=1, **kwargs)
        threaded = run_distributed(instance, max_workers=4, **kwargs)
        oversub = run_distributed(instance, max_workers=16, **kwargs)
        assert serial == threaded
        assert serial == oversub

    def test_result_identical_under_faults(self, instance):
        kwargs = dict(
            workers=4,
            coordinator="union",
            seed=3,
            faults=[
                FaultSpec(kind="drop", rate=0.1, seed=5),
                FaultSpec(kind="duplicate", rate=0.1, seed=6),
            ],
        )
        serial = run_distributed(instance, max_workers=1, **kwargs)
        threaded = run_distributed(instance, max_workers=4, **kwargs)
        assert serial == threaded

    def test_traces_byte_identical(self, instance):
        jsonls = []
        for max_workers in (1, 4):
            collector = TraceCollector()
            run_distributed(
                instance,
                workers=4,
                coordinator="chain",
                seed=7,
                max_workers=max_workers,
                collector=collector,
            )
            jsonls.append(collector.to_jsonl())
        assert jsonls[0] == jsonls[1]

    def test_trace_has_shard_and_merge_cells(self, instance):
        collector = TraceCollector()
        run_distributed(
            instance,
            workers=3,
            coordinator="chain",
            seed=7,
            collector=collector,
        )
        labels = collector.labels()
        assert "merge" in labels
        assert [x for x in labels if x.startswith("shard[")] == [
            "shard[000]",
            "shard[001]",
            "shard[002]",
        ]

    def test_repeated_runs_identical(self, instance):
        kwargs = dict(workers=4, coordinator="greedy", seed=17, max_workers=4)
        assert run_distributed(instance, **kwargs) == run_distributed(
            instance, **kwargs
        )

    def test_seed_changes_result(self, instance):
        a = run_distributed(instance, workers=4, seed=1)
        b = run_distributed(instance, workers=4, seed=2)
        # The partition differs, so shard reports must differ (cover
        # equality could coincide; the full dataclass cannot).
        assert a != b

    def test_workers_is_semantic(self, instance):
        # Different W genuinely changes the computation (tau = sqrt(n/W)).
        a = run_distributed(instance, workers=2, coordinator="chain", seed=5)
        b = run_distributed(instance, workers=6, coordinator="chain", seed=5)
        assert a.comm != b.comm
