"""Legacy setup shim.

The environment has no ``wheel`` package available offline, so PEP-517
editable installs fail; this shim lets ``pip install -e . --no-use-pep517``
work.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
