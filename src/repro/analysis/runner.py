"""Experiment runner: algorithms × instances × orders × seeds.

:class:`ExperimentRunner` freezes a stream per (instance, order, seed)
triple via :class:`ReplayableStream`, so every algorithm in a
comparison sees the identical edge sequence, then collects
:class:`RunMetrics` rows ready for the table renderer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunMetrics, metrics_from_result
from repro.analysis.opt import opt_or_bound
from repro.core.base import StreamingSetCoverAlgorithm
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import ArrivalOrder, make_order
from repro.streaming.stream import ReplayableStream
from repro.types import SeedLike, make_rng

AlgorithmFactory = Callable[[int], StreamingSetCoverAlgorithm]
"""Build a fresh algorithm from an integer seed."""


@dataclass
class RunSpec:
    """One cell of an experiment grid."""

    instance: SetCoverInstance
    order_name: str
    algorithm_name: str
    opt_handle: Optional[int] = None  # planted OPT if known


class ExperimentRunner:
    """Runs a grid of algorithms over instances and arrival orders.

    Parameters
    ----------
    algorithms:
        Mapping ``name -> factory(seed)``.
    seed:
        Master seed; per-run seeds are derived deterministically.
    """

    def __init__(
        self,
        algorithms: Dict[str, AlgorithmFactory],
        seed: SeedLike = None,
    ) -> None:
        if not algorithms:
            raise ValueError("need at least one algorithm")
        self.algorithms = dict(algorithms)
        self._rng = make_rng(seed)

    def run_one(
        self,
        instance: SetCoverInstance,
        order_name: str,
        algorithm_name: str,
        opt_handle: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> RunMetrics:
        """Run a single algorithm on a single ordered stream."""
        seed = seed if seed is not None else self._rng.getrandbits(63)
        order = make_order(order_name, seed=seed)
        replayable = ReplayableStream(instance, order)
        return self._execute(
            replayable, algorithm_name, opt_handle=opt_handle, seed=seed
        )

    def compare(
        self,
        instance: SetCoverInstance,
        order_name: str,
        opt_handle: Optional[int] = None,
        replications: int = 1,
    ) -> List[RunMetrics]:
        """All algorithms on identical streams, ``replications`` times."""
        rows: List[RunMetrics] = []
        for _ in range(replications):
            seed = self._rng.getrandbits(63)
            order = make_order(order_name, seed=seed)
            replayable = ReplayableStream(instance, order)
            for name in self.algorithms:
                rows.append(
                    self._execute(
                        replayable, name, opt_handle=opt_handle, seed=seed
                    )
                )
        return rows

    def sweep_instances(
        self,
        instances: Sequence[Tuple[SetCoverInstance, Optional[int]]],
        order_name: str,
        replications: int = 1,
    ) -> List[RunMetrics]:
        """All algorithms across ``(instance, planted_opt)`` pairs."""
        rows: List[RunMetrics] = []
        for instance, opt_handle in instances:
            rows.extend(
                self.compare(
                    instance,
                    order_name,
                    opt_handle=opt_handle,
                    replications=replications,
                )
            )
        return rows

    # -- internals -------------------------------------------------------

    def _execute(
        self,
        replayable: ReplayableStream,
        algorithm_name: str,
        opt_handle: Optional[int],
        seed: int,
    ) -> RunMetrics:
        factory = self.algorithms[algorithm_name]
        algorithm = factory(seed)
        stream = replayable.fresh()
        result = algorithm.run(stream)
        instance = replayable.instance
        if opt_handle is not None:
            handle, exact = opt_handle, True
        else:
            handle, exact = opt_or_bound(instance)
        return metrics_from_result(
            result,
            instance,
            order=replayable.order_name,
            opt_handle=handle,
            opt_is_exact=exact,
            stream_length=replayable.length,
            seed=seed,
        )
