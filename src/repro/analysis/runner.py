"""Experiment runner: algorithms × instances × orders × seeds.

:class:`ExperimentRunner` freezes a stream per (instance, order, seed)
triple via :class:`ReplayableStream`, so every algorithm in a
comparison sees the identical edge sequence, then collects
:class:`RunMetrics` rows ready for the table renderer.

Resilience plumbing (all opt-in, zero cost when unused):

* ``retries`` — a failed cell re-executes up to that many extra times.
  The first retry reuses the cell's own seed (a *transient* worker
  failure therefore reproduces the uninterrupted serial result
  bit-identically); later retries derive fresh deterministic seeds,
  since a seed that failed twice is failing deterministically.
* ``timeout`` — cooperative per-run wall-clock bound; a run that
  finishes over budget raises :class:`~repro.errors.RunTimeoutError`.
* ``journal`` — path to a JSONL checkpoint; completed cells are flushed
  as they finish and a resumed sweep loads them back bit-identically,
  executing only the missing cells.
* any exception escaping a worker is re-raised as
  :class:`~repro.errors.ExperimentExecutionError` carrying the failing
  spec's full context (algorithm, order, instance, seed, grid index),
  never a bare thread-pool traceback.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Lock
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.journal import PathLike, SweepJournal, spec_fingerprint
from repro.analysis.metrics import RunMetrics, metrics_from_result
from repro.analysis.opt import opt_or_bound
from repro.core.base import StreamingSetCoverAlgorithm
from repro.errors import ExperimentExecutionError, RunTimeoutError
from repro.obs.tracer import TraceCollector
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import make_order
from repro.streaming.stream import ReplayableStream
from repro.types import SeedLike, make_rng

AlgorithmFactory = Callable[[int], StreamingSetCoverAlgorithm]
"""Build a fresh algorithm from an integer seed."""

#: Odd 63-bit multiplier (splitmix64's constant) for retry-seed derivation.
_SEED_MIX = 0x9E3779B97F4A7C15


def derive_retry_seed(seed: int, attempt: int) -> int:
    """Seed for retry ``attempt`` of a cell whose spec seed is ``seed``.

    Attempts 0 and 1 return ``seed`` unchanged — a transient failure
    retried once reproduces the uninterrupted run exactly.  From the
    second retry on, the seed is remixed deterministically: the original
    seed has now failed twice, so it is presumed deterministically bad.
    The remix is guaranteed to differ from ``seed`` — a fixed point
    would silently replay the failing seed forever.
    """
    if attempt <= 1:
        return seed
    derived = ((seed ^ (attempt * _SEED_MIX)) * _SEED_MIX + attempt) % (2**63)
    while derived == seed:
        derived = (derived * _SEED_MIX + 1) % (2**63)
    return derived


@dataclass
class RunSpec:
    """One cell of an experiment grid."""

    instance: SetCoverInstance
    order_name: str
    algorithm_name: str
    opt_handle: Optional[int] = None  # planted OPT if known


class ExperimentRunner:
    """Runs a grid of algorithms over instances and arrival orders.

    Parameters
    ----------
    algorithms:
        Mapping ``name -> factory(seed)``.
    seed:
        Master seed; per-run seeds are derived deterministically.
    collector:
        Optional :class:`~repro.obs.tracer.TraceCollector`; when given,
        every run gets a fresh recording tracer keyed by a
        deterministic cell label, and the merged JSONL is byte-identical
        whatever ``max_workers`` is (labels sort the merge; a retried
        cell's last attempt wins because ``tracer_for`` replaces the
        cell's tracer).
    """

    def __init__(
        self,
        algorithms: Dict[str, AlgorithmFactory],
        seed: SeedLike = None,
        collector: Optional[TraceCollector] = None,
    ) -> None:
        if not algorithms:
            raise ValueError("need at least one algorithm")
        self.algorithms = dict(algorithms)
        self._rng = make_rng(seed)
        self._collector = collector
        # Test hook: called as (spec_index, attempt) before each cell
        # attempt; raising from it simulates a worker failure.
        self._fault_hook: Optional[Callable[[int, int], None]] = None

    def run_one(
        self,
        instance: SetCoverInstance,
        order_name: str,
        algorithm_name: str,
        opt_handle: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> RunMetrics:
        """Run a single algorithm on a single ordered stream."""
        seed = seed if seed is not None else self._rng.getrandbits(63)
        order = make_order(order_name, seed=seed)
        replayable = ReplayableStream(instance, order)
        return self._execute(
            replayable,
            algorithm_name,
            opt_handle=opt_handle,
            seed=seed,
            trace_label=f"single:{algorithm_name}",
        )

    def compare(
        self,
        instance: SetCoverInstance,
        order_name: str,
        opt_handle: Optional[int] = None,
        replications: int = 1,
        max_workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        journal: Optional[PathLike] = None,
    ) -> List[RunMetrics]:
        """All algorithms on identical streams, ``replications`` times.

        With ``max_workers > 1`` the runs execute on a thread pool.  The
        per-replication seeds are drawn up front in the same order the
        serial path draws them, every run gets its own algorithm
        instance and one-pass stream view over the shared frozen edge
        buffer, and rows are collected in submission order — so the
        result is *identical* to ``max_workers=1`` for a fixed master
        seed, whatever the pool's scheduling.  ``timeout`` / ``retries``
        / ``journal`` are the resilience knobs described in the module
        docstring.
        """
        specs = self._build_specs(instance, order_name, opt_handle, replications)
        return self._execute_specs(
            specs, max_workers, timeout=timeout, retries=retries, journal=journal
        )

    def sweep_instances(
        self,
        instances: Sequence[Tuple[SetCoverInstance, Optional[int]]],
        order_name: str,
        replications: int = 1,
        max_workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        journal: Optional[PathLike] = None,
    ) -> List[RunMetrics]:
        """All algorithms across ``(instance, planted_opt)`` pairs.

        ``max_workers`` parallelises the whole grid (not one instance at
        a time) with the same determinism guarantee as :meth:`compare`.
        """
        specs: List[Tuple[ReplayableStream, str, Optional[int], int]] = []
        for instance, opt_handle in instances:
            specs.extend(
                self._build_specs(instance, order_name, opt_handle, replications)
            )
        return self._execute_specs(
            specs, max_workers, timeout=timeout, retries=retries, journal=journal
        )

    # -- internals -------------------------------------------------------

    def _build_specs(
        self,
        instance: SetCoverInstance,
        order_name: str,
        opt_handle: Optional[int],
        replications: int,
    ) -> List[Tuple[ReplayableStream, str, Optional[int], int]]:
        """Draw seeds and freeze streams for one comparison, serially.

        All randomness is consumed here, before any (possibly
        concurrent) execution, which is what makes the parallel path
        bit-identical to the serial one.
        """
        specs: List[Tuple[ReplayableStream, str, Optional[int], int]] = []
        for _ in range(replications):
            seed = self._rng.getrandbits(63)
            order = make_order(order_name, seed=seed)
            replayable = ReplayableStream(instance, order)
            for name in self.algorithms:
                specs.append((replayable, name, opt_handle, seed))
        return specs

    def _execute_specs(
        self,
        specs: Sequence[Tuple[ReplayableStream, str, Optional[int], int]],
        max_workers: int,
        timeout: Optional[float] = None,
        retries: int = 0,
        journal: Optional[PathLike] = None,
    ) -> List[RunMetrics]:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        store = SweepJournal(journal) if journal is not None else None
        journal_lock = Lock()
        results: List[Optional[RunMetrics]] = [None] * len(specs)
        pending: List[int] = []
        for index in range(len(specs)):
            row = store.get(self._fingerprint(index, specs[index])) if store else None
            if row is not None:
                results[index] = row
            else:
                pending.append(index)

        def run_cell(index: int) -> RunMetrics:
            metrics = self._execute_with_recovery(
                index, specs[index], timeout=timeout, retries=retries
            )
            if store is not None:
                # Flushed the moment the cell completes, so a killed
                # sweep resumes from every finished cell.
                with journal_lock:
                    store.record(self._fingerprint(index, specs[index]), metrics)
            return metrics

        if max_workers == 1 or len(pending) <= 1:
            for index in pending:
                results[index] = run_cell(index)
        else:
            # Pre-build the shared numpy columns serially: worker threads
            # then only read the frozen buffers.
            for index in pending:
                specs[index][0]._frozen.columns()
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [pool.submit(run_cell, index) for index in pending]
                for index, future in zip(pending, futures):
                    results[index] = future.result()
        return results  # type: ignore[return-value]  # every slot filled above

    def _fingerprint(
        self, index: int, spec: Tuple[ReplayableStream, str, Optional[int], int]
    ) -> str:
        replayable, name, _, seed = spec
        instance = replayable.instance
        return spec_fingerprint(
            index,
            name,
            replayable.order_name,
            seed,
            instance.n,
            instance.m,
            instance.num_edges,
        )

    def _execute_with_recovery(
        self,
        index: int,
        spec: Tuple[ReplayableStream, str, Optional[int], int],
        timeout: Optional[float],
        retries: int,
    ) -> RunMetrics:
        replayable, name, opt_handle, seed = spec
        context = (
            f"algorithm={name!r} order={replayable.order_name!r} "
            f"seed={seed} spec_index={index}"
        )
        last_error: Optional[BaseException] = None
        for attempt in range(retries + 1):
            try:
                if self._fault_hook is not None:
                    self._fault_hook(index, attempt)
                started = time.perf_counter()
                metrics = self._execute(
                    replayable,
                    name,
                    opt_handle=opt_handle,
                    seed=derive_retry_seed(seed, attempt),
                    trace_label=f"{index:05d}:{name}",
                )
                elapsed = time.perf_counter() - started
                if timeout is not None and elapsed > timeout:
                    raise RunTimeoutError(
                        context=context, elapsed=elapsed, timeout=timeout
                    )
                return metrics
            except RunTimeoutError:
                # A timed-out run is slow, not flaky: retrying would
                # just double the damage.
                raise
            except Exception as error:  # noqa: BLE001 — wrapped below
                last_error = error
        assert last_error is not None
        raise ExperimentExecutionError(
            algorithm=name,
            order=replayable.order_name,
            instance=repr(replayable.instance),
            seed=seed,
            spec_index=index,
            attempts=retries + 1,
            cause=last_error,
        ) from last_error

    def _execute(
        self,
        replayable: ReplayableStream,
        algorithm_name: str,
        opt_handle: Optional[int],
        seed: int,
        trace_label: str = "",
    ) -> RunMetrics:
        factory = self.algorithms[algorithm_name]
        algorithm = factory(seed)
        if self._collector is not None:
            algorithm.set_tracer(self._collector.tracer_for(trace_label))
        stream = replayable.fresh()
        result = algorithm.run(stream)
        instance = replayable.instance
        if opt_handle is not None:
            handle, exact = opt_handle, True
        else:
            handle, exact = opt_or_bound(instance)
        return metrics_from_result(
            result,
            instance,
            order=replayable.order_name,
            opt_handle=handle,
            opt_is_exact=exact,
            stream_length=replayable.length,
            seed=seed,
        )
