"""Experiment runner: algorithms × instances × orders × seeds.

:class:`ExperimentRunner` freezes a stream per (instance, order, seed)
triple via :class:`ReplayableStream`, so every algorithm in a
comparison sees the identical edge sequence, then collects
:class:`RunMetrics` rows ready for the table renderer.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunMetrics, metrics_from_result
from repro.analysis.opt import opt_or_bound
from repro.core.base import StreamingSetCoverAlgorithm
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import make_order
from repro.streaming.stream import ReplayableStream
from repro.types import SeedLike, make_rng

AlgorithmFactory = Callable[[int], StreamingSetCoverAlgorithm]
"""Build a fresh algorithm from an integer seed."""


@dataclass
class RunSpec:
    """One cell of an experiment grid."""

    instance: SetCoverInstance
    order_name: str
    algorithm_name: str
    opt_handle: Optional[int] = None  # planted OPT if known


class ExperimentRunner:
    """Runs a grid of algorithms over instances and arrival orders.

    Parameters
    ----------
    algorithms:
        Mapping ``name -> factory(seed)``.
    seed:
        Master seed; per-run seeds are derived deterministically.
    """

    def __init__(
        self,
        algorithms: Dict[str, AlgorithmFactory],
        seed: SeedLike = None,
    ) -> None:
        if not algorithms:
            raise ValueError("need at least one algorithm")
        self.algorithms = dict(algorithms)
        self._rng = make_rng(seed)

    def run_one(
        self,
        instance: SetCoverInstance,
        order_name: str,
        algorithm_name: str,
        opt_handle: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> RunMetrics:
        """Run a single algorithm on a single ordered stream."""
        seed = seed if seed is not None else self._rng.getrandbits(63)
        order = make_order(order_name, seed=seed)
        replayable = ReplayableStream(instance, order)
        return self._execute(
            replayable, algorithm_name, opt_handle=opt_handle, seed=seed
        )

    def compare(
        self,
        instance: SetCoverInstance,
        order_name: str,
        opt_handle: Optional[int] = None,
        replications: int = 1,
        max_workers: int = 1,
    ) -> List[RunMetrics]:
        """All algorithms on identical streams, ``replications`` times.

        With ``max_workers > 1`` the runs execute on a thread pool.  The
        per-replication seeds are drawn up front in the same order the
        serial path draws them, every run gets its own algorithm
        instance and one-pass stream view over the shared frozen edge
        buffer, and rows are collected in submission order — so the
        result is *identical* to ``max_workers=1`` for a fixed master
        seed, whatever the pool's scheduling.
        """
        specs = self._build_specs(instance, order_name, opt_handle, replications)
        return self._execute_specs(specs, max_workers)

    def sweep_instances(
        self,
        instances: Sequence[Tuple[SetCoverInstance, Optional[int]]],
        order_name: str,
        replications: int = 1,
        max_workers: int = 1,
    ) -> List[RunMetrics]:
        """All algorithms across ``(instance, planted_opt)`` pairs.

        ``max_workers`` parallelises the whole grid (not one instance at
        a time) with the same determinism guarantee as :meth:`compare`.
        """
        specs: List[Tuple[ReplayableStream, str, Optional[int], int]] = []
        for instance, opt_handle in instances:
            specs.extend(
                self._build_specs(instance, order_name, opt_handle, replications)
            )
        return self._execute_specs(specs, max_workers)

    # -- internals -------------------------------------------------------

    def _build_specs(
        self,
        instance: SetCoverInstance,
        order_name: str,
        opt_handle: Optional[int],
        replications: int,
    ) -> List[Tuple[ReplayableStream, str, Optional[int], int]]:
        """Draw seeds and freeze streams for one comparison, serially.

        All randomness is consumed here, before any (possibly
        concurrent) execution, which is what makes the parallel path
        bit-identical to the serial one.
        """
        specs: List[Tuple[ReplayableStream, str, Optional[int], int]] = []
        for _ in range(replications):
            seed = self._rng.getrandbits(63)
            order = make_order(order_name, seed=seed)
            replayable = ReplayableStream(instance, order)
            for name in self.algorithms:
                specs.append((replayable, name, opt_handle, seed))
        return specs

    def _execute_specs(
        self,
        specs: Sequence[Tuple[ReplayableStream, str, Optional[int], int]],
        max_workers: int,
    ) -> List[RunMetrics]:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_workers == 1 or len(specs) <= 1:
            return [
                self._execute(replayable, name, opt_handle=opt_handle, seed=seed)
                for replayable, name, opt_handle, seed in specs
            ]
        # Pre-build the shared numpy columns serially: worker threads
        # then only read the frozen buffers.
        for replayable, _, _, _ in specs:
            replayable._frozen.columns()
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    self._execute, replayable, name, opt_handle=opt_handle, seed=seed
                )
                for replayable, name, opt_handle, seed in specs
            ]
            return [future.result() for future in futures]

    def _execute(
        self,
        replayable: ReplayableStream,
        algorithm_name: str,
        opt_handle: Optional[int],
        seed: int,
    ) -> RunMetrics:
        factory = self.algorithms[algorithm_name]
        algorithm = factory(seed)
        stream = replayable.fresh()
        result = algorithm.run(stream)
        instance = replayable.instance
        if opt_handle is not None:
            handle, exact = opt_handle, True
        else:
            handle, exact = opt_or_bound(instance)
        return metrics_from_result(
            result,
            instance,
            order=replayable.order_name,
            opt_handle=handle,
            opt_is_exact=exact,
            stream_length=replayable.length,
            seed=seed,
        )
