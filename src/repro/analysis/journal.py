"""Checkpoint/resume journal for experiment sweeps.

A :class:`SweepJournal` is an append-only JSONL file: one line per
completed run, keyed by a deterministic *fingerprint* of the run's spec
(algorithm, order, seed, instance shape, grid index).  A sweep that is
killed mid-grid restarts from the journal: fingerprints already present
are loaded back as :class:`RunMetrics` rows — bit-identical, because
JSON float serialisation round-trips exactly — and only the missing
cells execute.

The file is flushed (and fsync'd) after every append, so at most the
in-flight run is lost on a hard kill.  Rows whose fingerprint no longer
matches any spec (e.g. the grid changed) are simply ignored.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.analysis.metrics import RunMetrics

PathLike = Union[str, Path]


def spec_fingerprint(
    index: int,
    algorithm: str,
    order: str,
    seed: int,
    n: int,
    m: int,
    num_edges: int,
) -> str:
    """Deterministic identity of one sweep cell.

    Includes the grid index so two cells with identical parameters
    (e.g. a replicated deterministic algorithm) stay distinct.
    """
    return f"{index}|{algorithm}|{order}|{seed}|{n}x{m}x{num_edges}"


class SweepJournal:
    """Append-only JSONL store of completed sweep cells."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._rows: Dict[str, RunMetrics] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    metrics = RunMetrics.from_json_dict(record["metrics"])
                    self._rows[str(record["fingerprint"])] = metrics
                except (json.JSONDecodeError, KeyError, TypeError):
                    # A torn final line from a hard kill is expected;
                    # the cell simply re-executes.
                    continue

    def __len__(self) -> int:
        return len(self._rows)

    def get(self, fingerprint: str) -> Optional[RunMetrics]:
        """The journaled row for ``fingerprint``, or ``None``."""
        return self._rows.get(fingerprint)

    def record(self, fingerprint: str, metrics: RunMetrics) -> None:
        """Append one completed cell and flush it to disk immediately."""
        self._rows[fingerprint] = metrics
        line = json.dumps(
            {"fingerprint": fingerprint, "metrics": metrics.to_json_dict()},
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
