"""Experiment harness: runners, metrics, sweeps, tables, exact OPT."""

from repro.analysis.chaos import ChaosCell, ChaosReport, run_chaos, run_chaos_cell
from repro.analysis.journal import SweepJournal, spec_fingerprint
from repro.analysis.metrics import (
    Aggregate,
    RunMetrics,
    aggregate,
    fit_power_law,
    geometric_decay_rate,
    metrics_from_result,
)
from repro.analysis.opt import exact_opt, opt_lower_bound, opt_or_bound
from repro.analysis.runner import ExperimentRunner, RunSpec, derive_retry_seed
from repro.analysis.stats import DistributionSummary, InstanceStats, describe_instance
from repro.analysis.sweep import Sweep, SweepPoint, SweepResult
from repro.analysis.tables import format_cell, render_kv, render_table

__all__ = [
    "ChaosCell",
    "ChaosReport",
    "run_chaos",
    "run_chaos_cell",
    "SweepJournal",
    "spec_fingerprint",
    "derive_retry_seed",
    "RunMetrics",
    "metrics_from_result",
    "Aggregate",
    "aggregate",
    "fit_power_law",
    "geometric_decay_rate",
    "exact_opt",
    "opt_lower_bound",
    "opt_or_bound",
    "ExperimentRunner",
    "RunSpec",
    "Sweep",
    "SweepPoint",
    "SweepResult",
    "render_table",
    "DistributionSummary",
    "InstanceStats",
    "describe_instance",
    "render_kv",
    "format_cell",
]
