"""Chaos harness: fault type × rate × algorithm × order sweeps.

Drives every registered algorithm over fault-injected streams and
classifies each cell's outcome against the global robustness invariant:

    **valid cover**, or **typed** :class:`~repro.errors.ReproError`, or
    **explicit degradation record** — never a bare ``KeyError`` /
    ``IndexError`` and never a silently wrong answer.

Outcomes:

``valid-cover``
    The run returned a result that verifies against the ground truth
    (total certificate, in-range witnesses, witnesses in the cover).
``degraded``
    The resilient wrapper emitted a :class:`DegradationRecord` — the
    relaxed invariant, skipped-edge count, and coverage fraction are all
    explicit.
``typed-error``
    A :class:`ReproError` subclass was raised (the paper-faithful
    response to violated assumptions).
``violation``
    Anything else: a bare builtin exception or a result that claims
    validity but fails verification.  :meth:`ChaosReport.assert_invariant`
    raises if any cell lands here.

Every cell is independently seeded from the master seed, so a failing
cell reproduces in isolation from its row alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.algorithms import make_algorithm, registered_algorithms
from repro.analysis.tables import render_table
from repro.errors import ReproError
from repro.faults.injectors import FAULT_KINDS, FaultSpec, inject
from repro.faults.resilient import ResilientAlgorithm, ResilientResult
from repro.generators.planted import planted_partition_instance
from repro.obs.tracer import TraceCollector
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import make_order
from repro.streaming.stream import stream_of
from repro.types import SeedLike, make_rng

#: Arrival orders the sweep contrasts: adversarially spread vs random.
DEFAULT_ORDERS = ("round-robin", "random")

#: Fault intensities exercised by default (mild, moderate, severe).
DEFAULT_RATES = (0.01, 0.1, 0.5)


@dataclass
class ChaosCell:
    """Outcome of one (algorithm, fault, rate, order) cell."""

    algorithm: str
    fault_kind: str
    rate: float
    order: str
    policy: str
    seed: int
    outcome: str
    detail: str = ""
    cover_size: int = 0
    coverage_fraction: float = 0.0

    @property
    def is_violation(self) -> bool:
        return self.outcome == "violation"


@dataclass
class ChaosReport:
    """All cells of one chaos sweep, plus invariant checking."""

    policy: str
    seed: int
    instance_label: str
    rows: List[ChaosCell] = field(default_factory=list)

    def violations(self) -> List[ChaosCell]:
        """Cells that break the robustness invariant."""
        return [cell for cell in self.rows if cell.is_violation]

    def outcome_counts(self) -> dict:
        counts: dict = {}
        for cell in self.rows:
            counts[cell.outcome] = counts.get(cell.outcome, 0) + 1
        return counts

    def assert_invariant(self) -> None:
        """Raise ``AssertionError`` listing every violating cell."""
        bad = self.violations()
        if bad:
            lines = [
                f"  {c.algorithm} × {c.fault_kind}@{c.rate} × {c.order} "
                f"(seed={c.seed}): {c.detail}"
                for c in bad
            ]
            raise AssertionError(
                f"chaos invariant violated in {len(bad)} cell(s):\n"
                + "\n".join(lines)
            )

    def render(self, markdown: bool = False) -> str:
        headers = [
            "algorithm",
            "fault",
            "rate",
            "order",
            "outcome",
            "cover",
            "coverage",
            "detail",
        ]
        rows = [
            [
                c.algorithm,
                c.fault_kind,
                c.rate,
                c.order,
                c.outcome,
                c.cover_size,
                c.coverage_fraction,
                c.detail[:48],
            ]
            for c in self.rows
        ]
        title = (
            f"chaos sweep — policy={self.policy}, seed={self.seed}, "
            f"instance={self.instance_label}"
        )
        summary = ", ".join(
            f"{k}={v}" for k, v in sorted(self.outcome_counts().items())
        )
        return (
            render_table(headers, rows, title=title, markdown=markdown)
            + f"\noutcomes: {summary}"
        )


def run_chaos_cell(
    instance: SetCoverInstance,
    algorithm_name: str,
    fault_kind: str,
    rate: float,
    order_name: str,
    policy: str,
    seed: int,
    collector: Optional[TraceCollector] = None,
) -> ChaosCell:
    """Execute and classify a single chaos cell (fully seed-determined).

    With ``collector`` the cell's run is traced under a label derived
    from the cell coordinates (so the sweep's merged JSONL is stable
    however the cells are scheduled).
    """
    cell = ChaosCell(
        algorithm=algorithm_name,
        fault_kind=fault_kind,
        rate=rate,
        order=order_name,
        policy=policy,
        seed=seed,
        outcome="violation",
    )
    try:
        order = make_order(order_name, seed=seed)
        faulty = inject(
            stream_of(instance, order),
            [FaultSpec(kind=fault_kind, rate=rate, seed=seed)],
        )
        tracer = None
        if collector is not None:
            label = f"{algorithm_name}:{fault_kind}@{rate}:{order_name}"
            tracer = collector.tracer_for(label)
        algorithm = make_algorithm(
            algorithm_name, instance, seed=seed, tracer=tracer
        )
        resilient = ResilientAlgorithm(algorithm, policy=policy)
        outcome: ResilientResult = resilient.run(faulty)
    except ReproError as error:
        cell.outcome = "typed-error"
        cell.detail = f"{type(error).__name__}: {error}"
        return cell
    except Exception as error:  # noqa: BLE001 — the invariant under test
        cell.outcome = "violation"
        cell.detail = f"bare {type(error).__name__}: {error}"
        return cell

    if outcome.degradation is not None:
        cell.outcome = "degraded"
        degradation = outcome.degradation
        cell.detail = degradation.relaxed_invariant
        cell.coverage_fraction = degradation.coverage_fraction
        if outcome.result is not None:
            cell.cover_size = outcome.result.cover_size
        return cell

    result = outcome.result
    if result is None:
        cell.detail = "no result and no degradation record"
        return cell
    # A clean claim must be a genuinely valid cover: total in-range
    # certificate, witnesses in the cover, and no phantom set ids.
    if not all(0 <= s < instance.m for s in result.cover):
        cell.detail = "cover references unknown set ids (silent wrong answer)"
        return cell
    if not result.is_valid(instance):
        cell.detail = "result fails verification (silent wrong answer)"
        return cell
    cell.outcome = "valid-cover"
    cell.cover_size = result.cover_size
    cell.coverage_fraction = 1.0
    return cell


def run_chaos(
    instance: Optional[SetCoverInstance] = None,
    algorithms: Optional[Sequence[str]] = None,
    fault_kinds: Sequence[str] = FAULT_KINDS,
    rates: Sequence[float] = DEFAULT_RATES,
    orders: Sequence[str] = DEFAULT_ORDERS,
    policy: str = "best_effort",
    seed: SeedLike = 0,
    quick: bool = False,
    collector: Optional[TraceCollector] = None,
) -> ChaosReport:
    """Sweep the full fault grid and classify every cell.

    With ``quick=True`` the grid shrinks to two algorithms and one
    moderate rate — the CI smoke tier.  Cell seeds are derived from the
    master seed up front, so the report is reproducible and each cell
    can be re-run standalone via :func:`run_chaos_cell`.
    """
    rng = make_rng(seed)
    if instance is None:
        instance = planted_partition_instance(
            n=36, m=24, opt_size=4, seed=rng.getrandbits(63)
        ).instance
    if algorithms is None:
        algorithms = ["kk", "first-fit"] if quick else registered_algorithms()
    if quick:
        rates = (0.1,)
    report = ChaosReport(
        policy=policy,
        seed=seed if isinstance(seed, int) else -1,
        instance_label=repr(instance),
    )
    for algorithm_name in algorithms:
        for fault_kind in fault_kinds:
            for rate in rates:
                for order_name in orders:
                    cell_seed = rng.getrandbits(63)
                    report.rows.append(
                        run_chaos_cell(
                            instance,
                            algorithm_name,
                            fault_kind,
                            rate,
                            order_name,
                            policy,
                            cell_seed,
                            collector=collector,
                        )
                    )
    return report
