"""Chaos harness: fault type × rate × algorithm × order sweeps.

Drives every registered algorithm over fault-injected streams and
classifies each cell's outcome against the global robustness invariant:

    **valid cover**, or **typed** :class:`~repro.errors.ReproError`, or
    **explicit degradation record** — never a bare ``KeyError`` /
    ``IndexError`` and never a silently wrong answer.

Outcomes:

``valid-cover``
    The run returned a result that verifies against the ground truth
    (total certificate, in-range witnesses, witnesses in the cover).
``degraded``
    The resilient wrapper emitted a :class:`DegradationRecord` — the
    relaxed invariant, skipped-edge count, and coverage fraction are all
    explicit.
``typed-error``
    A :class:`ReproError` subclass was raised (the paper-faithful
    response to violated assumptions).
``violation``
    Anything else: a bare builtin exception or a result that claims
    validity but fails verification.  :meth:`ChaosReport.assert_invariant`
    raises if any cell lands here.

Every cell is independently seeded from the master seed, so a failing
cell reproduces in isolation from its row alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.algorithms import make_algorithm, registered_algorithms
from repro.analysis.tables import render_table
from repro.distributed.asyncsim import run_distributed_async
from repro.distributed.executor import DistributedResult, run_distributed
from repro.errors import ReproError
from repro.faults.injectors import FAULT_KINDS, FaultSpec, inject
from repro.faults.resilient import ResilientAlgorithm, ResilientResult
from repro.faults.shards import SHARD_FAULT_KINDS, ShardFaultPlan
from repro.generators.planted import planted_partition_instance
from repro.obs.tracer import TraceCollector
from repro.streaming.instance import SetCoverInstance
from repro.streaming.orders import make_order
from repro.streaming.stream import stream_of
from repro.types import SeedLike, make_rng

#: Arrival orders the sweep contrasts: adversarially spread vs random.
DEFAULT_ORDERS = ("round-robin", "random")

#: Fault intensities exercised by default (mild, moderate, severe).
DEFAULT_RATES = (0.01, 0.1, 0.5)


@dataclass
class ChaosCell:
    """Outcome of one (algorithm, fault, rate, order) cell."""

    algorithm: str
    fault_kind: str
    rate: float
    order: str
    policy: str
    seed: int
    outcome: str
    detail: str = ""
    cover_size: int = 0
    coverage_fraction: float = 0.0

    @property
    def is_violation(self) -> bool:
        return self.outcome == "violation"


@dataclass
class ChaosReport:
    """All cells of one chaos sweep, plus invariant checking."""

    policy: str
    seed: int
    instance_label: str
    rows: List[ChaosCell] = field(default_factory=list)

    def violations(self) -> List[ChaosCell]:
        """Cells that break the robustness invariant."""
        return [cell for cell in self.rows if cell.is_violation]

    def outcome_counts(self) -> dict:
        counts: dict = {}
        for cell in self.rows:
            counts[cell.outcome] = counts.get(cell.outcome, 0) + 1
        return counts

    def assert_invariant(self) -> None:
        """Raise ``AssertionError`` listing every violating cell."""
        bad = self.violations()
        if bad:
            lines = [
                f"  {c.algorithm} × {c.fault_kind}@{c.rate} × {c.order} "
                f"(seed={c.seed}): {c.detail}"
                for c in bad
            ]
            raise AssertionError(
                f"chaos invariant violated in {len(bad)} cell(s):\n"
                + "\n".join(lines)
            )

    def render(self, markdown: bool = False) -> str:
        headers = [
            "algorithm",
            "fault",
            "rate",
            "order",
            "outcome",
            "cover",
            "coverage",
            "detail",
        ]
        rows = [
            [
                c.algorithm,
                c.fault_kind,
                c.rate,
                c.order,
                c.outcome,
                c.cover_size,
                c.coverage_fraction,
                c.detail[:48],
            ]
            for c in self.rows
        ]
        title = (
            f"chaos sweep — policy={self.policy}, seed={self.seed}, "
            f"instance={self.instance_label}"
        )
        summary = ", ".join(
            f"{k}={v}" for k, v in sorted(self.outcome_counts().items())
        )
        return (
            render_table(headers, rows, title=title, markdown=markdown)
            + f"\noutcomes: {summary}"
        )


def run_chaos_cell(
    instance: SetCoverInstance,
    algorithm_name: str,
    fault_kind: str,
    rate: float,
    order_name: str,
    policy: str,
    seed: int,
    collector: Optional[TraceCollector] = None,
) -> ChaosCell:
    """Execute and classify a single chaos cell (fully seed-determined).

    With ``collector`` the cell's run is traced under a label derived
    from the cell coordinates (so the sweep's merged JSONL is stable
    however the cells are scheduled).
    """
    cell = ChaosCell(
        algorithm=algorithm_name,
        fault_kind=fault_kind,
        rate=rate,
        order=order_name,
        policy=policy,
        seed=seed,
        outcome="violation",
    )
    try:
        order = make_order(order_name, seed=seed)
        faulty = inject(
            stream_of(instance, order),
            [FaultSpec(kind=fault_kind, rate=rate, seed=seed)],
        )
        tracer = None
        if collector is not None:
            label = f"{algorithm_name}:{fault_kind}@{rate}:{order_name}"
            tracer = collector.tracer_for(label)
        algorithm = make_algorithm(
            algorithm_name, instance, seed=seed, tracer=tracer
        )
        resilient = ResilientAlgorithm(algorithm, policy=policy)
        outcome: ResilientResult = resilient.run(faulty)
    except ReproError as error:
        cell.outcome = "typed-error"
        cell.detail = f"{type(error).__name__}: {error}"
        return cell
    except Exception as error:  # noqa: BLE001 — the invariant under test
        cell.outcome = "violation"
        cell.detail = f"bare {type(error).__name__}: {error}"
        return cell

    if outcome.degradation is not None:
        cell.outcome = "degraded"
        degradation = outcome.degradation
        cell.detail = degradation.relaxed_invariant
        cell.coverage_fraction = degradation.coverage_fraction
        if outcome.result is not None:
            cell.cover_size = outcome.result.cover_size
        return cell

    result = outcome.result
    if result is None:
        cell.detail = "no result and no degradation record"
        return cell
    # A clean claim must be a genuinely valid cover: total in-range
    # certificate, witnesses in the cover, and no phantom set ids.
    if not all(0 <= s < instance.m for s in result.cover):
        cell.detail = "cover references unknown set ids (silent wrong answer)"
        return cell
    if not result.is_valid(instance):
        cell.detail = "result fails verification (silent wrong answer)"
        return cell
    cell.outcome = "valid-cover"
    cell.cover_size = result.cover_size
    cell.coverage_fraction = 1.0
    return cell


def run_chaos(
    instance: Optional[SetCoverInstance] = None,
    algorithms: Optional[Sequence[str]] = None,
    fault_kinds: Sequence[str] = FAULT_KINDS,
    rates: Sequence[float] = DEFAULT_RATES,
    orders: Sequence[str] = DEFAULT_ORDERS,
    policy: str = "best_effort",
    seed: SeedLike = 0,
    quick: bool = False,
    collector: Optional[TraceCollector] = None,
) -> ChaosReport:
    """Sweep the full fault grid and classify every cell.

    With ``quick=True`` the grid shrinks to two algorithms and one
    moderate rate — the CI smoke tier.  Cell seeds are derived from the
    master seed up front, so the report is reproducible and each cell
    can be re-run standalone via :func:`run_chaos_cell`.
    """
    rng = make_rng(seed)
    if instance is None:
        instance = planted_partition_instance(
            n=36, m=24, opt_size=4, seed=rng.getrandbits(63)
        ).instance
    if algorithms is None:
        algorithms = ["kk", "first-fit"] if quick else registered_algorithms()
    if quick:
        rates = (0.1,)
    report = ChaosReport(
        policy=policy,
        seed=seed if isinstance(seed, int) else -1,
        instance_label=repr(instance),
    )
    for algorithm_name in algorithms:
        for fault_kind in fault_kinds:
            for rate in rates:
                for order_name in orders:
                    cell_seed = rng.getrandbits(63)
                    report.rows.append(
                        run_chaos_cell(
                            instance,
                            algorithm_name,
                            fault_kind,
                            rate,
                            order_name,
                            policy,
                            cell_seed,
                            collector=collector,
                        )
                    )
    return report


# -- shard-fault chaos: crash/straggle/duplicate × coordinator × backend ---

#: Coordinators the shard grid exercises.
DEFAULT_SHARD_COORDINATORS = ("union", "greedy", "chain")

#: Backends the shard grid exercises (process is exercised by the
#: dedicated backend tests; the grid favours cheap iteration).
DEFAULT_SHARD_BACKENDS = ("serial", "thread")

#: Execution modes: the synchronous resilient path and the asynchronous
#: delivery simulator.
SHARD_CHAOS_MODES = ("sync", "async")


@dataclass
class ShardChaosCell:
    """Outcome of one (fault, coordinator, backend, mode) shard cell."""

    coordinator: str
    backend: str
    fault_kind: str
    mode: str
    seed: int
    outcome: str
    detail: str = ""
    cover_size: int = 0
    coverage_fraction: float = 0.0
    shards_lost: int = 0

    @property
    def is_violation(self) -> bool:
        return self.outcome == "violation"


@dataclass
class ShardChaosReport:
    """All cells of one shard-fault sweep, plus invariant checking."""

    seed: int
    workers: int
    min_shards: int
    instance_label: str
    rows: List[ShardChaosCell] = field(default_factory=list)

    def violations(self) -> List[ShardChaosCell]:
        """Cells that break the robustness invariant."""
        return [cell for cell in self.rows if cell.is_violation]

    def outcome_counts(self) -> dict:
        counts: dict = {}
        for cell in self.rows:
            counts[cell.outcome] = counts.get(cell.outcome, 0) + 1
        return counts

    def assert_invariant(self) -> None:
        """Raise ``AssertionError`` listing every violating cell."""
        bad = self.violations()
        if bad:
            lines = [
                f"  {c.fault_kind} × {c.coordinator} × {c.backend} × "
                f"{c.mode} (seed={c.seed}): {c.detail}"
                for c in bad
            ]
            raise AssertionError(
                f"shard chaos invariant violated in {len(bad)} cell(s):\n"
                + "\n".join(lines)
            )

    def render(self, markdown: bool = False) -> str:
        headers = [
            "fault",
            "coordinator",
            "backend",
            "mode",
            "outcome",
            "cover",
            "coverage",
            "lost",
            "detail",
        ]
        rows = [
            [
                c.fault_kind,
                c.coordinator,
                c.backend,
                c.mode,
                c.outcome,
                c.cover_size,
                c.coverage_fraction,
                c.shards_lost,
                c.detail[:48],
            ]
            for c in self.rows
        ]
        title = (
            f"shard chaos sweep — seed={self.seed}, W={self.workers}, "
            f"min_shards={self.min_shards}, instance={self.instance_label}"
        )
        summary = ", ".join(
            f"{k}={v}" for k, v in sorted(self.outcome_counts().items())
        )
        return (
            render_table(headers, rows, title=title, markdown=markdown)
            + f"\noutcomes: {summary}"
        )


def _shard_fault_setup(fault_kind: str, workers: int, seed: int):
    """The seeded fault plan and deadline one grid kind stands for."""
    if fault_kind == "crash":
        # A mix of permanent (abandoned) and transient (healed) crashes.
        return (
            ShardFaultPlan.seeded(
                workers, seed=seed, crash_rate=0.35, flaky_rate=0.3
            ),
            None,
        )
    if fault_kind == "straggle":
        # Stragglers overshoot the deadline on every attempt and time
        # out; punctual shards finish well inside it.
        return (
            ShardFaultPlan.seeded(
                workers, seed=seed, straggle_rate=0.5, straggle_steps=8
            ),
            4,
        )
    if fault_kind == "duplicate":
        # Pure transport noise: every output arrives, some twice.
        return (
            ShardFaultPlan.seeded(workers, seed=seed, duplicate_rate=0.7),
            None,
        )
    known = ", ".join(SHARD_FAULT_KINDS)
    raise ValueError(f"unknown shard fault kind {fault_kind!r}; known: {known}")


def run_shard_chaos_cell(
    instance: SetCoverInstance,
    coordinator: str,
    backend: str,
    fault_kind: str,
    mode: str,
    seed: int,
    workers: int = 4,
    min_shards: int = 2,
) -> ShardChaosCell:
    """Execute and classify one shard-fault cell (fully seed-determined).

    The invariant is the distributed refinement of the global one: a
    cell must end in a **verified valid cover**, a **typed error**, or a
    **degraded-but-consistent** partial cover — one whose reported
    ``uncovered`` set matches the ground truth exactly and which carries
    a :class:`~repro.faults.resilient.DegradationRecord` per lost shard.
    A partial cover that misreports its own coverage is classified as a
    violation, never waved through.
    """
    cell = ShardChaosCell(
        coordinator=coordinator,
        backend=backend,
        fault_kind=fault_kind,
        mode=mode,
        seed=seed,
        outcome="violation",
    )
    try:
        plan, deadline = _shard_fault_setup(fault_kind, workers, seed)
        kwargs = dict(
            workers=workers,
            coordinator=coordinator,
            backend=backend,
            seed=seed,
            shard_faults=plan,
            min_shards=min_shards,
            deadline_steps=deadline,
        )
        if mode == "async":
            result: DistributedResult = run_distributed_async(
                instance, schedule_seed=seed, **kwargs
            )
        else:
            result = run_distributed(instance, **kwargs)
    except ReproError as error:
        cell.outcome = "typed-error"
        cell.detail = f"{type(error).__name__}: {error}"
        return cell
    except Exception as error:  # noqa: BLE001 — the invariant under test
        cell.outcome = "violation"
        cell.detail = f"bare {type(error).__name__}: {error}"
        return cell

    cell.cover_size = result.cover_size
    cell.shards_lost = sum(1 for o in result.outcomes if o.abandoned)
    if result.degradations:
        if cell.shards_lost != len(result.degradations):
            cell.detail = (
                f"{cell.shards_lost} shard(s) lost but "
                f"{len(result.degradations)} degradation record(s)"
            )
            return cell
        if not result.is_valid(instance, allow_partial=True):
            cell.detail = "degraded result fails partial verification"
            return cell
        actual_uncovered = instance.uncovered_by(result.cover)
        if set(result.uncovered) != actual_uncovered:
            cell.detail = (
                "degraded result misreports coverage: claims "
                f"{len(result.uncovered)} uncovered, truth "
                f"{len(actual_uncovered)}"
            )
            return cell
        cell.outcome = "degraded"
        n = instance.n
        cell.coverage_fraction = (n - len(result.uncovered)) / n if n else 1.0
        cell.detail = result.degradations[0].error_type or "quorum-degraded"
        return cell

    if cell.shards_lost:
        cell.detail = (
            f"{cell.shards_lost} shard(s) lost without degradation records"
        )
        return cell
    if not result.is_valid(instance):
        cell.detail = "result fails verification (silent wrong answer)"
        return cell
    cell.outcome = "valid-cover"
    cell.coverage_fraction = 1.0
    return cell


def run_shard_chaos(
    instance: Optional[SetCoverInstance] = None,
    coordinators: Sequence[str] = DEFAULT_SHARD_COORDINATORS,
    backends: Sequence[str] = DEFAULT_SHARD_BACKENDS,
    fault_kinds: Sequence[str] = SHARD_FAULT_KINDS,
    modes: Sequence[str] = SHARD_CHAOS_MODES,
    seed: SeedLike = 0,
    quick: bool = False,
    workers: int = 4,
    min_shards: int = 2,
) -> ShardChaosReport:
    """Sweep the shard-fault grid and classify every cell.

    The distributed twin of :func:`run_chaos`: crash, straggler, and
    duplicate-delivery faults crossed with every coordinator, backend,
    and both execution modes (synchronous resilient path and the async
    delivery simulator).  With ``quick=True`` the grid shrinks to two
    coordinators on the serial backend — the CI smoke tier.  Cell seeds
    derive from the master seed up front, so any cell reproduces
    standalone via :func:`run_shard_chaos_cell`.
    """
    rng = make_rng(seed)
    if instance is None:
        instance = planted_partition_instance(
            n=36, m=24, opt_size=4, seed=rng.getrandbits(63)
        ).instance
    if quick:
        coordinators = ("union", "chain")
        backends = ("serial",)
    report = ShardChaosReport(
        seed=seed if isinstance(seed, int) else -1,
        workers=workers,
        min_shards=min_shards,
        instance_label=repr(instance),
    )
    for fault_kind in fault_kinds:
        for coordinator in coordinators:
            for backend in backends:
                for mode in modes:
                    cell_seed = rng.getrandbits(63)
                    report.rows.append(
                        run_shard_chaos_cell(
                            instance,
                            coordinator,
                            backend,
                            fault_kind,
                            mode,
                            cell_seed,
                            workers=workers,
                            min_shards=min_shards,
                        )
                    )
    return report
