"""Empirical validation of Lemma 2's concentration statements.

Lemma 2 is the workhorse of Algorithm 1's analysis: in a random-order
stream, the number of edges of a fixed subset ``X ⊆ S`` landing in a
fixed position-set ``I`` of size ``ℓ`` behaves like a hypergeometric
draw, and three regimes are controlled:

1. ``(1 ± 0.01)·(ℓ/N)·|X|`` when ``ℓ ≤ 0.001·N`` and
   ``(ℓ/N)·|X| ≥ C·log m``;
2. at most ``C·log m · max{(ℓ/N)·|X|, 1}`` whenever ``ℓ ≤ N/2``;
3. ``(ℓ/N)·|X|`` up to an additive ``log m·√((ℓ/N)·|X|)`` term when
   ``ℓ ≤ N/√n`` and ``(ℓ/N)·|X| ≥ log⁶ m``.

:func:`simulate_occupancy` draws the exact process (uniform random
stream order ⇒ hypergeometric counts); the checker functions report
empirical violation rates for each statement, which the
``concentration`` experiment asserts are ≈ 0 at the advertised
confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.types import SeedLike, make_numpy_rng


def simulate_occupancy(
    stream_length: int,
    subset_size: int,
    window: int,
    trials: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Counts of subset-edges landing in a size-``window`` position set.

    A uniformly random stream order places the ``subset_size``
    distinguished edges uniformly among the ``stream_length`` positions
    without replacement, so the count in any fixed window is
    hypergeometric(N, |X|, ℓ) — sampled exactly via numpy.
    """
    if not 0 <= subset_size <= stream_length:
        raise ConfigurationError(
            f"subset_size must be in [0, N={stream_length}], got {subset_size}"
        )
    if not 0 <= window <= stream_length:
        raise ConfigurationError(
            f"window must be in [0, N={stream_length}], got {window}"
        )
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = make_numpy_rng(seed)
    return rng.hypergeometric(
        ngood=subset_size,
        nbad=stream_length - subset_size,
        nsample=window,
        size=trials,
    )


@dataclass(frozen=True)
class ConcentrationCheck:
    """Outcome of checking one Lemma-2 statement empirically."""

    statement: str
    trials: int
    violations: int
    expected_mean: float
    observed_mean: float

    @property
    def violation_rate(self) -> float:
        """Fraction of trials outside the statement's band."""
        return self.violations / self.trials


def check_statement_1(
    stream_length: int,
    subset_size: int,
    window: int,
    trials: int = 2000,
    seed: SeedLike = None,
    tolerance: float = 0.01,
) -> ConcentrationCheck:
    """Statement 1: counts within (1 ± tolerance+slack)·(ℓ/N)·|X|.

    Requires the lemma's preconditions (small window, large mean); they
    are validated so the check cannot silently test a vacuous regime.
    """
    mean = window / stream_length * subset_size
    if window > 0.001 * stream_length:
        raise ConfigurationError(
            "statement 1 requires window <= 0.001·N"
        )
    if mean < 16:
        raise ConfigurationError(
            "statement 1 requires (l/N)|X| large (>= C·log m); got "
            f"mean {mean:.1f}"
        )
    counts = simulate_occupancy(
        stream_length, subset_size, window, trials, seed
    )
    # The paper's 0.99/1.01 constants come with an implicit "for large
    # enough C"; empirically we allow the same ±1% band widened by the
    # finite-sample standard error.
    slack = 4.0 / math.sqrt(mean)
    low = (1 - tolerance - slack) * mean
    high = (1 + tolerance + slack) * mean
    violations = int(np.sum((counts < low) | (counts > high)))
    return ConcentrationCheck(
        statement="lemma2-1",
        trials=trials,
        violations=violations,
        expected_mean=mean,
        observed_mean=float(counts.mean()),
    )


def check_statement_2(
    stream_length: int,
    subset_size: int,
    window: int,
    log_m: float,
    trials: int = 2000,
    seed: SeedLike = None,
    constant: float = 4.0,
) -> ConcentrationCheck:
    """Statement 2: counts ≤ C·log m · max{(ℓ/N)·|X|, 1} for ℓ ≤ N/2."""
    if window > stream_length / 2:
        raise ConfigurationError("statement 2 requires window <= N/2")
    mean = window / stream_length * subset_size
    bound = constant * log_m * max(mean, 1.0)
    counts = simulate_occupancy(
        stream_length, subset_size, window, trials, seed
    )
    violations = int(np.sum(counts > bound))
    return ConcentrationCheck(
        statement="lemma2-2",
        trials=trials,
        violations=violations,
        expected_mean=mean,
        observed_mean=float(counts.mean()),
    )


def check_statement_3(
    stream_length: int,
    subset_size: int,
    window: int,
    n: int,
    log_m: float,
    trials: int = 2000,
    seed: SeedLike = None,
) -> ConcentrationCheck:
    """Statement 3: additive ``log m·√mean`` deviations, ℓ ≤ N/√n."""
    if window > stream_length / math.sqrt(n):
        raise ConfigurationError("statement 3 requires window <= N/√n")
    mean = window / stream_length * subset_size
    if mean < 4:
        raise ConfigurationError(
            "statement 3 requires a large mean (paper: >= log⁶ m); got "
            f"{mean:.1f}"
        )
    counts = simulate_occupancy(
        stream_length, subset_size, window, trials, seed
    )
    deviation = log_m * math.sqrt(mean)
    shrink = 1.0 - 1.0 / math.sqrt(n)
    low = mean * shrink - deviation
    high = mean / shrink + deviation
    violations = int(np.sum((counts < low) | (counts > high)))
    return ConcentrationCheck(
        statement="lemma2-3",
        trials=trials,
        violations=violations,
        expected_mean=mean,
        observed_mean=float(counts.mean()),
    )
