"""Parameter sweeps with replication and aggregation.

A :class:`Sweep` runs a user-supplied measurement function over a
parameter grid, replicating each point over derived seeds, and returns
aggregated points suitable for power-law fitting and table rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import Aggregate, aggregate, fit_power_law
from repro.types import SeedLike, make_rng

MeasureFn = Callable[[float, int], Dict[str, float]]
"""Measure one point: ``(parameter_value, seed) -> {metric: value}``."""


@dataclass
class SweepPoint:
    """Aggregated measurements at one parameter value."""

    parameter: float
    metrics: Dict[str, Aggregate] = field(default_factory=dict)


@dataclass
class SweepResult:
    """The whole sweep: points in parameter order plus fit helpers."""

    parameter_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, metric: str) -> List[float]:
        """Mean values of ``metric`` across points, in parameter order."""
        return [p.metrics[metric].mean for p in self.points]

    def parameters(self) -> List[float]:
        """Parameter values in order."""
        return [p.parameter for p in self.points]

    def fit(self, metric: str) -> float:
        """Fitted power-law exponent of ``metric`` against the parameter."""
        exponent, _ = fit_power_law(self.parameters(), self.series(metric))
        return exponent

    def rows(self, metrics: Sequence[str]) -> List[List[object]]:
        """Table rows: parameter column then ``mean±stdev`` per metric."""
        out: List[List[object]] = []
        for point in self.points:
            row: List[object] = [point.parameter]
            for metric in metrics:
                row.append(str(point.metrics[metric]))
            out.append(row)
        return out


class Sweep:
    """Run ``measure`` over ``values`` with ``replications`` seeds each."""

    def __init__(
        self,
        parameter_name: str,
        values: Sequence[float],
        measure: MeasureFn,
        replications: int = 3,
        seed: SeedLike = None,
    ) -> None:
        if not values:
            raise ValueError("sweep needs at least one parameter value")
        if replications < 1:
            raise ValueError("replications must be >= 1")
        self.parameter_name = parameter_name
        self.values = list(values)
        self.measure = measure
        self.replications = replications
        self._rng = make_rng(seed)

    def run(self) -> SweepResult:
        """Execute the sweep and aggregate replications per point."""
        result = SweepResult(parameter_name=self.parameter_name)
        for value in self.values:
            samples: Dict[str, List[float]] = {}
            for _ in range(self.replications):
                seed = self._rng.getrandbits(63)
                measured = self.measure(value, seed)
                for key, metric_value in measured.items():
                    samples.setdefault(key, []).append(metric_value)
            point = SweepPoint(parameter=value)
            for key, sample in samples.items():
                point.metrics[key] = aggregate(sample)
            result.points.append(point)
        return result
