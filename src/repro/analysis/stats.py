"""Descriptive statistics for set-cover instances.

Used by the CLI's ``describe`` subcommand and by experiment logs to
summarise workloads: shapes, degree/size distributions, the quantities
the paper's parameter choices key on (√n, m/√n, the high-degree cutoff
of Algorithm 1's epoch 0), and OPT handles.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.opt import opt_or_bound
from repro.streaming.instance import SetCoverInstance


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) by nearest-rank on sorted values.

    Nearest-rank keeps the result an actually-observed sample — the
    convention latency reporting wants (a p99 that was measured, not
    interpolated between two measurements).  Used by the serve load
    generator's latency summaries.
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of a non-empty integer distribution."""

    minimum: int
    median: float
    mean: float
    p90: float
    maximum: int

    @classmethod
    def of(cls, values: Sequence[int]) -> "DistributionSummary":
        if not values:
            raise ValueError("cannot summarise an empty distribution")
        ordered = sorted(values)
        p90_index = min(len(ordered) - 1, int(0.9 * len(ordered)))
        return cls(
            minimum=ordered[0],
            median=statistics.median(ordered),
            mean=statistics.fmean(ordered),
            p90=float(ordered[p90_index]),
            maximum=ordered[-1],
        )

    def __str__(self) -> str:
        return (
            f"min {self.minimum} / med {self.median:g} / mean "
            f"{self.mean:.1f} / p90 {self.p90:g} / max {self.maximum}"
        )


@dataclass(frozen=True)
class InstanceStats:
    """Everything ``describe`` prints about an instance."""

    n: int
    m: int
    num_edges: int
    density: float
    set_sizes: DistributionSummary
    element_degrees: DistributionSummary
    sqrt_n: float
    high_degree_cutoff: float
    high_degree_elements: int
    empty_sets: int
    opt_handle: int
    opt_is_exact: bool

    def as_pairs(self) -> List[Tuple[str, object]]:
        """Key/value pairs for :func:`repro.analysis.tables.render_kv`."""
        return [
            ("universe n", self.n),
            ("sets m", self.m),
            ("edges N", self.num_edges),
            ("density N/(n·m)", f"{self.density:.4f}"),
            ("set sizes", str(self.set_sizes)),
            ("element degrees", str(self.element_degrees)),
            ("sqrt(n)", f"{self.sqrt_n:.1f}"),
            ("epoch-0 cutoff 1.1·m/√n", f"{self.high_degree_cutoff:.1f}"),
            ("elements above cutoff", self.high_degree_elements),
            ("empty sets", self.empty_sets),
            (
                "OPT " + ("(exact)" if self.opt_is_exact else "(lower bound)"),
                self.opt_handle,
            ),
        ]


def describe_instance(
    instance: SetCoverInstance, compute_opt: bool = True
) -> InstanceStats:
    """Compute :class:`InstanceStats` for ``instance``.

    ``compute_opt=False`` skips the OPT handle (useful for very large
    instances; the handle is then reported as the trivial bound 1).
    """
    sizes = [instance.set_size(s) for s in range(instance.m)]
    degrees = list(instance.element_degrees())
    cutoff = 1.1 * instance.m / math.sqrt(instance.n)
    if compute_opt:
        opt_handle, opt_is_exact = opt_or_bound(instance)
    else:
        opt_handle, opt_is_exact = 1, False
    return InstanceStats(
        n=instance.n,
        m=instance.m,
        num_edges=instance.num_edges,
        density=instance.num_edges / (instance.n * instance.m),
        set_sizes=DistributionSummary.of(sizes),
        element_degrees=DistributionSummary.of(degrees),
        sqrt_n=math.sqrt(instance.n),
        high_degree_cutoff=cutoff,
        high_degree_elements=sum(1 for d in degrees if d >= cutoff),
        empty_sets=sum(1 for size in sizes if size == 0),
        opt_handle=opt_handle,
        opt_is_exact=opt_is_exact,
    )
