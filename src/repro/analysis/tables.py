"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's Table 1 states
(one row per regime, columns for approximation and space).  Rendering
is dependency-free: monospace-aligned ASCII, optionally Markdown.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    markdown: bool = False,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Cells are stringified with :func:`format_cell`; numeric cells are
    right-aligned, text cells left-aligned.
    """
    str_rows: List[List[str]] = [
        [format_cell(cell) for cell in row] for row in rows
    ]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(str_headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        if markdown:
            return "| " + " | ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(cells)
            ) + " |"
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(str_headers))
    if markdown:
        parts.append(
            "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        )
    else:
        parts.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        parts.append(line(row))
    return "\n".join(parts)


def format_cell(value: object) -> str:
    """Human formatting: floats get 3 significant-ish digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_scatter(
    points: Sequence[Sequence[object]],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 60,
    height: int = 16,
    log_x: bool = True,
    log_y: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render labelled (x, y) points as an ASCII scatter chart.

    ``points`` is a sequence of ``(label, x, y)`` triples; each point is
    drawn as a unique marker (1-9, then a-z), with a legend underneath.
    Log scales (the default) suit the power-law data the experiments
    produce.  This is the library's "figure" primitive — the paper has
    no measurement figures, but the space/approximation tradeoff map
    reads best as a chart.
    """
    import math as _math

    if not points:
        raise ValueError("need at least one point")
    labels = [str(p[0]) for p in points]
    xs = [float(p[1]) for p in points]
    ys = [float(p[2]) for p in points]
    if log_x and any(x <= 0 for x in xs):
        raise ValueError("log_x requires positive x values")
    if log_y and any(y <= 0 for y in ys):
        raise ValueError("log_y requires positive y values")

    def transform(values, log):
        return [(_math.log10(v) if log else v) for v in values]

    tx, ty = transform(xs, log_x), transform(ys, log_y)

    def scale(values, extent):
        low, high = min(values), max(values)
        span = (high - low) or 1.0
        return [int((v - low) / span * (extent - 1)) for v in values]

    columns = scale(tx, width)
    rows_idx = scale(ty, height)

    markers = "123456789abcdefghijklmnopqrstuvwxyz"
    if len(points) > len(markers):
        raise ValueError(f"at most {len(markers)} points supported")
    grid = [[" "] * width for _ in range(height)]
    for index, (col, row) in enumerate(zip(columns, rows_idx)):
        grid[height - 1 - row][col] = markers[index]

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} ^" + ("  (log)" if log_y else ""))
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + f"> {x_label}" + (" (log)" if log_x else ""))
    legend = ", ".join(
        f"{markers[index]}={label}" for index, label in enumerate(labels)
    )
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)


def render_kv(pairs: Sequence[Sequence[object]], title: Optional[str] = None) -> str:
    """Render key/value pairs, one per line, keys aligned."""
    str_pairs = [(str(k), format_cell(v)) for k, v in pairs]
    width = max((len(k) for k, _ in str_pairs), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in str_pairs:
        lines.append(f"{key.ljust(width)}  {value}")
    return "\n".join(lines)
