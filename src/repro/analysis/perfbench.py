"""Throughput benchmark harness for the streaming hot path.

Measures end-to-end edges/sec (and peak RSS) of the three core one-pass
algorithms — KK, random-order (Algorithm 1) and the low-space
adversarial algorithm (Algorithm 2) — on a ladder of instance sizes.
Results are written to ``BENCH_perf.json`` at the repository root so
every future PR has a trajectory to regress against; CI runs the
``smoke`` tier and fails on a >2x edges/sec regression.

Three tiers:

* ``smoke``  — one small instance (~3e4 edges), seconds; used by CI.
* ``full``   — three sizes up to ~1e6 edges; the committed numbers.

Use :func:`run_bench` programmatically or ``scripts/run_perf_bench.py``
from the command line.
"""

from __future__ import annotations

import json
import math
import platform
import resource
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.base import StreamingSetCoverAlgorithm
from repro.core.kk import KKAlgorithm, KKReferenceAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.generators.random_instances import fixed_size_instance
from repro.obs.tracer import RecordingTracer
from repro.streaming.orders import RandomOrder
from repro.streaming.stream import ReplayableStream

#: Benchmark tiers: label -> list of (config_name, n, m, set_size).
#: Stream length is m * set_size edges (fixed-size sets, all distinct).
TIERS: Dict[str, List[Tuple[str, int, int, int]]] = {
    "smoke": [
        ("small", 200, 1500, 20),  # 3.0e4 edges
    ],
    "full": [
        ("small", 300, 3000, 30),  # 9.0e4 edges
        ("medium", 600, 8000, 40),  # 3.2e5 edges
        ("large", 1000, 20000, 50),  # 1.0e6 edges
    ],
}


@dataclass
class BenchRecord:
    """One (algorithm, instance) timing measurement."""

    config: str
    algorithm: str
    n: int
    m: int
    stream_length: int
    seconds: float
    edges_per_sec: float
    peak_words: int
    cover_size: int
    max_rss_kb: int


def _algorithms(n: int, seed: int) -> Dict[str, Callable[[], StreamingSetCoverAlgorithm]]:
    """Fresh algorithm factories for one benchmark cell."""
    alpha = 2.0 * math.sqrt(n)
    return {
        "kk": lambda: KKAlgorithm(seed=seed),
        "random-order": lambda: RandomOrderAlgorithm(seed=seed),
        "adversarial": lambda: LowSpaceAdversarialAlgorithm(alpha=alpha, seed=seed),
    }


def _max_rss_kb() -> int:
    """Process high-water RSS in KiB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_bench(
    tier: str = "full",
    seed: int = 0,
    algorithms: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchRecord]:
    """Run one benchmark tier and return its records.

    Parameters
    ----------
    tier:
        ``"smoke"`` or ``"full"`` (see :data:`TIERS`).
    seed:
        Master seed for instance generation, stream order and algorithms.
    algorithms:
        Optional subset of ``{"kk", "random-order", "adversarial"}``.
    progress:
        Optional callback receiving one status line per measurement.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
    records: List[BenchRecord] = []
    for config, n, m, set_size in TIERS[tier]:
        instance = fixed_size_instance(n, m, set_size, seed=seed)
        replayable = ReplayableStream(instance, RandomOrder(seed=seed))
        for name, factory in _algorithms(n, seed).items():
            if algorithms is not None and name not in algorithms:
                continue
            algorithm = factory()
            stream = replayable.fresh()
            start = time.perf_counter()
            result = algorithm.run(stream)
            seconds = time.perf_counter() - start
            record = BenchRecord(
                config=config,
                algorithm=name,
                n=n,
                m=m,
                stream_length=replayable.length,
                seconds=round(seconds, 4),
                edges_per_sec=round(replayable.length / max(seconds, 1e-9), 1),
                peak_words=result.space.peak_words,
                cover_size=result.cover_size,
                max_rss_kb=_max_rss_kb(),
            )
            records.append(record)
            if progress is not None:
                progress(
                    f"{config:>7} {name:<13} N={record.stream_length:>8} "
                    f"{record.edges_per_sec:>12,.0f} edges/s "
                    f"({record.seconds:.2f}s)"
                )
    return records


@dataclass
class TraceOverheadRecord:
    """Tracing-cost measurement for one (algorithm, instance) cell.

    ``seconds_off`` is the run with the default :class:`NullTracer`,
    ``seconds_on`` the identical run (same seed, same frozen stream)
    with a :class:`RecordingTracer` attached.  ``covers_identical``
    certifies the observability contract: tracing must never perturb
    the algorithm's output.
    """

    config: str
    algorithm: str
    stream_length: int
    seconds_off: float
    seconds_on: float
    overhead_fraction: float
    events: int
    covers_identical: bool


def run_trace_overhead(
    tier: str = "smoke",
    seed: int = 0,
    algorithms: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[TraceOverheadRecord]:
    """Measure the cost of structured tracing, disabled and enabled.

    For each benchmark cell the algorithm runs twice on the same frozen
    stream with the same seed: once untraced (the hot path must pay
    only ``tracer.enabled`` checks) and once with a recording tracer.
    Raises ``AssertionError`` if the two covers differ — tracing that
    changes results is a bug, not an overhead.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
    records: List[TraceOverheadRecord] = []
    for config, n, m, set_size in TIERS[tier]:
        instance = fixed_size_instance(n, m, set_size, seed=seed)
        replayable = ReplayableStream(instance, RandomOrder(seed=seed))
        for name, factory in _algorithms(n, seed).items():
            if algorithms is not None and name not in algorithms:
                continue
            untraced = factory()
            start = time.perf_counter()
            result_off = untraced.run(replayable.fresh())
            seconds_off = time.perf_counter() - start

            tracer = RecordingTracer()
            traced = factory()
            traced.set_tracer(tracer)
            start = time.perf_counter()
            result_on = traced.run(replayable.fresh())
            seconds_on = time.perf_counter() - start
            tracer.finish()

            identical = (
                result_off.cover == result_on.cover
                and result_off.certificate == result_on.certificate
                and result_off.space.peak_words == result_on.space.peak_words
            )
            assert identical, (
                f"tracing perturbed {name} on {config}: covers/certificates/"
                "space must be bit-identical with and without a tracer"
            )
            record = TraceOverheadRecord(
                config=config,
                algorithm=name,
                stream_length=replayable.length,
                seconds_off=round(seconds_off, 4),
                seconds_on=round(seconds_on, 4),
                overhead_fraction=round(
                    seconds_on / max(seconds_off, 1e-9) - 1.0, 4
                ),
                events=len(tracer.events),
                covers_identical=identical,
            )
            records.append(record)
            if progress is not None:
                progress(
                    f"{config:>7} {name:<13} off={record.seconds_off:.3f}s "
                    f"on={record.seconds_on:.3f}s "
                    f"(+{100 * record.overhead_fraction:.1f}%, "
                    f"{record.events} events)"
                )
    return records


@dataclass
class DistributedScalingRecord:
    """One point of the distributed scaling surface: a (backend, W) cell.

    ``workers`` is the semantic shard count; ``max_workers`` the real
    executor parallelism (set equal to ``workers`` for the curve, so the
    point measures the speedup available at that shard width).
    ``backend`` names the execution backend; ``speedup_vs_serial`` is
    this cell's throughput over the serial backend at the same
    ``(config, workers)`` cell (``None`` for the serial rows
    themselves).
    """

    config: str
    backend: str
    workers: int
    max_workers: int
    algorithm: str
    coordinator: str
    stream_length: int
    seconds: float
    edges_per_sec: float
    speedup_vs_serial: Optional[float]
    cover_size: int
    total_comm_words: int
    max_message_words: int
    peak_shard_words: int


#: Backends swept by :func:`run_distributed_scaling`, serial first so
#: every later cell has its baseline available.
DISTRIBUTED_BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")


def run_distributed_scaling(
    tier: str = "smoke",
    seed: int = 0,
    workers_grid: Sequence[int] = (1, 2, 4, 8),
    algorithm: str = "kk",
    coordinator: str = "chain",
    backends: Sequence[str] = DISTRIBUTED_BACKENDS,
    progress: Optional[Callable[[str], None]] = None,
) -> List[DistributedScalingRecord]:
    """Benchmark :func:`repro.distributed.run_distributed` over backend × W.

    Each grid point runs the full route → shard → merge pipeline with
    ``max_workers=W``, so the surface shows both the semantic effect of
    sharding (comm words grow with W) and the wall-clock effect of each
    execution backend.  The serial backend is always measured first so
    every (config, W) cell gets a ``speedup_vs_serial`` against the
    same-shaped serial run; the determinism contract makes every
    backend's semantic outputs identical, which the sweep asserts.
    """
    from repro.distributed import run_distributed

    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
    sweep = list(dict.fromkeys(["serial", *backends]))
    records: List[DistributedScalingRecord] = []
    for config, n, m, set_size in TIERS[tier]:
        instance = fixed_size_instance(n, m, set_size, seed=seed)
        stream_length = instance.num_edges
        serial_seconds: dict = {}
        serial_cover: dict = {}
        for backend in sweep:
            for workers in workers_grid:
                start = time.perf_counter()
                result = run_distributed(
                    instance,
                    workers=workers,
                    algorithm=algorithm,
                    coordinator=coordinator,
                    seed=seed,
                    max_workers=workers,
                    backend=backend,
                )
                seconds = time.perf_counter() - start
                if backend == "serial":
                    serial_seconds[workers] = seconds
                    serial_cover[workers] = result.cover_size
                else:
                    assert result.cover_size == serial_cover[workers], (
                        f"backend {backend!r} diverged from serial at "
                        f"{config} W={workers}: determinism contract broken"
                    )
                baseline = serial_seconds.get(workers)
                speedup = (
                    None
                    if backend == "serial" or not baseline
                    else round(baseline / max(seconds, 1e-9), 3)
                )
                record = DistributedScalingRecord(
                    config=config,
                    backend=backend,
                    workers=workers,
                    max_workers=workers,
                    algorithm=algorithm,
                    coordinator=coordinator,
                    stream_length=stream_length,
                    seconds=round(seconds, 4),
                    edges_per_sec=round(
                        stream_length / max(seconds, 1e-9), 1
                    ),
                    speedup_vs_serial=speedup,
                    cover_size=result.cover_size,
                    total_comm_words=result.total_comm_words,
                    max_message_words=result.max_message_words,
                    peak_shard_words=int(
                        result.diagnostics.get("peak_shard_space_words", 0)
                    ),
                )
                records.append(record)
                if progress is not None:
                    speedup_note = (
                        "" if speedup is None else f" x{speedup:.2f} vs serial"
                    )
                    progress(
                        f"{config:>7} {backend:<7} W={workers:<2} "
                        f"{record.edges_per_sec:>12,.0f} edges/s "
                        f"cover={record.cover_size} "
                        f"comm={record.total_comm_words}w "
                        f"({record.seconds:.2f}s){speedup_note}"
                    )
    return records


@dataclass
class KKKernelRecord:
    """One vectorized-vs-scalar KK kernel cell: same stream, both paths.

    ``identical`` certifies the tentpole gate — the vectorized kernel
    must reproduce the scalar reference's cover, certificate, and peak
    space exactly on the benchmarked stream, or the measurement refuses
    to exist (``run_kk_kernel_bench`` raises).
    """

    config: str
    n: int
    m: int
    stream_length: int
    reference_seconds: float
    reference_edges_per_sec: float
    kernel_seconds: float
    kernel_edges_per_sec: float
    speedup: float
    cover_size: int
    identical: bool


def run_kk_kernel_bench(
    tier: str = "full",
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> List[KKKernelRecord]:
    """Benchmark the vectorized KK kernel against ``kk-reference``.

    Both algorithms consume the identical frozen stream with the same
    seed, so the scalar path's timing is a true like-for-like baseline
    and the equality assertion is exact, not statistical.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
    records: List[KKKernelRecord] = []
    for config, n, m, set_size in TIERS[tier]:
        instance = fixed_size_instance(n, m, set_size, seed=seed)
        replayable = ReplayableStream(instance, RandomOrder(seed=seed))

        reference = KKReferenceAlgorithm(seed=seed)
        start = time.perf_counter()
        result_ref = reference.run(replayable.fresh())
        reference_seconds = time.perf_counter() - start

        kernel = KKAlgorithm(seed=seed)
        start = time.perf_counter()
        result_vec = kernel.run(replayable.fresh())
        kernel_seconds = time.perf_counter() - start

        identical = (
            result_vec.cover == result_ref.cover
            and result_vec.certificate == result_ref.certificate
            and result_vec.space.peak_words == result_ref.space.peak_words
        )
        assert identical, (
            f"vectorized kk diverged from kk-reference on {config}: the "
            "kernels must be byte-identical"
        )
        record = KKKernelRecord(
            config=config,
            n=n,
            m=m,
            stream_length=replayable.length,
            reference_seconds=round(reference_seconds, 4),
            reference_edges_per_sec=round(
                replayable.length / max(reference_seconds, 1e-9), 1
            ),
            kernel_seconds=round(kernel_seconds, 4),
            kernel_edges_per_sec=round(
                replayable.length / max(kernel_seconds, 1e-9), 1
            ),
            speedup=round(
                max(reference_seconds, 1e-9) / max(kernel_seconds, 1e-9), 2
            ),
            cover_size=len(result_vec.cover),
            identical=identical,
        )
        records.append(record)
        if progress is not None:
            progress(
                f"{config:>7} kk-kernel     "
                f"{record.reference_edges_per_sec:>12,.0f} -> "
                f"{record.kernel_edges_per_sec:>12,.0f} edges/s "
                f"(x{record.speedup:.1f}, identical)"
            )
    return records


@dataclass
class ShippingRecord:
    """Bytes-shipped-per-shard measurement for the process backend.

    Contrasts what one pooled dispatch serializes per task under
    pickled-edges shipping versus shared-memory spans on the same shard
    plan: ``pickle_*`` is O(shard edges), ``shm_*`` O(descriptor).  The
    segment itself (``segment_bytes``) is written once and mapped, not
    serialized per worker.
    """

    config: str
    workers: int
    stream_length: int
    pickle_total_bytes: int
    pickle_max_task_bytes: int
    shm_total_task_bytes: int
    shm_max_task_bytes: int
    segment_bytes: int
    reduction_factor: float
    shared_memory: bool


def run_shipping_bench(
    tier: str = "full",
    seed: int = 0,
    workers: int = 4,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ShippingRecord]:
    """Measure per-shard shipped bytes, pickled versus shared-memory.

    Builds the exact :class:`~repro.distributed.backends.ShardTask`
    records :func:`repro.distributed.run_distributed` would pool out,
    then pickles them both ways.  No algorithm runs — this isolates the
    serialization cost the zero-copy path removes.
    """
    from repro.distributed import build_shard_tasks
    from repro.distributed.shmem import (
        measure_shipping,
        shared_memory_available,
        ship_tasks,
    )

    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
    records: List[ShippingRecord] = []
    for config, n, m, set_size in TIERS[tier]:
        instance = fixed_size_instance(n, m, set_size, seed=seed)
        tasks = build_shard_tasks(instance, workers=workers, seed=seed)
        pickled = measure_shipping(tasks, "pickle")
        shm_total = shm_max = segment_bytes = 0
        shipped_shm = False
        if shared_memory_available():
            shipped, segment = ship_tasks(tasks)
            if segment is not None:
                try:
                    shm = measure_shipping(shipped, "shared-memory", segment)
                finally:
                    segment.cleanup()
                shm_total = shm.total_task_bytes
                shm_max = shm.max_task_bytes
                segment_bytes = shm.segment_bytes
                shipped_shm = True
        record = ShippingRecord(
            config=config,
            workers=workers,
            stream_length=instance.num_edges,
            pickle_total_bytes=pickled.total_task_bytes,
            pickle_max_task_bytes=pickled.max_task_bytes,
            shm_total_task_bytes=shm_total,
            shm_max_task_bytes=shm_max,
            segment_bytes=segment_bytes,
            reduction_factor=round(
                pickled.total_task_bytes / max(shm_total, 1), 1
            ),
            shared_memory=shipped_shm,
        )
        records.append(record)
        if progress is not None:
            progress(
                f"{config:>7} shipping W={workers} "
                f"pickle={record.pickle_total_bytes:>12,}B -> "
                f"shm tasks={record.shm_total_task_bytes:>8,}B "
                f"(x{record.reduction_factor:,.0f} smaller, "
                f"segment {record.segment_bytes:,}B mapped)"
            )
    return records


@dataclass
class TransportRecord:
    """One (transport, coordinator) wire-measurement cell.

    ``parity_with_inproc`` certifies the transport gate: the cell's
    cover, certificate, and comm report are identical to the inproc
    run of the same shard plan (``run_transport_bench`` raises
    otherwise, so a committed ``False`` cannot exist — the field keeps
    the certification visible in the artifact).  ``overhead_ratio`` is
    measured wire bytes over 8 × metered words, ≥ 1 by construction of
    the wire format.
    """

    config: str
    transport: str
    coordinator: str
    codec: str
    workers: int
    seconds: float
    metered_words: int
    wire_bytes: int
    frames: int
    retransmits: int
    overhead_ratio: float
    parity_with_inproc: bool


def run_transport_bench(
    tier: str = "smoke",
    seed: int = 0,
    workers: int = 4,
    coordinators: Sequence[str] = ("union", "greedy", "chain", "tree"),
    progress: Optional[Callable[[str], None]] = None,
) -> List[TransportRecord]:
    """Benchmark the wire transports over coordinator × transport.

    Every cell reruns the same shard plan through one transport and
    records what the wire carried; the inproc cell of each coordinator
    is the parity baseline the other transports are asserted against.
    A sandbox that forbids binding skips the socket cells (they are
    simply absent from the records, mirroring the parity gate).
    """
    from repro.distributed import run_distributed
    from repro.distributed.transport import SocketTransport, make_transport
    from repro.errors import TransportError

    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
    records: List[TransportRecord] = []
    for config, n, m, set_size in TIERS[tier]:
        instance = fixed_size_instance(n, m, set_size, seed=seed)
        for coordinator in coordinators:
            baseline = None
            for name in ("inproc", "loopback", "socket"):
                if name == "socket":
                    try:
                        transport = SocketTransport()
                    except TransportError:
                        if progress is not None:
                            progress(
                                f"{config:>7} socket  {coordinator:<7} "
                                "skipped (bind forbidden)"
                            )
                        continue
                else:
                    transport = make_transport(name)
                start = time.perf_counter()
                result = run_distributed(
                    instance,
                    workers=workers,
                    coordinator=coordinator,
                    seed=seed,
                    transport=transport,
                )
                seconds = time.perf_counter() - start
                if baseline is None:
                    baseline = result
                    parity = True
                else:
                    parity = (
                        result.cover == baseline.cover
                        and result.certificate == baseline.certificate
                        and result.comm == baseline.comm
                    )
                    assert parity, (
                        f"transport {name!r} diverged from inproc at "
                        f"{config}/{coordinator}: parity contract broken"
                    )
                wire = result.transport
                record = TransportRecord(
                    config=config,
                    transport=name,
                    coordinator=coordinator,
                    codec=wire.codec,
                    workers=workers,
                    seconds=round(seconds, 4),
                    metered_words=wire.metered_words,
                    wire_bytes=wire.total_bytes,
                    frames=wire.total_frames,
                    retransmits=wire.retransmits,
                    overhead_ratio=round(wire.overhead_ratio, 4),
                    parity_with_inproc=parity,
                )
                records.append(record)
                if progress is not None:
                    progress(
                        f"{config:>7} {name:<8} {coordinator:<7} "
                        f"{record.wire_bytes:>9,}B in {record.frames} frames "
                        f"({record.metered_words}w, "
                        f"x{record.overhead_ratio:.3f}, "
                        f"{record.seconds:.2f}s)"
                    )
    return records


@dataclass
class MergeLatencyRecord:
    """One (coordinator, τ-mode, W) cell of the merge critical path.

    ``logical_steps`` and ``idle_ticks`` come off the async simulator's
    logical clock — the chain's state relay costs ``2(W-1)`` steps while
    the tournament's round-batched hand-offs cost ``2·⌈log₂W⌉``, and
    ``merge_rounds`` records the dependency depth directly.  The tree
    pays in ``max_message_words`` (leaves ship witnesses for every held
    element); ``cover_size`` shows what adaptive τ re-estimation buys
    back.  Every cell is verified against its instance and checked for
    sync/async cover parity before the measurement exists.
    """

    config: str
    coordinator: str
    threshold_mode: str
    workers: int
    seconds: float
    logical_steps: int
    idle_ticks: int
    merge_rounds: int
    cover_size: int
    total_comm_words: int
    max_message_words: int


def run_merge_bench(
    tier: str = "smoke",
    seed: int = 0,
    workers_grid: Sequence[int] = (2, 4, 8, 16),
    progress: Optional[Callable[[str], None]] = None,
) -> List[MergeLatencyRecord]:
    """Benchmark merge topologies: chain vs tournament, fixed vs adaptive τ.

    Each cell runs the async simulator (serial backend, fault-free
    default schedule) so the logical clock measures pure dependency
    depth; the same cell is re-run synchronously and the covers are
    asserted identical.  At every ``W >= 8`` the tree's critical path is
    asserted strictly below the chain's — the tentpole claim, refusing
    to record numbers that do not show it.
    """
    from repro.distributed import run_distributed
    from repro.distributed.asyncsim import run_distributed_async

    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
    records: List[MergeLatencyRecord] = []
    for config, n, m, set_size in TIERS[tier]:
        instance = fixed_size_instance(n, m, set_size, seed=seed)
        steps_at: Dict[Tuple[str, int], int] = {}
        for workers in workers_grid:
            for coordinator in ("chain", "tree"):
                for adaptive in (False, True):
                    mode = "adaptive" if adaptive else "fixed"
                    start = time.perf_counter()
                    result = run_distributed_async(
                        instance,
                        workers=workers,
                        coordinator=coordinator,
                        adaptive_threshold=adaptive,
                        seed=seed,
                        backend="serial",
                        schedule_seed=seed,
                    )
                    seconds = time.perf_counter() - start
                    result.verify(instance)
                    sync = run_distributed(
                        instance,
                        workers=workers,
                        coordinator=coordinator,
                        adaptive_threshold=adaptive,
                        seed=seed,
                        backend="serial",
                    )
                    assert result.cover == sync.cover, (
                        f"async/sync cover parity broken at {config}/"
                        f"{coordinator}/{mode} W={workers}"
                    )
                    steps = int(result.diagnostics["logical_steps"])
                    steps_at[(f"{coordinator}/{mode}", workers)] = steps
                    record = MergeLatencyRecord(
                        config=config,
                        coordinator=coordinator,
                        threshold_mode=mode,
                        workers=workers,
                        seconds=round(seconds, 4),
                        logical_steps=steps,
                        idle_ticks=int(result.diagnostics["idle_ticks"]),
                        merge_rounds=int(
                            result.diagnostics.get("merge_rounds", workers - 1)
                        ),
                        cover_size=result.cover_size,
                        total_comm_words=result.total_comm_words,
                        max_message_words=result.max_message_words,
                    )
                    records.append(record)
                    if progress is not None:
                        progress(
                            f"{config:>7} {coordinator:<5} {mode:<8} "
                            f"W={workers:<2} steps={record.logical_steps:<3} "
                            f"rounds={record.merge_rounds:<2} "
                            f"cover={record.cover_size:<3} "
                            f"maxmsg={record.max_message_words}w "
                            f"({record.seconds:.2f}s)"
                        )
            if workers >= 8:
                for mode in ("fixed", "adaptive"):
                    tree_steps = steps_at[(f"tree/{mode}", workers)]
                    chain_steps = steps_at[(f"chain/{mode}", workers)]
                    assert tree_steps < chain_steps, (
                        f"tournament merge lost its latency edge at {config}/"
                        f"{mode} W={workers}: tree {tree_steps} steps vs "
                        f"chain {chain_steps} — critical path must be "
                        "Theta(log W)"
                    )
    return records


def check_kk_floor(
    current: Sequence[BenchRecord], seed_baseline: Sequence[dict]
) -> List[str]:
    """Fail if kk throughput falls back to the scalar seed baseline.

    The floor is the *fastest* committed seed-baseline kk cell: after
    the kernel rework, even the smoke tier must clear what the scalar
    implementation ever achieved.  Returns failure strings (empty =
    pass); an absent baseline passes vacuously.
    """
    floor = max(
        (
            row["edges_per_sec"]
            for row in seed_baseline
            if row.get("algorithm") == "kk"
        ),
        default=0.0,
    )
    failures: List[str] = []
    for record in current:
        if record.algorithm != "kk":
            continue
        if record.edges_per_sec < floor:
            failures.append(
                f"{record.config}/kk: {record.edges_per_sec:,.0f} edges/s is "
                f"below the scalar seed-baseline floor of {floor:,.0f} "
                "edges/s — the vectorized kernel has regressed"
            )
    return failures


def records_to_json(records: Sequence[object]) -> List[dict]:
    """Plain-dict form of dataclass records, ready for ``json.dump``."""
    return [asdict(r) for r in records]


def load_bench_file(path: Path) -> dict:
    """Read a ``BENCH_perf.json`` file (empty dict if absent)."""
    if not path.exists():
        return {}
    return json.loads(path.read_text(encoding="utf-8"))


def write_bench_file(
    path: Path,
    smoke: Optional[Sequence[BenchRecord]] = None,
    full: Optional[Sequence[BenchRecord]] = None,
    seed_baseline: Optional[List[dict]] = None,
    distributed: Optional[Sequence[DistributedScalingRecord]] = None,
    kk_kernel: Optional[Sequence[KKKernelRecord]] = None,
    shipping: Optional[Sequence[ShippingRecord]] = None,
    transport: Optional[Sequence[TransportRecord]] = None,
    merge: Optional[Sequence[MergeLatencyRecord]] = None,
) -> dict:
    """Write ``BENCH_perf.json``, preserving any recorded seed baseline.

    ``seed_baseline`` holds the pre-optimization ("before") numbers; it
    is kept verbatim across re-runs so the speedup trajectory stays
    visible in the committed file.  Each of ``smoke``/``full``/
    ``distributed``/``kk_kernel``/``shipping``/``transport``/``merge``
    replaces its section when given and preserves the committed section
    when ``None`` — so a
    distributed-only run does not clobber the throughput ladder, and
    vice versa.
    """
    existing = load_bench_file(path)

    def section(records, key: str) -> List[dict]:
        if records is None:
            return existing.get(key, [])
        return records_to_json(records)

    payload = {
        "schema": 5,
        "description": (
            "Hot-path throughput benchmark; see scripts/run_perf_bench.py. "
            "'seed_baseline' is the pre-optimization measurement, "
            "'full'/'smoke' are the current code, 'distributed' the "
            "backend x W scaling surface of the sharded executor "
            "(speedup_vs_serial compares each backend against the serial "
            "backend at the same shard width), 'kk_kernel' the vectorized "
            "kk kernel vs the scalar kk-reference on identical streams, "
            "'shipping' the process backend's per-task serialized "
            "bytes under pickled-edges vs shared-memory span shipping, "
            "'transport' the wire layer's measured bytes/frames per "
            "(transport, coordinator) cell with the bytes-per-word "
            "overhead ratio (>= 1 by construction; parity_with_inproc "
            "certifies identical covers/comm reports across transports), "
            "and 'merge' the async-clock critical path of chain vs "
            "tournament merge under fixed vs adaptive tau (tree "
            "logical_steps grow as Theta(log W) vs the chain's Theta(W); "
            "every cell is verified and sync/async cover parity is "
            "asserted before the numbers are recorded). "
            "Caveat: numbers committed from a single-core container "
            "cannot show process-backend speedup; the CI artifact carries "
            "the multi-core measurement."
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "seed_baseline": (
            seed_baseline
            if seed_baseline is not None
            else existing.get("seed_baseline", [])
        ),
        "smoke": section(smoke, "smoke"),
        "full": section(full, "full"),
        "distributed": section(distributed, "distributed"),
        "kk_kernel": section(kk_kernel, "kk_kernel"),
        "shipping": section(shipping, "shipping"),
        "transport": section(transport, "transport"),
        "merge": section(merge, "merge"),
    }
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def check_regression(
    current: Sequence[BenchRecord],
    committed: Sequence[dict],
    factor: float = 2.0,
) -> List[str]:
    """Compare a smoke run against committed numbers.

    Returns a list of human-readable failure strings, one per
    (config, algorithm) cell whose edges/sec dropped by more than
    ``factor`` versus the committed measurement.  An empty list means
    no regression.
    """
    baseline = {
        (row["config"], row["algorithm"]): row["edges_per_sec"]
        for row in committed
    }
    failures: List[str] = []
    for record in current:
        key = (record.config, record.algorithm)
        reference = baseline.get(key)
        if reference is None or reference <= 0:
            continue
        if record.edges_per_sec * factor < reference:
            failures.append(
                f"{record.config}/{record.algorithm}: "
                f"{record.edges_per_sec:,.0f} edges/s is more than {factor}x "
                f"below the committed {reference:,.0f} edges/s"
            )
    return failures


def speedup_table(
    before: Sequence[dict], after: Sequence[BenchRecord]
) -> List[Tuple[str, str, float, float, float]]:
    """Rows of (config, algorithm, before, after, speedup) for reporting."""
    by_key = {(r["config"], r["algorithm"]): r["edges_per_sec"] for r in before}
    rows = []
    for record in after:
        ref = by_key.get((record.config, record.algorithm))
        if ref:
            rows.append(
                (
                    record.config,
                    record.algorithm,
                    ref,
                    record.edges_per_sec,
                    record.edges_per_sec / ref,
                )
            )
    return rows
