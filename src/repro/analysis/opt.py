"""Exact and bounded OPT computation for approximation-ratio reporting.

Approximation ratios need OPT, and Set Cover is NP-hard, so:

* :func:`exact_opt` — branch and bound over uncovered elements, exact
  for the small instances the unit tests and ratio experiments use.
  Branching on a minimum-degree uncovered element keeps the tree
  narrow; greedy supplies the initial upper bound and the classic
  ``uncovered / max_set_size`` bound prunes.
* :func:`opt_lower_bound` — a fast LP-free lower bound (max of the
  counting bound and a greedy-dual bound) for instances too large to
  solve exactly; ratios reported against it are conservative
  (true ratio ≤ reported ratio).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.baselines.greedy import greedy_cover
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.streaming.instance import SetCoverInstance
from repro.types import ElementId, SetId


def exact_opt(
    instance: SetCoverInstance, node_limit: int = 2_000_000
) -> Tuple[int, FrozenSet[SetId]]:
    """Exact minimum set cover via branch and bound.

    Parameters
    ----------
    instance:
        Must be feasible.
    node_limit:
        Safety valve on search nodes; exceeded limits raise
        :class:`ConfigurationError` (the instance is too large — use
        :func:`opt_lower_bound` instead).

    Returns
    -------
    (size, cover):
        The optimal size and one optimal cover.
    """
    instance.validate()
    covering: List[FrozenSet[SetId]] = [
        instance.covering_sets(u) for u in range(instance.n)
    ]
    members: List[FrozenSet[ElementId]] = [
        instance.set_members(s) for s in range(instance.m)
    ]
    max_size = max((len(mem) for mem in members), default=1)

    best = greedy_cover(instance)
    best_size = best.cover_size
    best_cover: Set[SetId] = set(best.cover)
    nodes = 0

    def search(uncovered: Set[ElementId], chosen: Set[SetId]) -> None:
        nonlocal best_size, best_cover, nodes
        nodes += 1
        if nodes > node_limit:
            raise ConfigurationError(
                f"exact_opt exceeded node limit {node_limit}; instance too "
                "large for exact solving"
            )
        if not uncovered:
            if len(chosen) < best_size:
                best_size = len(chosen)
                best_cover = set(chosen)
            return
        # Counting-bound prune.
        if len(chosen) + math.ceil(len(uncovered) / max_size) >= best_size:
            return
        # Branch on a minimum-degree uncovered element: few children.
        pivot = min(uncovered, key=lambda u: len(covering[u]))
        for s in sorted(
            covering[pivot], key=lambda s: -len(members[s] & uncovered)
        ):
            chosen.add(s)
            removed = members[s] & uncovered
            uncovered -= removed
            search(uncovered, chosen)
            uncovered |= removed
            chosen.discard(s)

    search(set(range(instance.n)), set())
    return best_size, frozenset(best_cover)


def opt_lower_bound(instance: SetCoverInstance) -> int:
    """A cheap valid lower bound on OPT.

    The maximum of:

    * the counting bound ``ceil(n / max_set_size)``;
    * a maximal-matching-style dual bound: greedily pick elements whose
      covering-set lists are pairwise disjoint — any cover needs one
      distinct set per picked element.
    """
    max_size = max(
        (instance.set_size(s) for s in range(instance.m)), default=1
    )
    counting = math.ceil(instance.n / max(1, max_size))

    used_sets: Set[SetId] = set()
    dual = 0
    # Scan elements by ascending degree so low-degree elements (which
    # constrain the dual most) are picked first.
    degrees = instance.element_degrees()
    for u in sorted(range(instance.n), key=lambda u: degrees[u]):
        covering = instance.covering_sets(u)
        if not covering:
            raise InfeasibleInstanceError(f"element {u} is in no set")
        if covering.isdisjoint(used_sets):
            used_sets.update(covering)
            dual += 1
    return max(1, counting, dual)


def opt_or_bound(
    instance: SetCoverInstance,
    exact_size_limit: int = 2_000,
    node_limit: int = 200_000,
) -> Tuple[int, bool]:
    """Best OPT handle available: ``(value, is_exact)``.

    Solves exactly when ``n·m`` is small enough and the search fits the
    node limit; otherwise falls back to :func:`opt_lower_bound`.
    """
    if instance.n * instance.m <= exact_size_limit * 100:
        try:
            size, _ = exact_opt(instance, node_limit=node_limit)
            return size, True
        except ConfigurationError:
            pass
    return opt_lower_bound(instance), False
