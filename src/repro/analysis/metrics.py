"""Metrics extracted from algorithm runs, plus scaling-law fits.

The experiments turn Table-1's asymptotic claims into measurable
statements via log-log slope fits: if space ∝ m·n/α², the fitted
exponent of space against α at fixed (n, m) is ≈ −2.  :func:`fit_power_law`
provides the fit; :class:`RunMetrics` is the per-run record every
experiment produces.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.solution import StreamingResult
from repro.streaming.instance import SetCoverInstance


@dataclass
class RunMetrics:
    """One run, flattened for tables and aggregation."""

    algorithm: str
    order: str
    n: int
    m: int
    stream_length: int
    cover_size: int
    peak_words: int
    opt_handle: int
    opt_is_exact: bool
    valid: bool
    seed: Optional[int] = None
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Cover size over the OPT handle (conservative if not exact)."""
        return self.cover_size / max(1, self.opt_handle)

    @property
    def normalized_ratio(self) -> float:
        """Ratio divided by √n — flat iff the algorithm is Θ(√n)-approx."""
        return self.ratio / math.sqrt(self.n)

    @property
    def words_per_set(self) -> float:
        """Peak words divided by m — flat iff space is Θ̃(m)."""
        return self.peak_words / max(1, self.m)

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-safe dict that round-trips exactly.

        All fields are ints, strings, bools, or floats; Python's JSON
        encoder serialises floats via ``repr``, which round-trips
        bit-exactly, so a journaled row reloads equal to the original —
        the property the sweep checkpoint/resume machinery relies on.
        """
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Inverse of :meth:`to_json_dict`."""
        payload = dict(data)
        payload["diagnostics"] = dict(payload.get("diagnostics") or {})
        return cls(**payload)


def metrics_from_result(
    result: StreamingResult,
    instance: SetCoverInstance,
    order: str,
    opt_handle: int,
    opt_is_exact: bool,
    stream_length: Optional[int] = None,
    seed: Optional[int] = None,
) -> RunMetrics:
    """Flatten a :class:`StreamingResult` into a :class:`RunMetrics`."""
    return RunMetrics(
        algorithm=result.algorithm,
        order=order,
        n=instance.n,
        m=instance.m,
        stream_length=(
            stream_length if stream_length is not None else instance.num_edges
        ),
        cover_size=result.cover_size,
        peak_words=result.space.peak_words,
        opt_handle=opt_handle,
        opt_is_exact=opt_is_exact,
        valid=result.is_valid(instance),
        seed=seed,
        diagnostics=dict(result.diagnostics),
    )


@dataclass(frozen=True)
class Aggregate:
    """Mean / stdev / min / max of one metric over replicated runs."""

    mean: float
    stdev: float
    minimum: float
    maximum: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.stdev:.2f}"


def aggregate(values: Sequence[float]) -> Aggregate:
    """Aggregate a value sequence (stdev is 0 for a single value)."""
    if not values:
        raise ValueError("cannot aggregate an empty sequence")
    return Aggregate(
        mean=statistics.fmean(values),
        stdev=statistics.stdev(values) if len(values) > 1 else 0.0,
        minimum=min(values),
        maximum=max(values),
        count=len(values),
    )


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares fit of ``y = c·x^e`` in log-log space.

    Returns ``(exponent, constant)``.  Used to compare measured scaling
    exponents against the theorems' predictions (e.g. Algorithm 2's
    space-vs-α exponent should be ≈ −2).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive data")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mean_x = statistics.fmean(lx)
    mean_y = statistics.fmean(ly)
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("all x values identical; cannot fit")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    exponent = sxy / sxx
    constant = math.exp(mean_y - exponent * mean_x)
    return exponent, constant


def geometric_decay_rate(counts: Sequence[float]) -> Optional[float]:
    """Mean ratio ``counts[i+1]/counts[i]`` over positive entries.

    Used by the invariants experiment: the special-set counts per epoch
    should decay with ratio ≤ ~0.55 (Lemma 8's 1.1·m/2ʲ bound).
    Returns ``None`` when there are fewer than two positive entries.
    """
    ratios: List[float] = []
    for prev, curr in zip(counts, counts[1:]):
        if prev > 0 and curr > 0:
            ratios.append(curr / prev)
        elif prev > 0 and curr == 0:
            ratios.append(0.0)
    if not ratios:
        return None
    return statistics.fmean(ratios)
