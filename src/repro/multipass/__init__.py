"""Multi-pass streaming algorithms (the §1 related-work regime)."""

from repro.multipass.base import MultiPassSetCoverAlgorithm
from repro.multipass.fractional import (
    FractionalCover,
    FractionalMWU,
    randomized_rounding,
)
from repro.multipass.threshold_greedy import (
    MultiPassThresholdGreedy,
    geometric_thresholds,
)

__all__ = [
    "MultiPassSetCoverAlgorithm",
    "MultiPassThresholdGreedy",
    "geometric_thresholds",
    "FractionalCover",
    "FractionalMWU",
    "randomized_rounding",
]
