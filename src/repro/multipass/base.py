"""Multi-pass streaming algorithms: the p-pass regime of Section 1.

The paper's introduction situates its one-pass results against
multi-pass work — Bateni–Esfandiari–Mirrokni's p-pass
((1+ε)·log n)-approximation [6] and Chakrabarti–Wirth's
O(n^{1/(p+1)})-approximation [10].  This subpackage implements the
classic threshold-greedy multi-pass scheme in the edge-arrival model so
those tradeoffs can be measured against the one-pass algorithms.

A multi-pass algorithm consumes a :class:`ReplayableStream`: each pass
is a fresh one-pass view of the *same* ordering, and the number of
passes is recorded.  Space is metered exactly as for one-pass
algorithms.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.solution import StreamingResult
from repro.streaming.space import SpaceBudget, SpaceMeter
from repro.streaming.stream import ReplayableStream
from repro.types import SeedLike, make_rng


class MultiPassSetCoverAlgorithm:
    """Base class for p-pass edge-arrival set-cover algorithms.

    Mirrors :class:`~repro.core.base.StreamingSetCoverAlgorithm` but
    :meth:`run` takes a :class:`ReplayableStream` (the only sanctioned
    way to see the same ordering more than once) and the result's
    diagnostics record ``passes_used``.
    """

    name = "abstract-multipass"

    def __init__(
        self,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        self._seed = seed
        self._space_budget = space_budget
        self._rng: random.Random = make_rng(seed)
        self._meter = SpaceMeter(budget=space_budget)

    def run(self, replayable: ReplayableStream) -> StreamingResult:
        """Execute the multi-pass computation and return the result."""
        self._meter = SpaceMeter(budget=self._space_budget)
        result = self._run(replayable)
        result.algorithm = result.algorithm or self.name
        return result

    def _run(self, replayable: ReplayableStream) -> StreamingResult:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
