"""p-pass threshold greedy for edge-arrival Set Cover.

The classic multi-pass emulation of greedy (Saha–Getoor [22] /
Cormode–Karloff–Wirth [11] style, in the form the paper's Section 1
compares against):

* Fix a descending threshold schedule ``τ₁ > τ₂ > … > τ_p = 1``
  (default: geometric, ``τ_k = n^{(p−k)/p}``).
* In pass ``k``, maintain an uncovered-degree counter per set (Õ(m)
  words, exactly the KK-algorithm's counter state); the moment a set's
  counter reaches ``τ_k`` it joins the solution and covers its elements
  arriving from then on — including in *later* passes, where its
  earlier-arrived elements reappear and get witnessed.
* After the final pass (``τ_p = 1``: any set containing a still-
  uncovered element is taken on arrival), every element is witnessed,
  so no patching stage is needed.

Guarantees (standard analysis): a set taken at threshold ``τ`` covered
``τ`` new elements, so pass ``k`` adds at most ``n/τ_k`` sets; a set
not taken in pass ``k`` covers fewer than ``τ_k`` of the elements still
uncovered afterwards, which bounds the residue against OPT.  With
``p = log₂ n`` passes (τ halving) the output is an O(log n)-
approximation — the multi-pass quality the paper's one-pass algorithms
trade away; with constant ``p`` the factor is O(p·n^{1/p}), matching
the Chakrabarti–Wirth regime up to constants.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

from repro.core.solution import StreamingResult
from repro.errors import ConfigurationError
from repro.multipass.base import MultiPassSetCoverAlgorithm
from repro.streaming.space import SpaceBudget, words_for_mapping, words_for_set
from repro.streaming.stream import ReplayableStream
from repro.types import ElementId, SeedLike, SetId


def geometric_thresholds(n: int, passes: int) -> List[float]:
    """The default schedule ``τ_k = n^{(p−k)/p}``, ending at 1."""
    if passes < 1:
        raise ConfigurationError(f"passes must be >= 1, got {passes}")
    return [max(1.0, n ** ((passes - k) / passes)) for k in range(1, passes + 1)]


class MultiPassThresholdGreedy(MultiPassSetCoverAlgorithm):
    """Threshold greedy over ``p`` passes of the same edge ordering.

    Parameters
    ----------
    passes:
        Number of passes p ≥ 1.  ``p = 1`` degenerates to first-fit
        (threshold 1 everywhere); large ``p`` approaches greedy quality.
    thresholds:
        Explicit descending schedule; overrides the geometric default.
        The last threshold must be 1 (so the final pass completes the
        cover without patching).
    """

    name = "multipass-threshold-greedy"

    def __init__(
        self,
        passes: int = 4,
        thresholds: Optional[Sequence[float]] = None,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        if passes < 1:
            raise ConfigurationError(f"passes must be >= 1, got {passes}")
        self.passes = passes
        if thresholds is not None:
            schedule = [float(t) for t in thresholds]
            if not schedule:
                raise ConfigurationError("thresholds must be non-empty")
            if any(
                later > earlier
                for earlier, later in zip(schedule, schedule[1:])
            ):
                raise ConfigurationError("thresholds must be non-increasing")
            if schedule[-1] != 1.0:
                raise ConfigurationError(
                    "the final threshold must be 1 so the last pass "
                    "completes the cover"
                )
            self._explicit_thresholds: Optional[List[float]] = schedule
        else:
            self._explicit_thresholds = None

    def schedule_for(self, n: int) -> List[float]:
        """The threshold schedule used on a universe of size ``n``."""
        if self._explicit_thresholds is not None:
            return list(self._explicit_thresholds)
        return geometric_thresholds(n, self.passes)

    def _run(self, replayable: ReplayableStream) -> StreamingResult:
        instance = replayable.instance
        n = instance.n
        meter = self._meter
        schedule = self.schedule_for(n)

        cover: Set[SetId] = set()
        certificate: Dict[ElementId, SetId] = {}
        covered: Set[ElementId] = set()
        additions_per_pass: List[int] = []

        for threshold in schedule:
            degrees: Dict[SetId, int] = {}
            added_this_pass = 0
            for set_id, element in replayable.fresh():
                if set_id in cover:
                    if element not in covered:
                        covered.add(element)
                        certificate[element] = set_id
                        meter.set_component(
                            "covered", words_for_set(len(covered))
                        )
                    continue
                if element in covered:
                    continue
                degree = degrees.get(set_id, 0) + 1
                degrees[set_id] = degree
                meter.set_component(
                    "degree-counters", words_for_mapping(len(degrees))
                )
                if degree >= threshold:
                    cover.add(set_id)
                    added_this_pass += 1
                    covered.add(element)
                    certificate[element] = set_id
                    meter.set_component("cover", words_for_set(len(cover)))
                    meter.set_component("covered", words_for_set(len(covered)))
            additions_per_pass.append(added_this_pass)
            meter.set_component("degree-counters", 0)
            if len(covered) == n:
                break

        # The final threshold is 1, so the cover is complete; verify the
        # invariant defensively for feasible instances.
        if len(covered) != n:
            from repro.errors import InvalidCoverError

            missing = [u for u in range(n) if u not in covered][:5]
            raise InvalidCoverError(
                f"multi-pass run left {n - len(covered)} element(s) "
                f"uncovered (e.g. {missing}); instance infeasible?"
            )

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "passes_used": float(len(additions_per_pass)),
                "passes_configured": float(len(schedule)),
                "first_threshold": schedule[0],
                **{
                    f"added_pass_{k}": float(count)
                    for k, count in enumerate(additions_per_pass, start=1)
                },
            },
        )
