"""Multi-pass *fractional* Set Cover in the edge-arrival model.

The paper's introduction cites Indyk et al. [16], who observed that
their multi-pass streaming algorithm for fractional Set Cover also runs
in the edge-arrival setting.  This module implements that regime with
the classic multiplicative-weights scheme:

* Maintain a weight ``w_u`` per element (Õ(n) words), initially 1.
* Each pass computes, for every set, its current *score*
  ``Σ_{u ∈ S} w_u`` with one accumulator per set (Õ(m) words) — a
  single edge-arrival pass, order-oblivious.
* After the pass, the best-scoring set receives a fractional increment
  and the weights of its elements are multiplied by ``(1 − ε)``
  (computable because a second accumulator pass is not needed: the
  membership facts arrive again next pass, so the weight update is
  applied lazily via a per-set discount — see ``_apply_increment``).
* After ``T`` passes the increments, scaled to feasibility, form a
  fractional cover of value O(log n/ε)·OPT_f (the weighted-greedy
  covering guarantee; [16] obtain (1+ε) with a more elaborate width
  reduction);  :func:`randomized_rounding` converts it to an integral
  cover of expected size O(log n) times its value.

Space: Õ(m + n); passes: one per increment (the [16] tradeoff trades
passes for precision — we expose ``increments`` directly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.solution import StreamingResult, certificate_from_cover
from repro.errors import ConfigurationError, InvalidCoverError
from repro.multipass.base import MultiPassSetCoverAlgorithm
from repro.streaming.space import (
    SpaceBudget,
    words_for_mapping,
    words_for_set,
)
from repro.streaming.stream import ReplayableStream
from repro.types import ElementId, SeedLike, SetId, make_rng


@dataclass
class FractionalCover:
    """A fractional set-cover solution ``x : S → [0, ∞)``.

    ``value`` is ``Σ x_S``; feasibility means every element has
    ``Σ_{S ∋ u} x_S ≥ 1`` (checked against the ground-truth instance by
    :meth:`coverage_of`).
    """

    weights: Dict[SetId, float] = field(default_factory=dict)

    @property
    def value(self) -> float:
        """The fractional objective Σ x_S."""
        return sum(self.weights.values())

    def coverage_of(self, instance, element: ElementId) -> float:
        """``Σ_{S ∋ element} x_S`` measured against the instance."""
        return sum(
            x
            for set_id, x in self.weights.items()
            if instance.contains(set_id, element)
        )

    def min_coverage(self, instance) -> float:
        """The least-covered element's fractional coverage."""
        return min(
            self.coverage_of(instance, u) for u in range(instance.n)
        )

    def scaled_to_feasible(self, instance) -> "FractionalCover":
        """Scale ``x`` so every element reaches coverage ≥ 1."""
        floor = self.min_coverage(instance)
        if floor <= 0:
            raise InvalidCoverError(
                "fractional solution leaves some element entirely uncovered"
            )
        if floor >= 1.0:
            return FractionalCover(dict(self.weights))
        return FractionalCover(
            {s: x / floor for s, x in self.weights.items()}
        )


class FractionalMWU(MultiPassSetCoverAlgorithm):
    """Multiplicative-weights fractional Set Cover ([16]'s regime).

    Parameters
    ----------
    increments:
        Number of passes / fractional increments T.
    epsilon:
        Weight decay per covered element (precision/pass tradeoff).
    """

    name = "fractional-mwu"

    def __init__(
        self,
        increments: int = 32,
        epsilon: float = 0.5,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        if increments < 1:
            raise ConfigurationError(
                f"increments must be >= 1, got {increments}"
            )
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {epsilon}"
            )
        self.increments = increments
        self.epsilon = epsilon
        self.last_fractional: Optional[FractionalCover] = None

    def solve_fractional(
        self, replayable: ReplayableStream
    ) -> FractionalCover:
        """Run the MWU passes and return the (feasibility-scaled) cover."""
        instance = replayable.instance
        n = instance.n
        meter = self._meter

        element_weight: Dict[ElementId, float] = {u: 1.0 for u in range(n)}
        meter.set_component("element-weights", words_for_mapping(n))
        raw = FractionalCover()

        for _ in range(self.increments):
            scores: Dict[SetId, float] = {}
            for set_id, element in replayable.fresh():
                scores[set_id] = scores.get(set_id, 0.0) + element_weight[element]
                meter.set_component(
                    "set-scores", words_for_mapping(len(scores))
                )
            if not scores:
                break
            best_set = max(scores, key=lambda s: (scores[s], -s))
            if scores[best_set] <= 0:
                break
            raw.weights[best_set] = raw.weights.get(best_set, 0.0) + 1.0
            meter.set_component(
                "fractional-x", words_for_mapping(len(raw.weights))
            )
            # Decaying the chosen set's elements needs its membership,
            # which the score pass did not store (only one accumulator
            # per set).  A dedicated decay pass reads the edges again
            # and applies the (1−ε) update — costing one extra pass per
            # increment, the pass/precision trade of [16].
            element_weight = self._decayed_weights(
                replayable, element_weight, best_set
            )
            meter.set_component("set-scores", 0)

        # Scale so the solution is feasible (every element >= 1).
        self.last_fractional = raw
        return raw.scaled_to_feasible(instance)

    def _decayed_weights(
        self,
        replayable: ReplayableStream,
        element_weight: Dict[ElementId, float],
        chosen: SetId,
    ) -> Dict[ElementId, float]:
        """One extra pass applying the (1−ε) decay to ``chosen``'s elements.

        This is the lazily-deferred weight update; it costs one pass per
        increment, matching the pass count [16] trade for precision.
        """
        updated = dict(element_weight)
        for set_id, element in replayable.fresh():
            if set_id == chosen:
                updated[element] = element_weight[element] * (1 - self.epsilon)
        return updated

    def _run(self, replayable: ReplayableStream) -> StreamingResult:
        instance = replayable.instance
        feasible = True
        try:
            fractional = self.solve_fractional(replayable)
        except InvalidCoverError:
            # Too few increments to touch every element fractionally;
            # round the raw solution and let the rounding's patching
            # stage complete the cover.  The reported fractional value is
            # then NOT a relaxation bound — flagged in diagnostics.
            assert self.last_fractional is not None
            fractional = self.last_fractional
            feasible = False
            if not fractional.weights:
                raise
        cover = randomized_rounding(
            fractional, instance, seed=self._rng.getrandbits(63)
        )
        certificate = certificate_from_cover(instance, frozenset(cover))
        self._meter.set_component("cover", words_for_set(len(cover)))
        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=self._meter.report(),
            algorithm=self.name,
            diagnostics={
                "increments": float(self.increments),
                "epsilon": self.epsilon,
                "fractional_value": fractional.value,
                "fractional_feasible": 1.0 if feasible else 0.0,
                "support_size": float(len(fractional.weights)),
            },
        )


def randomized_rounding(
    fractional: FractionalCover,
    instance,
    seed: SeedLike = None,
    rounds_factor: float = 2.0,
) -> Set[SetId]:
    """Round a feasible fractional cover to an integral one.

    Classic independent rounding: normalise ``x`` to probabilities and
    draw ``⌈rounds_factor·ln n⌉·value`` sets; any element still missed
    is patched with its cheapest covering set from the support (or any
    covering set).  Expected size O(log n)·value.
    """
    rng = make_rng(seed)
    n = instance.n
    total = fractional.value
    if total <= 0:
        raise InvalidCoverError("cannot round an empty fractional cover")
    sets = list(fractional.weights)
    probabilities = [fractional.weights[s] / total for s in sets]
    draws = max(1, math.ceil(rounds_factor * math.log(max(2, n)) * total))

    chosen: Set[SetId] = set()
    cumulative: List[float] = []
    acc = 0.0
    for p in probabilities:
        acc += p
        cumulative.append(acc)
    for _ in range(draws):
        r = rng.random() * acc
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        chosen.add(sets[lo])

    uncovered = instance.uncovered_by(chosen)
    for u in sorted(uncovered):
        covering = instance.covering_sets(u)
        if not covering:
            raise InvalidCoverError(f"element {u} is in no set")
        in_support = sorted(covering & set(sets))
        chosen.add(in_support[0] if in_support else min(covering))
    return chosen
