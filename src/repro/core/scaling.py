"""Parameter scaling: paper constants vs laptop-scale constants.

The theorems hide poly-logarithmic factors; the algorithm listings make
them explicit (thresholds like ``j · log⁶ m``, probabilities like
``C · 2ʲ√n·log m / m``).  Those exponents only "bite" at astronomically
large ``m`` — at n = 10²..10⁴ a log⁶ m threshold exceeds every set size
and the algorithm would never sample anything.

:class:`Scaling` collects every tunable constant in one place.  Two
presets are provided:

* :meth:`Scaling.paper` — the listings verbatim.  Useful for unit tests
  of the formulas and for truly huge synthetic runs.
* :meth:`Scaling.practical` — identical *mechanisms* (geometric level
  structure, doubling sampling rates, batch rotation, optimistic
  marking) with the poly-log slack collapsed so behaviour is observable
  at laptop scale.  This is the preset the experiments use; DESIGN.md
  documents the substitution.

All experiments record ``scaling.name`` next to their measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError


def _log2(x: float) -> float:
    """log₂ clamped below at 1 so products/divisions stay sane at tiny sizes."""
    return max(1.0, math.log2(max(2.0, x)))


@dataclass(frozen=True)
class Scaling:
    """Every tunable constant of the paper's three algorithms.

    Attributes
    ----------
    name:
        Label recorded in experiment output (``"paper"`` / ``"practical"``).
    sample_constant:
        The constant ``C`` multiplying sampling probabilities
        (Algorithm 1 lines 6 and 29; KK inclusion rule).
    special_threshold_log_exp:
        Exponent on ``log m`` in Algorithm 1's special-set threshold
        ``j · logᵉ m`` (paper: 6).
    special_threshold_factor:
        Extra multiplier on that threshold (paper: 1).
    detect_log_exp:
        Exponent on ``log m`` in the epoch-0 detection-window length
        ``Θ(√n · N · logᵉ m / m)`` (paper: 1).
    high_degree_factor:
        Degree cut-off multiplier: elements of degree ≥ this · m/√n are
        detected in epoch 0 (paper: 1.1).
    mark_count_factor:
        Occurrence-count multiplier for marking during detection
        (paper: 1.085, between the 1.0807 and 1.089 of Lemma 6's proof).
    subepoch_log_exp:
        Exponent on ``log m`` dividing the subepoch length
        ``ℓᵢ = 2ⁱ·N / (n · logᵉ m)`` (paper: 1).
    sample_log_exp:
        Exponent on ``log m`` in the sampling probabilities ``p₀``/``p_j``
        (paper: 1).
    min_tracking_mark:
        Floor on the tracked-edge count that triggers optimistic marking
        (line 31); at laptop scale the paper's ``1.085·m·2^{i-1}/(n²·log m)``
        threshold drops below 1 and would mark everything.
    kk_level_width_factor:
        Multiplier on ``√n`` for the KK level width (paper: 1).
    min_algorithms / min_epochs / min_subepochs:
        Lower clamps on Algorithm 1's loop counts so tiny instances
        still exercise every phase.
    enable_tracking:
        Whether Algorithm 1 runs the tracked-sample / optimistic-marking
        machinery (lines 24–25 and 30–32).  Disabling it is an ablation,
        not a preset default.
    """

    name: str = "paper"
    sample_constant: float = 1.0
    special_threshold_log_exp: float = 6.0
    special_threshold_factor: float = 1.0
    detect_log_exp: float = 1.0
    high_degree_factor: float = 1.1
    mark_count_factor: float = 1.085
    subepoch_log_exp: float = 1.0
    subepoch_factor: float = 1.0
    sample_log_exp: float = 1.0
    min_tracking_mark: float = 1.0
    kk_level_width_factor: float = 1.0
    min_algorithms: int = 1
    min_epochs: int = 1
    min_subepochs: int = 1
    max_epochs: Optional[int] = None
    budget_derived_algorithms: bool = False
    phase_budget_fraction: float = 1.0
    enable_tracking: bool = True

    def __post_init__(self) -> None:
        if self.sample_constant <= 0:
            raise ConfigurationError("sample_constant must be positive")
        if self.special_threshold_factor <= 0:
            raise ConfigurationError("special_threshold_factor must be positive")
        if self.high_degree_factor <= 0:
            raise ConfigurationError("high_degree_factor must be positive")
        for attr in ("min_algorithms", "min_epochs", "min_subepochs"):
            if getattr(self, attr) < 1:
                raise ConfigurationError(f"{attr} must be >= 1")
        if not 0.0 < self.phase_budget_fraction <= 1.0:
            raise ConfigurationError(
                "phase_budget_fraction must be in (0, 1], got "
                f"{self.phase_budget_fraction}"
            )
        if self.max_epochs is not None and self.max_epochs < 1:
            raise ConfigurationError("max_epochs must be >= 1 when set")

    # -- presets ----------------------------------------------------------

    @classmethod
    def paper(cls) -> "Scaling":
        """The listings verbatim (poly-log exponents intact)."""
        return cls(name="paper")

    @classmethod
    def practical(cls) -> "Scaling":
        """Laptop-scale preset: same mechanisms, poly-log slack collapsed.

        ``log⁶ m`` thresholds become small constants per level, subepoch
        lengths drop the ``log m`` divisor (``ℓᵢ = τ·2ⁱ·N/n``) so a set
        covering ~``n/2ⁱ`` uncovered elements receives about the
        threshold many edges in its subepoch — the same detection logic
        the paper's asymptotic constants produce at galactic sizes — and
        the number of inner algorithms ``K`` is derived from the stream
        budget instead of the paper's ``½log n − 3·log log m − 2``
        (which is negative for every laptop-scale ``n``).
        """
        return cls(
            name="practical",
            sample_constant=1.0,
            special_threshold_log_exp=0.0,
            special_threshold_factor=2.0,
            detect_log_exp=1.0,
            subepoch_log_exp=0.0,
            subepoch_factor=2.0,
            sample_log_exp=1.0,
            min_tracking_mark=3.0,
            min_algorithms=1,
            min_epochs=2,
            min_subepochs=1,
            max_epochs=4,
            budget_derived_algorithms=True,
            phase_budget_fraction=0.5,
        )

    def with_overrides(self, **kwargs) -> "Scaling":
        """A copy with the given fields replaced (keyword arguments only)."""
        return replace(self, **kwargs)

    # -- derived quantities used by the algorithms -------------------------

    def special_threshold(self, j: int, m: int) -> float:
        """Algorithm 1's special-set counter threshold for epoch ``j``."""
        return (
            j
            * self.special_threshold_factor
            * _log2(m) ** self.special_threshold_log_exp
        )

    def epoch0_sample_probability(self, n: int, m: int) -> float:
        """``p₀ = C·√n·log m / m`` (Algorithm 1 line 6), capped at 1."""
        log_factor = _log2(m) ** self.sample_log_exp
        p = self.sample_constant * math.sqrt(n) * log_factor / m
        return min(1.0, p)

    def special_sample_probability(self, j: int, n: int, m: int) -> float:
        """``p_j = C·2ʲ·√n·log m / m`` (Algorithm 1 line 29), capped at 1."""
        log_factor = _log2(m) ** self.sample_log_exp
        p = self.sample_constant * (2.0**j) * math.sqrt(n) * log_factor / m
        return min(1.0, p)

    def tracking_mark_threshold(self, i: int, n: int, m: int) -> float:
        """Tracked-edge count that optimistically marks an element (line 31).

        Paper value ``1.085 · m·2^{i-1} / (n²·log m)``, floored at
        :attr:`min_tracking_mark` so laptop-scale runs do not mark on a
        single tracked edge.
        """
        raw = self.mark_count_factor * m * (2.0 ** (i - 1)) / (n * n * _log2(m))
        return max(self.min_tracking_mark, raw)

    def tracking_sample_probability(self, j: int, n: int) -> float:
        """``q_j = min(2ʲ/n, 1)`` (Algorithm 1 line 30)."""
        return min(1.0, (2.0**j) / n)

    def subepoch_length(self, i: int, n: int, m: int, stream_length: int) -> int:
        """``ℓᵢ = factor·2ⁱ·N / (n · logᵉ m)`` (Algorithm 1 line 18), ≥ 1."""
        denominator = n * _log2(m) ** self.subepoch_log_exp
        return max(
            1, int(self.subepoch_factor * (2.0**i) * stream_length / denominator)
        )

    def detection_window(self, n: int, m: int, stream_length: int) -> int:
        """Epoch-0 detection prefix length ``Θ(√n·N·log m / m)`` (line 7)."""
        window = (
            math.sqrt(n)
            * stream_length
            * _log2(m) ** self.detect_log_exp
            / m
        )
        return max(1, min(stream_length, int(window)))

    def high_degree_cutoff(self, n: int, m: int) -> float:
        """Degree above which epoch 0 should detect an element: ``1.1·m/√n``."""
        return self.high_degree_factor * m / math.sqrt(n)

    def detection_mark_count(self, n: int, m: int, stream_length: int) -> float:
        """Occurrence count in the detection window that triggers marking.

        An element of degree exactly the cutoff appears about
        ``cutoff · window / N`` times in the window; we mark at
        ``mark_count_factor / high_degree_factor`` of that expectation
        (paper: 1.085·C·log m against a 1.1-cutoff expectation of
        1.1·C·log m), never below 1.
        """
        window = self.detection_window(n, m, stream_length)
        expected_at_cutoff = self.high_degree_cutoff(n, m) * window / stream_length
        return max(
            1.0,
            expected_at_cutoff * self.mark_count_factor / self.high_degree_factor,
        )

    def num_algorithms(self, n: int, m: int) -> int:
        """Number of inner algorithms ``K``.

        Paper: ``K = ½log n − 3·log log m − 2`` (line 9), clamped to be
        usable.  With :attr:`budget_derived_algorithms` (practical
        preset) ``K`` is instead the largest value for which the phases
        fit the stream budget, ``2^{K+1} ≤ √n/(epochs·τ₁)`` — the same
        role (``2^K ≈ √n`` up to slack), without the log-log terms that
        are negative at laptop scale.
        """
        if self.budget_derived_algorithms:
            epochs = self.num_epochs(n, m)
            tau1 = max(1.0, self.special_threshold(1, m))
            capacity = math.sqrt(n) / (epochs * tau1)
            raw = math.floor(math.log2(capacity)) - 1 if capacity > 2 else 0
            return max(self.min_algorithms, raw)
        raw = 0.5 * _log2(n) - 3.0 * math.log2(_log2(m)) - 2.0
        return max(self.min_algorithms, int(raw))

    def num_epochs(self, n: int, m: int) -> int:
        """``log m − ½ log n`` epochs per algorithm (line 12), clamped."""
        raw = _log2(m) - 0.5 * _log2(n)
        epochs = max(self.min_epochs, int(raw))
        if self.max_epochs is not None:
            epochs = min(epochs, self.max_epochs)
        return epochs

    def num_batches(self, n: int) -> int:
        """``√n`` subepochs/batches per epoch (line 16), clamped."""
        return max(self.min_subepochs, int(math.isqrt(n)))

    def kk_level_width(self, n: int) -> int:
        """KK uncovered-degree level width ``√n`` (Section 1.2)."""
        return max(1, int(self.kk_level_width_factor * math.sqrt(n)))

    def kk_inclusion_probability(self, level: int, n: int, m: int) -> float:
        """KK inclusion rule ``2ⁱ·√n/m`` at level ``i``, capped at 1."""
        p = self.sample_constant * (2.0**level) * math.sqrt(n) / m
        return min(1.0, p)
