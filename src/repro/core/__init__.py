"""The paper's algorithms: KK (Thm 1), Algorithm 2 (Thm 4), Algorithm 1 (Thm 3).

All algorithms share the :class:`StreamingSetCoverAlgorithm` run
protocol and produce :class:`StreamingResult` objects that verify
themselves against the ground-truth instance.
"""

from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.amplification import AmplifiedAlgorithm
from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.element_sampling import ElementSamplingAlgorithm
from repro.core.kk import KKAlgorithm
from repro.core.random_order import (
    EpochStats,
    RandomOrderAlgorithm,
    RandomOrderProbe,
    StreamLengthOblivious,
)
from repro.core.scaling import Scaling
from repro.core.solution import StreamingResult, certificate_from_cover

__all__ = [
    "StreamingSetCoverAlgorithm",
    "FirstSetStore",
    "StreamingResult",
    "certificate_from_cover",
    "Scaling",
    "KKAlgorithm",
    "LowSpaceAdversarialAlgorithm",
    "ElementSamplingAlgorithm",
    "AmplifiedAlgorithm",
    "RandomOrderAlgorithm",
    "RandomOrderProbe",
    "EpochStats",
    "StreamLengthOblivious",
]
