"""Success amplification: O(log m) parallel copies, keep the best cover.

Two remarks in the paper rely on this standard boost:

* after Theorem 2: "any algorithm A with success probability at least
  3/4 can be converted into an algorithm with success probability at
  least 1 − 1/(4m) by running O(log m) parallel copies of A, and
  outputting the smallest answer";
* after Theorem 4: the *expected* approximation guarantee of
  Algorithm 2 becomes a high-probability guarantee at the cost of an
  extra log m factor (in space, since all copies run concurrently).

:class:`AmplifiedAlgorithm` wraps any
:class:`~repro.core.base.StreamingSetCoverAlgorithm` factory: all
copies consume the same single pass (the wrapper buffers each edge only
transiently — one edge at a time — so this is still one pass), space is
the sum of the copies' states, and the output is the smallest valid
cover.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.core.base import StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import ConfigurationError
from repro.streaming.stream import EdgeStream
from repro.types import SeedLike

AlgorithmFactory = Callable[[int], StreamingSetCoverAlgorithm]


class AmplifiedAlgorithm(StreamingSetCoverAlgorithm):
    """Run ``copies`` independent copies in one pass; output the best.

    Parameters
    ----------
    factory:
        Builds one inner algorithm from an integer seed.
    copies:
        Number of parallel copies; ``None`` chooses ``ceil(log2 m)`` at
        run time (the paper's O(log m)).
    """

    name = "amplified"

    def __init__(
        self,
        factory: AlgorithmFactory,
        copies: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if copies is not None and copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies}")
        self._factory = factory
        self._copies = copies

    def _run(self, stream: EdgeStream) -> StreamingResult:
        m = stream.instance.m
        copies = (
            self._copies
            if self._copies is not None
            else max(1, math.ceil(math.log2(max(2, m))))
        )
        inner: List[StreamingSetCoverAlgorithm] = [
            self._factory(self._rng.getrandbits(63)) for _ in range(copies)
        ]
        # All copies consume the same pass: tee the live stream to
        # per-copy one-pass views.  Buffering the edges once is a
        # harness convenience; each copy still sees one pass, and the
        # *charged* space is the sum of copies' states, not the buffer.
        edges = list(stream)
        results: List[StreamingResult] = []
        for algorithm in inner:
            view = EdgeStream(
                stream.instance, edges, order_name=stream.order_name
            )
            results.append(algorithm.run(view))

        best = min(results, key=lambda r: r.cover_size)
        total_peak = sum(r.space.peak_words for r in results)
        self._meter.set_component("parallel-copies", total_peak)
        return StreamingResult(
            cover=best.cover,
            certificate=dict(best.certificate),
            space=self._meter.report(),
            algorithm=f"{self.name}({best.algorithm} x{copies})",
            diagnostics={
                "copies": float(copies),
                "best_cover": float(best.cover_size),
                "worst_cover": float(
                    max(r.cover_size for r in results)
                ),
                "mean_cover": float(
                    sum(r.cover_size for r in results) / copies
                ),
            },
        )
