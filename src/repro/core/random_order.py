"""Algorithm 1: Õ(√n)-approximation with Õ(m/√n) space, random order.

The paper's main result (Theorem 3).  The algorithm simulates the
KK-algorithm while rotating the set family through memory in ``√n``
batches of ``m/√n`` sets, so that only one batch's counters are live at
any moment:

* **Epoch 0** (lines 5–7): sample every set into ``Sol`` with
  probability ``p₀ = C·√n·log m/m``, then detect elements of degree
  ≥ 1.1·m/√n by counting occurrences in a short prefix of the stream and
  *optimistically mark* them — they will be covered by the epoch-0
  sample with high probability even though the covering edge may not
  have arrived yet.
* **Algorithms A(1..K)** (lines 8–32): A(i) targets sets that can still
  cover ~n/2ⁱ uncovered elements.  Each A(i) runs ``log m − ½log n``
  epochs of ``√n`` subepochs; subepoch ``k`` watches batch ``S_k`` for
  ``ℓᵢ = 2ⁱN/(n·log m)`` edges and counts, per watched set, edges to
  unmarked elements.  A set whose counter reaches ``j·log⁶ m`` in epoch
  ``j`` is *special*: it joins ``Sol`` with probability ``p_j = 2ʲ·p₀``
  and the tracked sample ``T̃'`` with probability ``q_j = 2ʲ/n``.
* **Tracking** (lines 24–25, 31): edges from the previous epoch's
  tracked sample ``T̃`` are recorded in ``T``; an unmarked element with
  ≥ 1.085·m·2^{i-1}/(n²·log m) tracked edges is incident to so many
  special sets that one of them is in ``Sol`` whp — mark it covered now
  so it stops inflating counters (the paper's substitute for the KK
  monotonicity/coverage argument).
* **Remainder + patching** (lines 33–38): the rest of the stream only
  collects witnesses for ``Sol``; elements still lacking a witness are
  patched with the first set seen to contain them.

Space: the batch counters (m/√n), tracked samples (Õ(m/n)) and tracked
edges (Õ(m/√n)) dominate; with m = Ω̃(n²) the Õ(n) element-side state is
lower order.  The run attaches a :class:`RandomOrderProbe` with the
per-phase statistics the invariants (I1)–(I3) speak about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.scaling import Scaling
from repro.core.solution import StreamingResult
from repro.obs import events as obs_events
from repro.streaming.space import SpaceBudget, words_for_mapping, words_for_set
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId


@dataclass
class EpochStats:
    """Per-epoch observability for the invariant benchmarks."""

    algorithm_index: int
    epoch_index: int
    special_sets: int = 0
    added_to_sol: int = 0
    added_to_tracking: int = 0
    marked_by_tracking: int = 0
    tracked_edges: int = 0


@dataclass
class RandomOrderProbe:
    """Everything the (I1)/(I2)/(I3) probes need from one run.

    Attributes
    ----------
    epoch_stats:
        One record per (A(i), epoch j) pair, in execution order.
    inclusion_positions:
        Stream position (0-based, exclusive of the triggering edge) at
        which each solution set was added; sets sampled in epoch 0 get
        position 0.  Used to count *missed edges* post-hoc (I2).
    sol_after_algorithm:
        Snapshot of ``len(Sol)`` after each A(i) finishes (index 0 is
        after epoch 0).
    marked_uncovered_at_end:
        Elements that were optimistically marked but never received a
        witness before patching — the paper's Lemma 7 says this is rare.
    """

    epoch_stats: List[EpochStats] = field(default_factory=list)
    inclusion_positions: Dict[SetId, int] = field(default_factory=dict)
    sol_after_algorithm: List[int] = field(default_factory=list)
    epoch0_marked: int = 0
    patched_elements: int = 0
    stream_positions_consumed_by_phases: int = 0
    marked_uncovered_at_end: int = 0

    def special_counts_by_epoch(self, algorithm_index: int) -> List[int]:
        """Special-set counts for each epoch of A(algorithm_index)."""
        return [
            s.special_sets
            for s in self.epoch_stats
            if s.algorithm_index == algorithm_index
        ]

    def additions_per_algorithm(self) -> Dict[int, int]:
        """Total ``Sol`` additions per A(i) — the quantity (I3) bounds."""
        totals: Dict[int, int] = {}
        for s in self.epoch_stats:
            totals[s.algorithm_index] = (
                totals.get(s.algorithm_index, 0) + s.added_to_sol
            )
        return totals


class RandomOrderAlgorithm(StreamingSetCoverAlgorithm):
    """The paper's Algorithm 1 for random-order edge streams.

    Parameters
    ----------
    scaling:
        Constant pack (see :class:`~repro.core.scaling.Scaling`); the
        ``practical`` preset is the default.
    seed, space_budget:
        As in :class:`StreamingSetCoverAlgorithm`.

    Notes
    -----
    The instance shape ``(n, m)`` and the stream length ``N`` are read
    from the stream object, matching the paper's assumption that these
    are known (Section 4.1 shows the assumption on ``N`` is w.l.o.g.
    via parallel guesses; see :class:`StreamLengthOblivious` for that
    wrapper).
    """

    name = "random-order"

    def __init__(
        self,
        scaling: Optional[Scaling] = None,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        self.scaling = scaling if scaling is not None else Scaling.practical()
        self.last_probe: Optional[RandomOrderProbe] = None

    # -- main entry ---------------------------------------------------------

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        m = stream.instance.m
        big_n = stream.length
        meter = self._meter
        scaling = self.scaling
        probe = RandomOrderProbe()
        self.last_probe = probe

        marked: Set[ElementId] = set()
        sol: Set[SetId] = set()
        certificate: Dict[ElementId, SetId] = {}
        first_sets = FirstSetStore(meter, universe_size=n)
        self._register_salvage(cover=sol, certificate=certificate)
        reader = stream.reader()
        position = 0  # edges consumed so far

        batches = self._make_batches(m, scaling.num_batches(n))

        # Boolean mirrors of Sol / the tracked sample for the vectorized
        # per-chunk pre-filter.  Every state change an edge can trigger
        # requires its set to be in Sol, in the current batch, or in the
        # tracked sample at subepoch start (mid-subepoch Sol additions
        # come only from batch sets, which the batch-range test keeps),
        # so all other edges are consumed in bulk: they contribute
        # first-set observations and nothing else.
        in_sol = np.zeros(m, dtype=bool)
        in_tracked = np.zeros(m, dtype=bool)

        def witness(u: ElementId, s: SetId) -> None:
            marked.add(u)
            if u not in certificate:
                certificate[u] = s
            meter.set_component("marked", words_for_set(len(marked)))
            meter.set_component("certificate", words_for_mapping(len(certificate)))
            self._trace_count(obs_events.ELEMENT_COVERED)

        tracer = self._tracer

        # ---------------- epoch 0 (lines 5–7) ----------------
        p0 = scaling.epoch0_sample_probability(n, m)
        window = scaling.detection_window(n, m, big_n)
        mark_count = scaling.detection_mark_count(n, m, big_n)
        with tracer.span(
            obs_events.SPAN_EPOCH0,
            probability=p0,
            window=window,
            mark_count=mark_count,
        ):
            for set_id in range(m):
                if self._rng.random() < p0:
                    sol.add(set_id)
                    in_sol[set_id] = True
                    probe.inclusion_positions[set_id] = 0
                    if tracer.enabled:
                        tracer.event(
                            obs_events.SET_ADMITTED,
                            set_id=set_id,
                            phase="epoch0",
                            probability=p0,
                        )
            meter.set_component("sol", words_for_set(len(sol)))

            # Degree detection by bincount; the per-element counts (and the
            # peak "epoch0-counts" charge of two words per distinct element)
            # match the per-edge dict exactly — all window-phase state only
            # grows, so batching the charges preserves the peak breakdown.
            # Takes may come back short of the quota at a stream checkpoint,
            # hence the loop.
            occurrence = np.zeros(n, dtype=np.int64)
            while position < window and reader.remaining:
                set_ids, elements = reader.take_columns(window - position)
                position += len(set_ids)
                first_sets.observe_columns(set_ids, elements)
                occurrence += np.bincount(elements, minlength=n)
                meter.set_component(
                    "epoch0-counts",
                    words_for_mapping(int(np.count_nonzero(occurrence))),
                )
                # Witnesses: the first Sol-edge of each element marks it.
                sol_hits = np.nonzero(in_sol[set_ids])[0]
                if len(sol_hits):
                    uniques, first_within = np.unique(
                        elements[sol_hits], return_index=True
                    )
                    for u, hit in zip(
                        uniques.tolist(), sol_hits[first_within].tolist()
                    ):
                        if u not in marked:
                            witness(u, int(set_ids[hit]))
            for u in np.nonzero(occurrence >= mark_count)[0].tolist():
                if u not in marked:
                    marked.add(u)
                    probe.epoch0_marked += 1
                    self._trace_count(obs_events.ELEMENT_MARKED)
            meter.set_component("marked", words_for_set(len(marked)))
            meter.set_component("epoch0-counts", 0)
            probe.sol_after_algorithm.append(len(sol))
            if tracer.enabled:
                tracer.event(
                    obs_events.SPACE_SAMPLE,
                    phase="epoch0",
                    peak_words=meter.peak_words,
                    current_words=meter.current_words,
                )

        # ---------------- algorithms A(1..K) (lines 8–32) ----------------
        num_algorithms = scaling.num_algorithms(n, m)
        num_epochs = scaling.num_epochs(n, m)

        # Cap the phases' total consumption so the remainder phase still
        # sees a constant fraction of the stream (the paper's formulas
        # guarantee this asymptotically; at laptop scale we enforce it).
        raw_lengths = {
            i: scaling.subepoch_length(i, n, m, big_n)
            for i in range(1, num_algorithms + 1)
        }
        planned = num_epochs * len(batches) * sum(raw_lengths.values())
        budget = int(scaling.phase_budget_fraction * big_n)
        shrink = min(1.0, budget / planned) if planned > 0 else 1.0
        subepoch_lengths = {
            i: max(1, int(length * shrink)) for i, length in raw_lengths.items()
        }

        for i in range(1, num_algorithms + 1):
            subepoch_len = subepoch_lengths[i]
            with tracer.span(
                obs_events.SPAN_ALGORITHM,
                algorithm_index=i,
                subepoch_length=subepoch_len,
            ):
                # Line 10: fresh tracked sample at rate q0 = 1/n.
                q0 = min(1.0, 1.0 / n)
                tracked: Set[SetId] = {
                    s for s in range(m) if self._rng.random() < q0
                }
                meter.set_component("tracked-sets", words_for_set(len(tracked)))
                in_tracked.fill(False)
                for s in tracked:
                    in_tracked[s] = True

                for j in range(1, num_epochs + 1):
                    stats = EpochStats(algorithm_index=i, epoch_index=j)
                    probe.epoch_stats.append(stats)
                    tracked_edges: Dict[ElementId, int] = {}
                    next_tracked: Set[SetId] = set()
                    threshold = math.ceil(scaling.special_threshold(j, m))
                    p_j = scaling.special_sample_probability(j, n, m)
                    q_j = scaling.tracking_sample_probability(j, n)
                    exhausted = False

                    with tracer.span(
                        obs_events.SPAN_EPOCH,
                        algorithm_index=i,
                        epoch_index=j,
                        threshold=threshold,
                        sol_probability=p_j,
                        tracking_probability=q_j,
                    ):
                        for batch_index, batch in enumerate(batches):
                            batch_start, batch_stop = batch.start, batch.stop
                            counters: Dict[SetId, int] = {}
                            meter.set_component(
                                "batch-counters", words_for_mapping(len(batch))
                            )
                            need = subepoch_len
                            with tracer.span(
                                obs_events.SPAN_SUBEPOCH,
                                batch_index=batch_index,
                                batch_start=batch_start,
                                batch_stop=batch_stop,
                                quota=subepoch_len,
                            ):
                                while need:
                                    set_ids, elements = reader.take_columns(need)
                                    got = len(set_ids)
                                    if not got:
                                        exhausted = True
                                        break
                                    subepoch_base = position
                                    position += got
                                    need -= got
                                    first_sets.observe_columns(set_ids, elements)
                                    keep = np.nonzero(
                                        in_sol[set_ids]
                                        | in_tracked[set_ids]
                                        | (
                                            (set_ids >= batch_start)
                                            & (set_ids < batch_stop)
                                        )
                                    )[0]
                                    for idx, set_id, u in zip(
                                        keep.tolist(),
                                        set_ids[keep].tolist(),
                                        elements[keep].tolist(),
                                    ):
                                        if set_id in sol:  # lines 20–21
                                            if u not in marked or u not in certificate:
                                                witness(u, set_id)
                                            continue
                                        if u in marked:  # line 22
                                            continue
                                        if set_id in tracked:  # lines 24–25
                                            tracked_edges[u] = (
                                                tracked_edges.get(u, 0) + 1
                                            )
                                            stats.tracked_edges += 1
                                            meter.set_component(
                                                "tracked-edges",
                                                words_for_mapping(len(tracked_edges)),
                                            )
                                        if batch_start <= set_id < batch_stop:
                                            # lines 26–30
                                            count = counters.get(set_id, 0) + 1
                                            counters[set_id] = count
                                            if count == threshold:
                                                stats.special_sets += 1
                                                self._trace(
                                                    obs_events.SET_SPECIAL,
                                                    set_id=set_id,
                                                    epoch_index=j,
                                                )
                                                if self._coin(p_j):
                                                    sol.add(set_id)
                                                    in_sol[set_id] = True
                                                    positions = (
                                                        probe.inclusion_positions
                                                    )
                                                    positions.setdefault(
                                                        set_id,
                                                        subepoch_base + idx + 1,
                                                    )
                                                    stats.added_to_sol += 1
                                                    meter.set_component(
                                                        "sol", words_for_set(len(sol))
                                                    )
                                                    self._trace(
                                                        obs_events.SET_ADMITTED,
                                                        set_id=set_id,
                                                        phase="special",
                                                        position=subepoch_base
                                                        + idx
                                                        + 1,
                                                        probability=p_j,
                                                    )
                                                if self._coin(q_j):
                                                    next_tracked.add(set_id)
                                                    stats.added_to_tracking += 1
                                                    meter.set_component(
                                                        "next-tracked",
                                                        words_for_set(
                                                            len(next_tracked)
                                                        ),
                                                    )
                                                    self._trace(
                                                        obs_events.SET_TRACKED,
                                                        set_id=set_id,
                                                        epoch_index=j,
                                                    )
                            if exhausted:
                                break

                        # Line 31: optimistic marking from the tracked signal.
                        if scaling.enable_tracking:
                            mark_threshold = scaling.tracking_mark_threshold(i, n, m)
                            for u, count in tracked_edges.items():
                                if count >= mark_threshold and u not in marked:
                                    marked.add(u)
                                    stats.marked_by_tracking += 1
                                    self._trace_count(obs_events.ELEMENT_MARKED)
                            meter.set_component("marked", words_for_set(len(marked)))

                        tracked = next_tracked  # line 32
                        in_tracked.fill(False)
                        for s in tracked:
                            in_tracked[s] = True
                        meter.set_component(
                            "tracked-sets", words_for_set(len(tracked))
                        )
                        meter.set_component("next-tracked", 0)
                        meter.set_component("tracked-edges", 0)
                        meter.set_component("batch-counters", 0)
                    if exhausted:
                        break
                probe.sol_after_algorithm.append(len(sol))
            if exhausted:
                break

        probe.stream_positions_consumed_by_phases = position

        # ---------------- remainder (lines 33–36) ----------------
        # Sol is frozen here, so the remainder reduces to two vectorized
        # scans: batch first-set observation, then one witness per still
        # uncertified element at its first Sol-edge (stream order — the
        # unique() index is the first occurrence; the loop only repeats
        # when a take stops short at a stream checkpoint).
        with tracer.span(obs_events.SPAN_REMAINDER, start_position=position):
            while reader.remaining:
                set_ids, elements = reader.take_rest_columns()
                first_sets.observe_columns(set_ids, elements)
                sol_hits = np.nonzero(in_sol[set_ids])[0]
                if len(sol_hits):
                    uniques, first_within = np.unique(
                        elements[sol_hits], return_index=True
                    )
                    for u, hit in zip(
                        uniques.tolist(), sol_hits[first_within].tolist()
                    ):
                        if u not in certificate:
                            witness(u, int(set_ids[hit]))

        # ---------------- patching (lines 37–38) ----------------
        probe.marked_uncovered_at_end = sum(
            1 for u in marked if u not in certificate
        )
        cover = set(sol)
        probe.patched_elements = first_sets.patch(certificate, cover, n)
        self._trace(
            obs_events.PATCH_APPLIED,
            patched=probe.patched_elements,
            marked_uncovered=probe.marked_uncovered_at_end,
        )
        # Output pruning: sets in Sol that never became anyone's witness
        # contribute nothing to coverage, so drop them from the reported
        # cover.  (The paper notes |Sol| ≤ n can always be enforced; this
        # is the natural way and guarantees cover_size ≤ n.)
        cover = set(certificate.values())
        meter.set_component("sol", words_for_set(len(cover)))

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "epoch0_sol": float(probe.sol_after_algorithm[0]),
                "epoch0_marked": float(probe.epoch0_marked),
                "num_algorithms": float(num_algorithms),
                "num_epochs": float(num_epochs),
                "num_batches": float(len(batches)),
                "patched_elements": float(probe.patched_elements),
                "sol_before_patching": float(len(sol)),
                "phase_edges_consumed": float(
                    probe.stream_positions_consumed_by_phases
                ),
                "marked_uncovered_at_end": float(probe.marked_uncovered_at_end),
            },
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _make_batches(m: int, num_batches: int) -> List[range]:
        """Partition set ids into ``num_batches`` contiguous batches.

        Any partition works (the paper says "arbitrarily partitioned");
        contiguous ``range`` slices reduce batch membership to two
        integer comparisons against the range bounds — no hashing on the
        per-edge hot path.
        """
        num_batches = max(1, min(num_batches, m))
        size = math.ceil(m / num_batches)
        return [
            range(start, min(start + size, m)) for start in range(0, m, size)
        ]


class StreamLengthOblivious(StreamingSetCoverAlgorithm):
    """Wrapper running parallel guesses of the stream length N.

    Section 4.1 argues knowing ``N`` is w.l.o.g.: run O(log) parallel
    copies of Algorithm 1 with guesses ``2ⁱ·m/√n`` and keep the answer
    of the copy whose guess is closest.  Because our :class:`EdgeStream`
    is single-pass, this wrapper time-multiplexes one pass across the
    copies by buffering each edge to all of them — the *space* charged is
    the sum over copies, exactly as in the paper's argument.

    This class exists to validate the w.l.o.g. claim experimentally; for
    ordinary use prefer :class:`RandomOrderAlgorithm`, which reads the
    true ``N`` off the stream object.
    """

    name = "random-order-oblivious"

    def __init__(
        self,
        scaling: Optional[Scaling] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        self.scaling = scaling if scaling is not None else Scaling.practical()

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        m = stream.instance.m
        true_n = stream.length

        # Guesses 2^i * m/sqrt(n), clipped to [1, m*n].
        lowest = max(1, int(m / math.sqrt(n)))
        guesses: List[int] = []
        guess = lowest
        while guess < m * n:
            guesses.append(guess)
            guess *= 2
        guesses.append(m * n)

        best_guess = min(guesses, key=lambda g: abs(math.log(g) - math.log(true_n)))
        # Honour the one-pass discipline on the outer stream, then hand
        # the frozen edge buffer (shared, never copied) to the chosen
        # copy; it runs with N = best_guess — its loop sizing sees the
        # guess, not the true length.
        stream.reader()
        inner = RandomOrderAlgorithm(
            scaling=self.scaling, seed=self._rng.getrandbits(63)
        )
        result = _run_with_forced_length(inner, stream, best_guess)
        # Charge the log-many parallel copies: each copy's state is the
        # same asymptotic size, so total space is (number of guesses) x
        # the chosen copy's peak.
        self._meter.set_component(
            "parallel-copies", result.space.peak_words * len(guesses)
        )
        return StreamingResult(
            cover=result.cover,
            certificate=result.certificate,
            space=self._meter.report(),
            algorithm=self.name,
            diagnostics={
                **result.diagnostics,
                "num_guesses": float(len(guesses)),
                "chosen_guess": float(best_guess),
                "true_length": float(true_n),
            },
        )


def _run_with_forced_length(
    algorithm: RandomOrderAlgorithm, stream: EdgeStream, forced_length: int
) -> StreamingResult:
    """Run ``algorithm`` on ``stream``'s edges pretending N == forced_length.

    The forced view adopts ``stream``'s frozen edge buffer directly
    (O(1), no copy); ``stream`` itself is left untouched.
    """

    class _ForcedLengthStream(EdgeStream):
        @property
        def length(self) -> int:  # type: ignore[override]
            return forced_length

    forced = _ForcedLengthStream(
        stream.instance, stream._frozen, order_name=stream.order_name
    )
    return algorithm.run(forced)
