"""Cover solutions and certificates produced by streaming algorithms.

The paper requires algorithms to output both a cover ``T ⊆ S`` and a
*cover certificate* ``C : U → T`` naming, for each element, a set in the
cover that contains it (Section 1).  :class:`StreamingResult` bundles
both together with the space report and per-run diagnostics, and knows
how to verify itself against the ground-truth instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Set

from repro.errors import InvalidCoverError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.space import SpaceReport
from repro.types import ElementId, SetId


@dataclass
class StreamingResult:
    """Output of one streaming-algorithm run.

    Attributes
    ----------
    cover:
        Ids of the sets forming the output cover.
    certificate:
        ``element -> set`` witness map; every universe element must be
        mapped to a cover set containing it for :meth:`verify` to pass.
    space:
        Peak/final space report from the run's :class:`SpaceMeter`.
    algorithm:
        Name of the producing algorithm.
    diagnostics:
        Free-form numeric diagnostics (e.g. invariant probe counters for
        Algorithm 1, level histograms for Algorithm 2).
    """

    cover: FrozenSet[SetId]
    certificate: Dict[ElementId, SetId]
    space: SpaceReport
    algorithm: str = ""
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def cover_size(self) -> int:
        """Number of sets in the output cover."""
        return len(self.cover)

    def verify(self, instance: SetCoverInstance) -> None:
        """Raise :class:`InvalidCoverError` unless this is a valid cover.

        Checks three properties the paper demands of the output:
        the certificate is total, every witness actually contains its
        element, and every witness is a member of the reported cover.
        """
        for u in range(instance.n):
            if u not in self.certificate:
                raise InvalidCoverError(
                    f"{self.algorithm or 'result'}: element {u} has no witness"
                )
            witness = self.certificate[u]
            if witness not in self.cover:
                raise InvalidCoverError(
                    f"{self.algorithm or 'result'}: witness {witness} for "
                    f"element {u} is not in the reported cover"
                )
            if not instance.contains(witness, u):
                raise InvalidCoverError(
                    f"{self.algorithm or 'result'}: set {witness} does not "
                    f"contain element {u}"
                )

    def is_valid(self, instance: SetCoverInstance) -> bool:
        """``True`` iff :meth:`verify` passes."""
        try:
            self.verify(instance)
        except InvalidCoverError:
            return False
        return True

    def approximation_ratio(self, opt_size: int) -> float:
        """Cover size divided by a known optimum (or lower bound) size."""
        if opt_size <= 0:
            raise ValueError(f"opt_size must be positive, got {opt_size}")
        return self.cover_size / opt_size

    def covered_elements(self, instance: SetCoverInstance) -> Set[ElementId]:
        """Elements covered by the reported cover (ground-truth union)."""
        return instance.coverage_of(self.cover)


def certificate_from_cover(
    instance: SetCoverInstance, cover: FrozenSet[SetId]
) -> Dict[ElementId, SetId]:
    """Build a certificate for ``cover`` by scanning the instance.

    Intended for *offline* baselines (greedy et al.) where building the
    witness map after the fact is legitimate; streaming algorithms must
    construct certificates during their pass.
    """
    certificate: Dict[ElementId, SetId] = {}
    for set_id in sorted(cover):
        for element in instance.set_members(set_id):
            certificate.setdefault(element, set_id)
    missing = [u for u in range(instance.n) if u not in certificate]
    if missing:
        raise InvalidCoverError(
            f"cover of size {len(cover)} leaves {len(missing)} element(s) "
            f"uncovered (e.g. {missing[:5]})"
        )
    return certificate
