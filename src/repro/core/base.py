"""Common machinery shared by all streaming set-cover algorithms.

:class:`StreamingSetCoverAlgorithm` fixes the run protocol: an algorithm
is constructed once with its parameters and seed, then :meth:`run` makes
exactly one pass over an :class:`~repro.streaming.stream.EdgeStream` and
returns a :class:`~repro.core.solution.StreamingResult`.  A fresh
:class:`SpaceMeter` is created per run, and the standard "remember the
first set containing each element" patching store (Algorithm 1 line 4 /
Algorithm 2 line 10) is provided here because every algorithm in the
paper relies on it to guarantee feasibility.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, Mapping, Optional, Set, Union

import numpy as np

from repro.core.solution import StreamingResult
from repro.errors import InvalidCoverError, PartialState, ReproError
from repro.obs import events as obs_events
from repro.obs.tracer import NULL_TRACER, NullTracer, RecordingTracer
from repro.streaming.space import ChargedDict, SpaceBudget, SpaceMeter
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId, make_rng

Tracer = Union[NullTracer, RecordingTracer]
"""Anything honouring the tracer protocol (``enabled``/``span``/``event``/``count``)."""


class FirstSetStore:
    """Remembers, per element, the first set seen to contain it.

    Mirrors Algorithm 1 line 4 and Algorithm 2 lines 9–10.  Costs Õ(n)
    space, charged to the given meter under the component name
    ``"first-set"`` via a :class:`~repro.streaming.space.ChargedDict`
    (the meter is updated only when a new element is recorded, never per
    edge).
    """

    COMPONENT = "first-set"

    def __init__(
        self, meter: SpaceMeter, universe_size: Optional[int] = None
    ) -> None:
        self._first: Dict[ElementId, SetId] = ChargedDict(
            meter, self.COMPONENT, words_per_entry=2, charge_initial=False
        )
        self._universe_size = universe_size
        self._seen: Optional[np.ndarray] = None

    def observe(self, set_id: SetId, element: ElementId) -> None:
        """Record ``set_id`` as the witness for ``element`` if it is first."""
        if element not in self._first:
            self._first[element] = set_id

    def observe_columns(
        self, set_ids: np.ndarray, elements: np.ndarray
    ) -> None:
        """Batch :meth:`observe` over numpy edge columns.

        Equivalent to calling :meth:`observe` for every edge in order,
        but O(chunk) vectorized: once every universe element has been
        seen this degenerates to a single boolean check per chunk.
        """
        if self._universe_size is not None and len(self._first) == self._universe_size:
            return
        if self._seen is None:
            size = (
                self._universe_size
                if self._universe_size is not None
                else int(elements.max()) + 1 if len(elements) else 1
            )
            self._seen = np.zeros(size, dtype=bool)
            for element in self._first:
                self._seen[element] = True
        seen = self._seen
        if len(elements) and int(elements.max()) >= len(seen):
            grown = np.zeros(int(elements.max()) + 1, dtype=bool)
            grown[: len(seen)] = seen
            self._seen = seen = grown
        new_mask = ~seen[elements]
        if not new_mask.any():
            return
        new_positions = np.nonzero(new_mask)[0]
        uniques, first_within = np.unique(
            elements[new_positions], return_index=True
        )
        first = self._first
        for element, offset in zip(
            uniques.tolist(), new_positions[first_within].tolist()
        ):
            first[element] = int(set_ids[offset])
            seen[element] = True

    def get(self, element: ElementId) -> Optional[SetId]:
        """The first set observed to contain ``element``, or ``None``."""
        return self._first.get(element)

    @property
    def mapping(self) -> Dict[ElementId, SetId]:
        """The live ``element -> first set`` map (treat as read-only).

        Exposed so algorithms can register it as salvageable state: if
        a pass dies mid-stream, the first-set witnesses collected so far
        are a legitimate partial certificate.
        """
        return self._first

    def __len__(self) -> int:
        return len(self._first)

    def patch(
        self,
        certificate: Dict[ElementId, SetId],
        cover: Set[SetId],
        universe_size: int,
    ) -> int:
        """Complete ``certificate``/``cover`` using stored first sets.

        Every element without a witness gets its first-seen set; the set
        is added to the cover.  Returns the number of patched elements.
        Raises :class:`InvalidCoverError` if some element was never seen
        in the stream at all (infeasible instance or truncated stream).
        """
        patched = 0
        for element in range(universe_size):
            if element in certificate:
                continue
            first = self._first.get(element)
            if first is None:
                raise InvalidCoverError(
                    f"element {element} never appeared in the stream; cannot "
                    "patch a feasible cover"
                )
            certificate[element] = first
            cover.add(first)
            patched += 1
        return patched


class StreamingSetCoverAlgorithm:
    """Abstract base for one-pass edge-arrival set-cover algorithms.

    Subclasses implement :meth:`_run` and may assume ``self._meter`` and
    ``self._rng`` are freshly prepared.  Construction parameters are
    immutable across runs; all per-run state must live inside
    :meth:`_run`.
    """

    #: Human-readable algorithm name; subclasses override.
    name = "abstract"

    def __init__(
        self,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._seed = seed
        self._space_budget = space_budget
        self._rng: random.Random = make_rng(seed)
        self._meter = SpaceMeter(budget=space_budget)
        self._salvage_cover: Optional[Iterable[SetId]] = None
        self._salvage_certificate: Optional[Mapping[ElementId, SetId]] = None
        self._tracer: Tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def tracer(self) -> Tracer:
        """The active tracer (:data:`NULL_TRACER` unless one was attached)."""
        return self._tracer

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach ``tracer`` to future runs (``None`` restores the no-op).

        Exists so harnesses can instrument algorithms built by factories
        whose signatures they do not control (the registry, perfbench,
        the chaos grid) without widening every subclass constructor.
        """
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def run(self, stream: EdgeStream) -> StreamingResult:
        """Execute one pass over ``stream`` and return the result.

        The meter is reset so results reflect this run only; the RNG is
        *not* reset (consecutive runs draw fresh randomness — pass a new
        instance for independent replications with recorded seeds).

        Any :class:`ReproError` escaping the pass (budget exhaustion,
        infeasible patching on a truncated stream, ...) is re-raised
        carrying a :class:`~repro.errors.PartialState` snapshot of the
        live containers the subclass registered via
        :meth:`_register_salvage`, so ``best_effort`` degradation can
        salvage the work already done instead of discarding the pass.
        """
        self._meter = SpaceMeter(budget=self._space_budget)
        self._salvage_cover = None
        self._salvage_certificate = None
        tracer = self._tracer
        with tracer.span(
            obs_events.SPAN_RUN,
            algorithm=self.name,
            stream_length=stream.length,
        ):
            try:
                result = self._run(stream)
            except ReproError as error:
                if error.partial is None:
                    certificate = dict(self._salvage_certificate or {})
                    # With no explicit cover container, the witnesses named
                    # by the certificate are the best available cover.
                    cover = (
                        frozenset(self._salvage_cover)
                        if self._salvage_cover is not None
                        else frozenset(certificate.values())
                    )
                    error.partial = PartialState(
                        cover=cover,
                        certificate=certificate,
                        edges_consumed=stream.position,
                        meter_peak=self._meter.peak_words,
                    )
                if tracer.enabled:
                    tracer.event(
                        obs_events.RUN_FAILED,
                        error=type(error).__name__,
                        edges_consumed=stream.position,
                        peak_words=self._meter.peak_words,
                    )
                raise
            except Exception as error:
                if tracer.enabled:
                    tracer.event(
                        obs_events.RUN_FAILED,
                        error=type(error).__name__,
                        edges_consumed=stream.position,
                        peak_words=self._meter.peak_words,
                    )
                raise
            result.algorithm = result.algorithm or self.name
            if tracer.enabled:
                tracer.event(
                    obs_events.SPACE_SAMPLE,
                    phase="final",
                    peak_words=result.space.peak_words,
                    final_words=result.space.final_words,
                )
        return result

    def _run(self, stream: EdgeStream) -> StreamingResult:
        raise NotImplementedError

    # -- helpers for subclasses -------------------------------------------

    def _register_salvage(
        self,
        cover: Optional[Iterable[SetId]] = None,
        certificate: Optional[Mapping[ElementId, SetId]] = None,
    ) -> None:
        """Register live containers to snapshot if the pass fails.

        Subclasses call this once their cover / certificate containers
        exist (and may call again when a later phase replaces them).
        The references stay live — at failure time :meth:`run` copies
        whatever they hold into the error's :class:`PartialState`.
        """
        if cover is not None:
            self._salvage_cover = cover
        if certificate is not None:
            self._salvage_certificate = certificate

    def _coin(self, probability: float) -> bool:
        """Bernoulli draw — the paper's ``Coin(p)`` primitive.

        Non-finite probabilities raise: a NaN would fail both boundary
        tests below and then ``random() < nan`` is silently ``False``,
        turning a scaling-formula bug into a biased coin.
        """
        if not math.isfinite(probability):
            raise ValueError(
                f"coin probability must be finite, got {probability!r}"
            )
        if self._tracer.enabled:
            self._tracer.count(obs_events.COIN_FLIP)
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return self._rng.random() < probability

    def _trace(self, etype: str, **attrs) -> None:
        """Emit a point event when tracing is on (no-op otherwise)."""
        if self._tracer.enabled:
            self._tracer.event(etype, **attrs)

    def _trace_count(self, name: str, delta: int = 1) -> None:
        """Accumulate a span counter when tracing is on (no-op otherwise)."""
        if self._tracer.enabled:
            self._tracer.count(name, delta)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
