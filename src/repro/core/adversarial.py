"""Algorithm 2: α-approximation with Õ(m·n/α²) space, adversarial order.

Theorem 4 of the paper.  For α = Ω̃(√n), a one-pass streaming algorithm
with *expected* approximation factor O(α·log m) using Õ(m·n/α²) space:

* Each set carries a *level*, initially 0.  Levels ≥ 1 are stored in a
  map ``L`` — the key trick: only the sets promoted at least once are
  stored, and only Õ(m·n/α²) sets ever reach level 1.
* When a tuple ``(S, u)`` arrives with ``u`` not yet covered, the level
  of ``S`` is incremented with probability ``1/α`` (line 18).
* When a set reaches level ``ℓ``, it is added to the partial cover
  ``D_ℓ`` with probability ``p_ℓ = α^(2ℓ+1)/(m·nˡ) = (α²/n)ˡ · p₀``
  where ``p₀ = α/m`` (line 20); ``D₀`` is sampled up-front at rate
  ``p₀`` (line 6).
* An element incident to any set in ``⋃ D_i`` is marked covered with
  that witness (lines 22–24); remaining elements are patched with the
  first set seen to contain them (line 25).

This is an improvement over the KK-algorithm in the α = Ω̃(√n) regime:
the KK-algorithm stores a counter per set (Θ(m) words) whereas here the
level map stays at Õ(m·n/α²) words.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

import numpy as np

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import ConfigurationError
from repro.obs import events as obs_events
from repro.streaming.space import ChargedDict, ChargedSet, SpaceBudget, words_for_set
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId

#: Edges consumed per vectorized batch (see :mod:`repro.core.kk`).
_CHUNK = 8192


class LowSpaceAdversarialAlgorithm(StreamingSetCoverAlgorithm):
    """Level-based α-approximation for edge-arrival set cover (Algorithm 2).

    Parameters
    ----------
    alpha:
        Target approximation parameter; the theorem requires
        ``α ≥ 2√n`` for the space bound (we accept any ``α ≥ 1`` but the
        guarantee is only the paper's in the stated regime).
    seed, space_budget:
        As in :class:`StreamingSetCoverAlgorithm`.
    """

    name = "adversarial-low-space"

    def __init__(
        self,
        alpha: float,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        if alpha < 1:
            raise ConfigurationError(f"alpha must be >= 1, got {alpha}")
        self.alpha = float(alpha)

    def inclusion_probability(self, level: int, n: int, m: int) -> float:
        """``p_ℓ = α^(2ℓ+1) / (m·nˡ)`` capped at 1 (line 20)."""
        if level == 0:
            return min(1.0, self.alpha / m)
        # Computed in log space: for large levels the raw power overflows.
        log_p = (2 * level + 1) * math.log(self.alpha) - math.log(m) - level * math.log(n)
        if log_p >= 0:
            return 1.0
        return math.exp(log_p)

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        m = stream.instance.m
        meter = self._meter

        # Line 6: sample D0 up-front at rate p0 = alpha/m.  We draw the
        # member count binomially and sample ids without replacement,
        # which is distribution-identical to m independent coins but
        # costs O(|D0|) rather than O(m) work.
        p0 = self.inclusion_probability(0, n, m)
        d0: Set[SetId] = {
            set_id for set_id in range(m) if self._rng.random() < p0
        } if p0 < 1.0 else set(range(m))
        partial_cover: Set[SetId] = ChargedSet(
            meter, "partial-cover", words_per_entry=1, iterable=d0
        )

        levels: Dict[SetId, int] = ChargedDict(
            meter, "levels", words_per_entry=2, charge_initial=False
        )
        covered: Set[ElementId] = ChargedSet(
            meter, "covered", words_per_entry=1, charge_initial=False
        )
        certificate: Dict[ElementId, SetId] = {}
        first_sets = FirstSetStore(meter, universe_size=n)
        self._register_salvage(cover=partial_cover, certificate=certificate)

        promotions = 0
        max_level = 0
        promote_p = 1.0 / self.alpha

        # Vectorized pre-filter: an element covered at chunk start stays
        # covered (nothing in this algorithm shrinks), and covered
        # elements draw no coins, so bulk-skipping them preserves both
        # the RNG sequence and every meter charge.
        covered_mask = np.zeros(n, dtype=bool)

        reader = stream.reader()
        while reader.remaining:
            set_ids, elements = reader.take_columns(_CHUNK)
            first_sets.observe_columns(set_ids, elements)
            interesting = np.nonzero(~covered_mask[elements])[0]
            if not len(interesting):
                continue
            for set_id, element in zip(
                set_ids[interesting].tolist(), elements[interesting].tolist()
            ):
                if element in covered:
                    continue

                if self._coin(promote_p):
                    level = levels.get(set_id, 0) + 1
                    levels[set_id] = level
                    promotions += 1
                    if level > max_level:
                        max_level = level
                    self._trace(
                        obs_events.LEVEL_PROMOTED, set_id=set_id, level=level
                    )
                    if set_id not in partial_cover and self._coin(
                        self.inclusion_probability(level, n, m)
                    ):
                        partial_cover.add(set_id)
                        self._trace(
                            obs_events.SET_ADMITTED, set_id=set_id, level=level
                        )

                if set_id in partial_cover:
                    covered.add(element)
                    covered_mask[element] = True
                    certificate[element] = set_id
                    self._trace_count(obs_events.ELEMENT_COVERED)

        cover = set(partial_cover)
        patched = first_sets.patch(certificate, cover, n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        # Output pruning: drop sets from ⋃ D_i that never witnessed an
        # element — they contribute nothing to coverage, and pruning
        # guarantees cover_size ≤ n.
        cover = set(certificate.values())
        meter.set_component("cover", words_for_set(len(cover)))

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "alpha": self.alpha,
                "promotions": float(promotions),
                "max_level": float(max_level),
                "level_map_peak": float(meter.report().peak_of("levels")),
                "d0_size": float(len(d0)),
                "patched_elements": float(patched),
            },
        )
