"""Element-sampling α-approximation with Õ(m·n/α) space (Table 1 row 1).

For α = o(√n), Assadi, Khanna and Li [4] showed Θ̃(m·n/α) space is
necessary and sufficient; [19]'s appendix observes their algorithm also
runs in the edge-arrival model.  This module implements the classic
element-sampling scheme achieving that upper bound:

* Sample a universe subset ``L`` up front, each element independently
  with probability ``p = C·log m / α`` (so ``|L| ≈ n·log m/α``).
* During the single pass, store the *projection* of every set onto
  ``L``: each edge ``(S, u)`` with ``u ∈ L`` is kept.  Expected stored
  edges ≈ ``N·p ≤ m·n·log m/α = Õ(m·n/α)`` — the space bound.
* Per element, cache the first ``O(log m)`` distinct sets seen to
  contain it (Õ(n) words) — the *witness cache*.
* After the pass, cover ``L`` offline (greedy on the projections).
  A non-sampled element whose witness cache intersects the chosen
  cover is certified for free; the rest are patched with their first
  seen set.

The element-sampling lemma gives the quality driver: any ℓ sets
covering the sample leave only Õ(ℓ·α) elements of the full universe
uncovered whp, so patching adds Õ(α)·OPT sets.  The witness cache is
the edge-arrival twist: in the set-arrival model of [4] a set's full
content is visible at arrival and certification is direct; in edge
arrival the cache supplies the membership facts (u ∈ S) the discarded
edges carried.  Elements covered by the greedy sets but only via edges
outside their cache window still fall back to patching, so the
realised constant is workload-dependent; the Θ̃(m·n/α) *space* scaling
is exact either way.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

import numpy as np

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.obs import events as obs_events
from repro.streaming.space import ChargedSet, SpaceBudget, words_for_set
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId

#: Edges consumed per vectorized batch (see :mod:`repro.core.kk`).
_CHUNK = 8192


class ElementSamplingAlgorithm(StreamingSetCoverAlgorithm):
    """One-pass edge-arrival α-approximation via element sampling.

    Parameters
    ----------
    alpha:
        Target approximation parameter (the regime of interest is
        ``α = o(√n)``; any ``α ≥ 1`` is accepted).
    sample_constant:
        The ``C`` in ``p = C·log m/α``; larger C improves quality and
        costs proportionally more space.
    witness_cache_size:
        Per-element cap on cached containing sets; ``None`` uses the
        default ``⌈log₂ m⌉``, ``0`` disables the cache entirely (an
        ablation: every non-sampled element then falls back to
        first-fit patching).
    """

    name = "element-sampling"

    def __init__(
        self,
        alpha: float,
        sample_constant: float = 1.0,
        witness_cache_size: Optional[int] = None,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        if alpha < 1:
            raise ConfigurationError(f"alpha must be >= 1, got {alpha}")
        if sample_constant <= 0:
            raise ConfigurationError(
                f"sample_constant must be positive, got {sample_constant}"
            )
        if witness_cache_size is not None and witness_cache_size < 0:
            raise ConfigurationError(
                f"witness_cache_size must be >= 0, got {witness_cache_size}"
            )
        self.alpha = float(alpha)
        self.sample_constant = float(sample_constant)
        self.witness_cache_size = witness_cache_size

    def sample_probability(self, m: int) -> float:
        """``p = C·log m / α``, capped at 1."""
        log_m = max(1.0, math.log2(max(2, m)))
        return min(1.0, self.sample_constant * log_m / self.alpha)

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        m = stream.instance.m
        meter = self._meter

        p = self.sample_probability(m)
        sampled: Set[ElementId] = ChargedSet(
            meter,
            "sampled-universe",
            words_per_entry=1,
            iterable=(u for u in range(n) if self._rng.random() < p),
        )

        projections: Dict[SetId, Set[ElementId]] = {}
        stored_edges = 0
        first_sets = FirstSetStore(meter, universe_size=n)
        cache_size = (
            self.witness_cache_size
            if self.witness_cache_size is not None
            else max(1, int(math.log2(max(2, m))))
        )
        witness_cache: Dict[ElementId, Set[SetId]] = {}
        # Mid-pass failures salvage the first-set witnesses gathered so
        # far; the offline phase re-registers the real cover below.
        self._register_salvage(certificate=first_sets.mapping)

        # Vectorized pre-filter: an edge is a guaranteed no-op once its
        # element's witness cache is full and the element is not sampled;
        # both conditions are monotone, so chunk-start masks are sound.
        sampled_mask = np.zeros(n, dtype=bool)
        for u in sampled:
            sampled_mask[u] = True
        cache_open = np.full(n, cache_size > 0, dtype=bool)

        reader = stream.reader()
        while reader.remaining:
            set_ids, elements = reader.take_columns(_CHUNK)
            first_sets.observe_columns(set_ids, elements)
            interesting = np.nonzero(
                cache_open[elements] | sampled_mask[elements]
            )[0]
            if not len(interesting):
                continue
            for set_id, element in zip(
                set_ids[interesting].tolist(), elements[interesting].tolist()
            ):
                if cache_size > 0:
                    cache = witness_cache.setdefault(element, set())
                    if len(cache) < cache_size and set_id not in cache:
                        cache.add(set_id)
                        meter.add_to_component("witness-cache", 1)
                        if len(cache) >= cache_size:
                            cache_open[element] = False
                if element in sampled:
                    members = projections.setdefault(set_id, set())
                    if element not in members:
                        members.add(element)
                        stored_edges += 1
                        meter.add_to_component("projections", 2)

        # Offline phase: greedy cover of the sampled universe using the
        # stored projections (elements of L never seen in the stream can
        # only exist if the instance is infeasible).
        seen_sampled: Set[ElementId] = set()
        for members in projections.values():
            seen_sampled |= members
        missing = sampled - seen_sampled
        if missing and any(
            first_sets.get(u) is None for u in missing
        ):
            raise InfeasibleInstanceError(
                f"{len(missing)} sampled element(s) never appeared in the "
                "stream"
            )

        cover: Set[SetId] = set()
        certificate: Dict[ElementId, SetId] = {}
        self._register_salvage(cover=cover, certificate=certificate)
        uncovered = set(seen_sampled)
        # Greedy over projections only — Õ(m·n/α) data, no second pass.
        with self._tracer.span(
            obs_events.SPAN_OFFLINE,
            sampled_elements=len(sampled),
            stored_edges=stored_edges,
        ):
            remaining = {s: set(mem) for s, mem in projections.items()}
            while uncovered:
                best_set, best_gain = -1, 0
                for s, members in remaining.items():
                    gain = len(members & uncovered)
                    if gain > best_gain:
                        best_set, best_gain = s, gain
                if best_gain == 0:
                    break  # unreachable for feasible inputs; patched below
                cover.add(best_set)
                self._trace(
                    obs_events.SET_ADMITTED,
                    set_id=best_set,
                    phase="greedy",
                    gain=best_gain,
                )
                for u in remaining.pop(best_set):
                    if u in uncovered:
                        uncovered.discard(u)
                        certificate[u] = best_set
                        self._trace_count(obs_events.ELEMENT_COVERED)
                meter.set_component("cover", words_for_set(len(cover)))
            greedy_picks = len(cover)

            # Witness-cache certification: a non-sampled element whose cache
            # intersects the chosen cover costs nothing extra.
            cached_certifications = 0
            for u in range(n):
                if u in certificate:
                    continue
                hits = witness_cache.get(u, set()) & cover
                if hits:
                    certificate[u] = min(hits)
                    cached_certifications += 1
                    self._trace_count(obs_events.ELEMENT_COVERED)

        patched = first_sets.patch(certificate, cover, n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        meter.set_component("cover", words_for_set(len(cover)))
        # Output pruning, as for the paper's algorithms.
        cover = set(certificate.values())

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "alpha": self.alpha,
                "sample_probability": p,
                "sampled_elements": float(len(sampled)),
                "stored_projection_edges": float(stored_edges),
                "greedy_picks": float(greedy_picks),
                "cached_certifications": float(cached_certifications),
                "patched_elements": float(patched),
            },
        )
