"""Element-sampling α-approximation with Õ(m·n/α) space (Table 1 row 1).

For α = o(√n), Assadi, Khanna and Li [4] showed Θ̃(m·n/α) space is
necessary and sufficient; [19]'s appendix observes their algorithm also
runs in the edge-arrival model.  This module implements the classic
element-sampling scheme achieving that upper bound:

* Sample a universe subset ``L`` up front, each element independently
  with probability ``p = C·log m / α`` (so ``|L| ≈ n·log m/α``).
* During the single pass, store the *projection* of every set onto
  ``L``: each edge ``(S, u)`` with ``u ∈ L`` is kept.  Expected stored
  edges ≈ ``N·p ≤ m·n·log m/α = Õ(m·n/α)`` — the space bound.
* Per element, cache the first ``O(log m)`` distinct sets seen to
  contain it (Õ(n) words) — the *witness cache*.
* After the pass, cover ``L`` offline (greedy on the projections).
  A non-sampled element whose witness cache intersects the chosen
  cover is certified for free; the rest are patched with their first
  seen set.

The element-sampling lemma gives the quality driver: any ℓ sets
covering the sample leave only Õ(ℓ·α) elements of the full universe
uncovered whp, so patching adds Õ(α)·OPT sets.  The witness cache is
the edge-arrival twist: in the set-arrival model of [4] a set's full
content is visible at arrival and certification is direct; in edge
arrival the cache supplies the membership facts (u ∈ S) the discarded
edges carried.  Elements covered by the greedy sets but only via edges
outside their cache window still fall back to patching, so the
realised constant is workload-dependent; the Θ̃(m·n/α) *space* scaling
is exact either way.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.solution import StreamingResult
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.obs import events as obs_events
from repro.streaming.space import ChargedSet, SpaceBudget, words_for_set
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId

#: Edges consumed per vectorized batch (see :mod:`repro.core.kk`).
_CHUNK = 8192

GreedyPick = Tuple[SetId, int, List[ElementId]]
"""One offline-greedy pick: ``(set_id, gain, covered_elements_sorted)``."""


def _greedy_picks(
    projections: Dict[SetId, Set[ElementId]], uncovered: Set[ElementId]
) -> Iterator[GreedyPick]:
    """Yield greedy picks over the stored projections, in pick order.

    The vectorized offline phase: projection entries live in two flat
    ``int64`` columns (set index, element id) and each pick is one
    ``bincount`` over the still-uncovered entries plus an ``argmax``.
    ``argmax`` returns the *first* index achieving the maximum and set
    indices follow ``projections`` insertion order, so ties break to
    the earliest-stored set — exactly the scalar dict scan's rule
    (asserted byte-identical by ``tests/test_core_element_sampling.py``).
    Entries of covered elements and picked sets are dropped as the loop
    proceeds, so each round costs O(live entries), not O(m·n).
    """
    if not uncovered or not projections:
        return
    set_list = list(projections)
    flat_sets: List[int] = []
    flat_elems: List[ElementId] = []
    for index, set_id in enumerate(set_list):
        members = projections[set_id]
        flat_sets.extend([index] * len(members))
        flat_elems.extend(members)
    set_idx = np.asarray(flat_sets, dtype=np.int64)
    elems = np.asarray(flat_elems, dtype=np.int64)
    num_sets = len(set_list)
    size = int(elems.max()) + 1 if len(elems) else 1
    uncovered_mask = np.zeros(size, dtype=bool)
    for element in uncovered:
        if element < size:
            uncovered_mask[element] = True
    while True:
        keep = uncovered_mask[elems]
        if not keep.all():
            elems = elems[keep]
            set_idx = set_idx[keep]
        if not len(elems):
            return
        gains = np.bincount(set_idx, minlength=num_sets)
        best = int(np.argmax(gains))
        best_gain = int(gains[best])
        if best_gain == 0:
            return
        chosen = set_idx == best
        covered_elements = elems[chosen]
        uncovered_mask[covered_elements] = False
        elems = elems[~chosen]
        set_idx = set_idx[~chosen]
        yield set_list[best], best_gain, sorted(covered_elements.tolist())


def _greedy_picks_reference(
    projections: Dict[SetId, Set[ElementId]], uncovered: Set[ElementId]
) -> Iterator[GreedyPick]:
    """The original O(m·n)-per-pick dict scan, kept as the oracle.

    ``tests/test_core_element_sampling.py`` asserts :func:`_greedy_picks`
    reproduces this sequence of picks exactly on random inputs.
    """
    remaining = {s: set(members) for s, members in projections.items()}
    live = set(uncovered)
    while live:
        best_set, best_gain = -1, 0
        for s, members in remaining.items():
            gain = len(members & live)
            if gain > best_gain:
                best_set, best_gain = s, gain
        if best_gain == 0:
            return
        covered_elements = sorted(remaining.pop(best_set) & live)
        live.difference_update(covered_elements)
        yield best_set, best_gain, covered_elements


class ElementSamplingAlgorithm(StreamingSetCoverAlgorithm):
    """One-pass edge-arrival α-approximation via element sampling.

    Parameters
    ----------
    alpha:
        Target approximation parameter (the regime of interest is
        ``α = o(√n)``; any ``α ≥ 1`` is accepted).
    sample_constant:
        The ``C`` in ``p = C·log m/α``; larger C improves quality and
        costs proportionally more space.
    witness_cache_size:
        Per-element cap on cached containing sets; ``None`` uses the
        default ``⌈log₂ m⌉``, ``0`` disables the cache entirely (an
        ablation: every non-sampled element then falls back to
        first-fit patching).
    """

    name = "element-sampling"

    def __init__(
        self,
        alpha: float,
        sample_constant: float = 1.0,
        witness_cache_size: Optional[int] = None,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        if alpha < 1:
            raise ConfigurationError(f"alpha must be >= 1, got {alpha}")
        if sample_constant <= 0:
            raise ConfigurationError(
                f"sample_constant must be positive, got {sample_constant}"
            )
        if witness_cache_size is not None and witness_cache_size < 0:
            raise ConfigurationError(
                f"witness_cache_size must be >= 0, got {witness_cache_size}"
            )
        self.alpha = float(alpha)
        self.sample_constant = float(sample_constant)
        self.witness_cache_size = witness_cache_size

    def sample_probability(self, m: int) -> float:
        """``p = C·log m / α``, capped at 1."""
        log_m = max(1.0, math.log2(max(2, m)))
        return min(1.0, self.sample_constant * log_m / self.alpha)

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        m = stream.instance.m
        meter = self._meter

        p = self.sample_probability(m)
        sampled: Set[ElementId] = ChargedSet(
            meter,
            "sampled-universe",
            words_per_entry=1,
            iterable=(u for u in range(n) if self._rng.random() < p),
        )

        projections: Dict[SetId, Set[ElementId]] = {}
        stored_edges = 0
        first_sets = FirstSetStore(meter, universe_size=n)
        cache_size = (
            self.witness_cache_size
            if self.witness_cache_size is not None
            else max(1, int(math.log2(max(2, m))))
        )
        witness_cache: Dict[ElementId, Set[SetId]] = {}
        # Mid-pass failures salvage the first-set witnesses gathered so
        # far; the offline phase re-registers the real cover below.
        self._register_salvage(certificate=first_sets.mapping)

        # Vectorized pre-filter: an edge is a guaranteed no-op once its
        # element's witness cache is full and the element is not sampled;
        # both conditions are monotone, so chunk-start masks are sound.
        sampled_mask = np.zeros(n, dtype=bool)
        for u in sampled:
            sampled_mask[u] = True
        cache_open = np.full(n, cache_size > 0, dtype=bool)

        reader = stream.reader()
        while reader.remaining:
            set_ids, elements = reader.take_columns(_CHUNK)
            first_sets.observe_columns(set_ids, elements)
            interesting = np.nonzero(
                cache_open[elements] | sampled_mask[elements]
            )[0]
            if not len(interesting):
                continue
            for set_id, element in zip(
                set_ids[interesting].tolist(), elements[interesting].tolist()
            ):
                if cache_size > 0:
                    cache = witness_cache.setdefault(element, set())
                    if len(cache) < cache_size and set_id not in cache:
                        cache.add(set_id)
                        meter.add_to_component("witness-cache", 1)
                        if len(cache) >= cache_size:
                            cache_open[element] = False
                if element in sampled:
                    members = projections.setdefault(set_id, set())
                    if element not in members:
                        members.add(element)
                        stored_edges += 1
                        meter.add_to_component("projections", 2)

        # Offline phase: greedy cover of the sampled universe using the
        # stored projections (elements of L never seen in the stream can
        # only exist if the instance is infeasible).
        seen_sampled: Set[ElementId] = set()
        for members in projections.values():
            seen_sampled |= members
        missing = sampled - seen_sampled
        if missing and any(
            first_sets.get(u) is None for u in missing
        ):
            raise InfeasibleInstanceError(
                f"{len(missing)} sampled element(s) never appeared in the "
                "stream"
            )

        cover: Set[SetId] = set()
        certificate: Dict[ElementId, SetId] = {}
        self._register_salvage(cover=cover, certificate=certificate)
        uncovered = set(seen_sampled)
        # Greedy over projections only — Õ(m·n/α) data, no second pass.
        with self._tracer.span(
            obs_events.SPAN_OFFLINE,
            sampled_elements=len(sampled),
            stored_edges=stored_edges,
        ):
            for best_set, best_gain, covered_now in _greedy_picks(
                projections, uncovered
            ):
                cover.add(best_set)
                self._trace(
                    obs_events.SET_ADMITTED,
                    set_id=best_set,
                    phase="greedy",
                    gain=best_gain,
                )
                for u in covered_now:
                    uncovered.discard(u)
                    certificate[u] = best_set
                    self._trace_count(obs_events.ELEMENT_COVERED)
                meter.set_component("cover", words_for_set(len(cover)))
            greedy_picks = len(cover)

            # Witness-cache certification: a non-sampled element whose cache
            # intersects the chosen cover costs nothing extra.
            cached_certifications = 0
            for u in range(n):
                if u in certificate:
                    continue
                hits = witness_cache.get(u, set()) & cover
                if hits:
                    certificate[u] = min(hits)
                    cached_certifications += 1
                    self._trace_count(obs_events.ELEMENT_COVERED)

        patched = first_sets.patch(certificate, cover, n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        meter.set_component("cover", words_for_set(len(cover)))
        # Output pruning, as for the paper's algorithms.
        cover = set(certificate.values())

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "alpha": self.alpha,
                "sample_probability": p,
                "sampled_elements": float(len(sampled)),
                "stored_projection_edges": float(stored_edges),
                "greedy_picks": float(greedy_picks),
                "cached_certifications": float(cached_certifications),
                "patched_elements": float(patched),
            },
        )
