"""The KK-algorithm: Õ(√n)-approximation with Õ(m) space (Theorem 1).

Reimplemented from this paper's Section 1.2 description of
[Khanna–Konrad, ITCS'22]:

* For every set ``S`` maintain an *uncovered-degree* counter ``d(S)``:
  each arriving tuple ``(S, u)`` with ``u`` not yet covered increments
  ``d(S)``.
* Whenever ``d(S)`` reaches ``i·√n`` for an integer ``i ≥ 1``, include
  ``S`` in the solution with probability ``2ⁱ·√n/m``; once included,
  ``S`` covers every one of its elements arriving from that moment on.
* Elements still uncovered at the end are patched with the first set
  observed to contain them (cost: one set per element, the same
  patching rule the paper's other algorithms use).

The analysis of [19] shows the level populations decay geometrically
(E|Sᵢ| ≤ ½ E|Sᵢ₋₁|), so each level contributes Õ(√n) sets and the
output is an Õ(√n)-approximation with high probability.  The counters
dominate the state: Θ(m) words — this is the space bound Theorem 2
proves optimal for α = Θ̃(√n) in adversarial order.

Two implementations share this contract:

:class:`KKAlgorithm` (registry name ``"kk"``)
    The vectorized kernel.  Degrees live in one ``int64[m]`` array;
    each chunk of the stream is scanned with numpy column ops
    (covered-mask prefilter, per-set occurrence ranks via a stable
    argsort, degree application via ``bincount``) and only the *rare*
    events — level promotions and set inclusions — drop to Python.
    Coin draws happen one promotion at a time, in stream order, from
    the same seeded RNG, so the randomness stream is identical to the
    scalar's.  An inclusion invalidates the scan's chunk-start masks,
    so the scan *restarts* just past the inclusion edge with the
    not-yet-applied suffix state discarded; state mutations before the
    inclusion point are applied exactly once.

:class:`KKReferenceAlgorithm` (registry name ``"kk-reference"``)
    The original per-edge scalar loop over :class:`ChargedDict` /
    :class:`ChargedSet` containers, kept as the executable
    specification.  ``tests/test_core_kk_equivalence.py`` proves the
    two produce byte-identical covers, certificates, diagnostics,
    space reports, and traces on instance × order × seed grids.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.scaling import Scaling
from repro.core.solution import StreamingResult
from repro.obs import events as obs_events
from repro.streaming.space import ChargedDict, ChargedSet, SpaceBudget, words_for_set
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId

#: Edges consumed per vectorized batch; large enough to amortize numpy
#: per-call overhead, small enough that the post-inclusion rescan of a
#: chunk suffix stays cheap relative to the chunk itself.
_CHUNK = 16384

#: Scan-window size right after an inclusion.  An inclusion invalidates
#: the masks for everything scanned past it, so work beyond the
#: inclusion point is discarded; on inclusion-dense streams a full-chunk
#: rescan per inclusion would go quadratic.  The window restarts small
#: and grows geometrically (×4 per inclusion-free window) back to the
#: chunk size, bounding discarded work per inclusion to O(window) while
#: keeping long inclusion-free stretches fully vectorized.  Window
#: boundaries are semantically identical to chunk boundaries — the
#: masks are recomputed from monotone state — so the partition does not
#: affect the output.
_RESCAN_WINDOW = 512


def _occurrence_ranks(
    values: np.ndarray, value_bound: int = 0
) -> np.ndarray:
    """Per-position occurrence rank of each value (1-based, stream order).

    ``values[i]``'s rank is the number of times that value has appeared
    in ``values[: i + 1]`` — exactly the increment sequence a per-value
    counter would see scanning left to right.  O(k log k) via a stable
    argsort groupby instead of a Python loop.  When ``value_bound``
    (an exclusive upper bound on the values, e.g. ``m`` for set ids)
    fits in 16 bits, the sort key is narrowed to ``uint16`` so numpy
    takes its radix path — ~8x faster than comparison-sorting ``int64``
    and identical output, since the narrowing is injective.
    """
    k = len(values)
    if not k:
        return np.empty(0, dtype=np.int64)
    sort_key = (
        values.astype(np.uint16)
        if 0 < value_bound <= (1 << 16)
        else values
    )
    order = np.argsort(sort_key, kind="stable")
    sorted_values = values[order]
    positions = np.arange(k, dtype=np.int64)
    is_start = np.empty(k, dtype=bool)
    is_start[0] = True
    is_start[1:] = sorted_values[1:] != sorted_values[:-1]
    group_start = np.maximum.accumulate(np.where(is_start, positions, 0))
    ranks = np.empty(k, dtype=np.int64)
    ranks[order] = positions - group_start + 1
    return ranks


class KKAlgorithm(StreamingSetCoverAlgorithm):
    """One-pass edge-arrival set cover with uncovered-degree counters.

    The vectorized kernel (see the module docstring for the layout and
    the restart-on-inclusion discipline).  Byte-identical in output and
    trace to :class:`KKReferenceAlgorithm`.

    Parameters
    ----------
    scaling:
        Constant pack; only :meth:`Scaling.kk_level_width` and
        :meth:`Scaling.kk_inclusion_probability` are consulted.
    seed:
        RNG seed for the probabilistic inclusion rule.
    space_budget:
        Optional hard cap in words (tests use this to certify the
        Õ(m) bound).
    """

    name = "kk"

    def __init__(
        self,
        scaling: Optional[Scaling] = None,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        self.scaling = scaling if scaling is not None else Scaling.practical()

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        m = stream.instance.m
        scaling = self.scaling
        level_width = scaling.kk_level_width(n)

        meter = self._meter
        # Flat kernel state.  The scalar reference keeps these in charged
        # containers that bill the meter per mutation; every component
        # here only ever grows, so billing the same counts once per chunk
        # yields the identical peak and breakdown (peak == final state).
        degrees = np.zeros(m, dtype=np.int64)
        covered_mask = np.zeros(n, dtype=bool)
        cover_mask = np.zeros(m, dtype=bool)
        cover: Set[SetId] = set()
        certificate: Dict[ElementId, SetId] = {}
        first_sets = FirstSetStore(meter, universe_size=n)
        self._register_salvage(cover=cover, certificate=certificate)

        covered_count = 0
        degree_entries = 0
        max_level_reached = 0
        inclusion_events = 0
        tracer = self._tracer

        reader = stream.reader()
        while reader.remaining:
            set_ids, elements = reader.take_columns(_CHUNK)
            first_sets.observe_columns(set_ids, elements)
            chunk_len = len(elements)
            chunk_positions = np.arange(chunk_len, dtype=np.int64)
            pos = 0
            window = chunk_len
            while pos < chunk_len:
                stop = min(pos + window, chunk_len)
                s_suffix = set_ids[pos:stop]
                e_suffix = elements[pos:stop]
                suffix_len = stop - pos
                # Window-start masks: an edge whose element is already
                # covered is a guaranteed no-op for the whole scan.
                alive = ~covered_mask[e_suffix]
                if not alive.any():
                    pos = stop
                    window = min(window * 4, chunk_len)
                    continue
                in_cover = cover_mask[s_suffix]

                # Hits: an included set covers its later elements.  Only
                # the *first* hit of each element is the witness; later
                # edges of that element are dead.
                hit_mask = alive & in_cover
                counting_mask = alive & ~in_cover
                hit_positions: Optional[np.ndarray] = None
                first_hit: Optional[np.ndarray] = None
                if hit_mask.any():
                    hit_positions = np.nonzero(hit_mask)[0]
                    first_hit = np.full(n, suffix_len, dtype=np.int64)
                    np.minimum.at(first_hit, e_suffix[hit_positions], hit_positions)
                    # An edge after its element's first hit no longer
                    # increments its set's counter.
                    counting_mask &= (
                        chunk_positions[:suffix_len] < first_hit[e_suffix]
                    )

                counting_positions = np.nonzero(counting_mask)[0]
                included_at = -1
                inclusion_probability = 0.0
                inclusion_level = 0
                counting_sets: Optional[np.ndarray] = None
                if counting_positions.size:
                    counting_sets = s_suffix[counting_positions]
                    new_degrees = degrees[counting_sets] + _occurrence_ranks(
                        counting_sets, value_bound=m
                    )
                    promotions = np.nonzero(new_degrees % level_width == 0)[0]
                    # Promotions are rare (≤ one per level_width counting
                    # edges); walk them in stream order so coin draws
                    # consume the RNG exactly as the scalar loop does.
                    for j in promotions.tolist():
                        set_id = int(counting_sets[j])
                        level = int(new_degrees[j]) // level_width
                        if level > max_level_reached:
                            max_level_reached = level
                        self._trace(
                            obs_events.LEVEL_PROMOTED, set_id=set_id, level=level
                        )
                        p = scaling.kk_inclusion_probability(level, n, m)
                        if self._coin(p):
                            included_at = j
                            inclusion_probability = p
                            inclusion_level = level
                            break

                if included_at >= 0:
                    inclusion_pos = int(counting_positions[included_at])
                    # Apply exactly the state the scalar loop would have
                    # built before this edge: counter increments for the
                    # counting prefix (inclusive) and witnesses for hits
                    # strictly before the inclusion edge.
                    degrees += np.bincount(
                        counting_sets[: included_at + 1], minlength=m
                    )
                    if hit_positions is not None:
                        covered_count += self._apply_hits(
                            s_suffix,
                            e_suffix,
                            hit_positions,
                            first_hit,
                            inclusion_pos,
                            covered_mask,
                            certificate,
                            tracer,
                        )
                    set_id = int(counting_sets[included_at])
                    element = int(e_suffix[inclusion_pos])
                    cover.add(set_id)
                    cover_mask[set_id] = True
                    inclusion_events += 1
                    covered_mask[element] = True
                    covered_count += 1
                    certificate[element] = set_id
                    self._trace(
                        obs_events.SET_ADMITTED,
                        set_id=set_id,
                        level=inclusion_level,
                        probability=inclusion_probability,
                    )
                    self._trace_count(obs_events.ELEMENT_COVERED)
                    # The inclusion invalidates the window-start masks for
                    # everything after it; rescan just past the inclusion
                    # edge with a small window that regrows geometrically.
                    pos += inclusion_pos + 1
                    window = _RESCAN_WINDOW
                else:
                    if counting_sets is not None:
                        degrees += np.bincount(counting_sets, minlength=m)
                    if hit_positions is not None:
                        covered_count += self._apply_hits(
                            s_suffix,
                            e_suffix,
                            hit_positions,
                            first_hit,
                            suffix_len,
                            covered_mask,
                            certificate,
                            tracer,
                        )
                    pos = stop
                    window = min(window * 4, chunk_len)

            # Per-chunk meter reconciliation.  All components grow
            # monotonically, so charging the same final counts the scalar
            # containers reach gives the identical peak and breakdown;
            # components are only created once genuinely non-empty,
            # matching the charged containers' lazy registration.
            nonzero = int(np.count_nonzero(degrees))
            if nonzero != degree_entries:
                degree_entries = nonzero
                meter.set_component("degree-counters", 2 * nonzero)
            if covered_count:
                meter.set_component("covered", covered_count)
            if cover:
                meter.set_component("cover", words_for_set(len(cover)))

        patched = first_sets.patch(certificate, cover, n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        meter.set_component("cover", words_for_set(len(cover)))

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "max_level_reached": float(max_level_reached),
                "inclusion_events": float(inclusion_events),
                "patched_elements": float(patched),
                "level_width": float(level_width),
            },
        )

    @staticmethod
    def _apply_hits(
        s_suffix: np.ndarray,
        e_suffix: np.ndarray,
        hit_positions: np.ndarray,
        first_hit: np.ndarray,
        limit: int,
        covered_mask: np.ndarray,
        certificate: Dict[ElementId, SetId],
        tracer,
    ) -> int:
        """Commit first-hit witnesses at suffix positions ``< limit``.

        Returns the number of elements newly covered.  Positions at or
        past ``limit`` stay unapplied: the rescan after an inclusion
        re-derives them (the newly included set may now supply an
        earlier witness, exactly as the scalar loop would).
        """
        chosen = hit_positions[
            (hit_positions < limit)
            & (first_hit[e_suffix[hit_positions]] == hit_positions)
        ]
        if not chosen.size:
            return 0
        for position in chosen.tolist():
            element = int(e_suffix[position])
            covered_mask[element] = True
            certificate[element] = int(s_suffix[position])
        if tracer.enabled:
            tracer.count(obs_events.ELEMENT_COVERED, int(chosen.size))
        return int(chosen.size)


class KKReferenceAlgorithm(KKAlgorithm):
    """The scalar per-edge KK loop — the executable specification.

    Registry name ``"kk-reference"``.  Kept verbatim from before the
    kernel vectorization so the equivalence suite can assert the fast
    path reproduces it byte for byte; also the honest baseline the
    perfbench kk-kernel section measures speedups against.
    """

    name = "kk-reference"

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        m = stream.instance.m
        level_width = self.scaling.kk_level_width(n)

        meter = self._meter
        uncovered_degree: Dict[SetId, int] = ChargedDict(
            meter, "degree-counters", words_per_entry=2, charge_initial=False
        )
        covered: Set[ElementId] = ChargedSet(
            meter, "covered", words_per_entry=1, charge_initial=False
        )
        cover: Set[SetId] = ChargedSet(
            meter, "cover", words_per_entry=1, charge_initial=False
        )
        certificate: Dict[ElementId, SetId] = {}
        first_sets = FirstSetStore(meter, universe_size=n)
        self._register_salvage(cover=cover, certificate=certificate)

        # Boolean mirror of `covered` for the vectorized pre-filter;
        # every component in this algorithm only ever grows, so an edge
        # whose element was covered at chunk start is a guaranteed no-op
        # and can be skipped in bulk.
        covered_mask = np.zeros(n, dtype=bool)

        max_level_reached = 0
        inclusion_events = 0

        reader = stream.reader()
        while reader.remaining:
            set_ids, elements = reader.take_columns(_CHUNK)
            first_sets.observe_columns(set_ids, elements)
            interesting = np.nonzero(~covered_mask[elements])[0]
            if not len(interesting):
                continue
            for set_id, element in zip(
                set_ids[interesting].tolist(), elements[interesting].tolist()
            ):
                if element in covered:
                    continue
                if set_id in cover:
                    # An included set covers its elements from inclusion
                    # onward.
                    covered.add(element)
                    covered_mask[element] = True
                    certificate[element] = set_id
                    self._trace_count(obs_events.ELEMENT_COVERED)
                    continue

                degree = uncovered_degree.get(set_id, 0) + 1
                uncovered_degree[set_id] = degree

                if degree % level_width == 0:
                    level = degree // level_width
                    max_level_reached = max(max_level_reached, level)
                    self._trace(
                        obs_events.LEVEL_PROMOTED, set_id=set_id, level=level
                    )
                    p = self.scaling.kk_inclusion_probability(level, n, m)
                    if self._coin(p):
                        cover.add(set_id)
                        inclusion_events += 1
                        covered.add(element)
                        covered_mask[element] = True
                        certificate[element] = set_id
                        self._trace(
                            obs_events.SET_ADMITTED,
                            set_id=set_id,
                            level=level,
                            probability=p,
                        )
                        self._trace_count(obs_events.ELEMENT_COVERED)

        patched = first_sets.patch(certificate, cover, n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        meter.set_component("cover", words_for_set(len(cover)))

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "max_level_reached": float(max_level_reached),
                "inclusion_events": float(inclusion_events),
                "patched_elements": float(patched),
                "level_width": float(level_width),
            },
        )
