"""The KK-algorithm: Õ(√n)-approximation with Õ(m) space (Theorem 1).

Reimplemented from this paper's Section 1.2 description of
[Khanna–Konrad, ITCS'22]:

* For every set ``S`` maintain an *uncovered-degree* counter ``d(S)``:
  each arriving tuple ``(S, u)`` with ``u`` not yet covered increments
  ``d(S)``.
* Whenever ``d(S)`` reaches ``i·√n`` for an integer ``i ≥ 1``, include
  ``S`` in the solution with probability ``2ⁱ·√n/m``; once included,
  ``S`` covers every one of its elements arriving from that moment on.
* Elements still uncovered at the end are patched with the first set
  observed to contain them (cost: one set per element, the same
  patching rule the paper's other algorithms use).

The analysis of [19] shows the level populations decay geometrically
(E|Sᵢ| ≤ ½ E|Sᵢ₋₁|), so each level contributes Õ(√n) sets and the
output is an Õ(√n)-approximation with high probability.  The counters
dominate the state: Θ(m) words — this is the space bound Theorem 2
proves optimal for α = Θ̃(√n) in adversarial order.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.core.base import FirstSetStore, StreamingSetCoverAlgorithm
from repro.core.scaling import Scaling
from repro.core.solution import StreamingResult
from repro.obs import events as obs_events
from repro.streaming.space import ChargedDict, ChargedSet, SpaceBudget, words_for_set
from repro.streaming.stream import EdgeStream
from repro.types import ElementId, SeedLike, SetId

#: Edges consumed per vectorized batch; large enough to amortize numpy
#: per-call overhead, small enough to keep the covered-element pre-filter
#: reasonably fresh within a chunk.
_CHUNK = 8192


class KKAlgorithm(StreamingSetCoverAlgorithm):
    """One-pass edge-arrival set cover with uncovered-degree counters.

    Parameters
    ----------
    scaling:
        Constant pack; only :meth:`Scaling.kk_level_width` and
        :meth:`Scaling.kk_inclusion_probability` are consulted.
    seed:
        RNG seed for the probabilistic inclusion rule.
    space_budget:
        Optional hard cap in words (tests use this to certify the
        Õ(m) bound).
    """

    name = "kk"

    def __init__(
        self,
        scaling: Optional[Scaling] = None,
        seed: SeedLike = None,
        space_budget: Optional[SpaceBudget] = None,
    ) -> None:
        super().__init__(seed=seed, space_budget=space_budget)
        self.scaling = scaling if scaling is not None else Scaling.practical()

    def _run(self, stream: EdgeStream) -> StreamingResult:
        n = stream.instance.n
        m = stream.instance.m
        level_width = self.scaling.kk_level_width(n)

        meter = self._meter
        uncovered_degree: Dict[SetId, int] = ChargedDict(
            meter, "degree-counters", words_per_entry=2, charge_initial=False
        )
        covered: Set[ElementId] = ChargedSet(
            meter, "covered", words_per_entry=1, charge_initial=False
        )
        cover: Set[SetId] = ChargedSet(
            meter, "cover", words_per_entry=1, charge_initial=False
        )
        certificate: Dict[ElementId, SetId] = {}
        first_sets = FirstSetStore(meter, universe_size=n)
        self._register_salvage(cover=cover, certificate=certificate)

        # Boolean mirror of `covered` for the vectorized pre-filter;
        # every component in this algorithm only ever grows, so an edge
        # whose element was covered at chunk start is a guaranteed no-op
        # and can be skipped in bulk.
        covered_mask = np.zeros(n, dtype=bool)

        max_level_reached = 0
        inclusion_events = 0

        reader = stream.reader()
        while reader.remaining:
            set_ids, elements = reader.take_columns(_CHUNK)
            first_sets.observe_columns(set_ids, elements)
            interesting = np.nonzero(~covered_mask[elements])[0]
            if not len(interesting):
                continue
            for set_id, element in zip(
                set_ids[interesting].tolist(), elements[interesting].tolist()
            ):
                if element in covered:
                    continue
                if set_id in cover:
                    # An included set covers its elements from inclusion
                    # onward.
                    covered.add(element)
                    covered_mask[element] = True
                    certificate[element] = set_id
                    self._trace_count(obs_events.ELEMENT_COVERED)
                    continue

                degree = uncovered_degree.get(set_id, 0) + 1
                uncovered_degree[set_id] = degree

                if degree % level_width == 0:
                    level = degree // level_width
                    max_level_reached = max(max_level_reached, level)
                    self._trace(
                        obs_events.LEVEL_PROMOTED, set_id=set_id, level=level
                    )
                    p = self.scaling.kk_inclusion_probability(level, n, m)
                    if self._coin(p):
                        cover.add(set_id)
                        inclusion_events += 1
                        covered.add(element)
                        covered_mask[element] = True
                        certificate[element] = set_id
                        self._trace(
                            obs_events.SET_ADMITTED,
                            set_id=set_id,
                            level=level,
                            probability=p,
                        )
                        self._trace_count(obs_events.ELEMENT_COVERED)

        patched = first_sets.patch(certificate, cover, n)
        self._trace(obs_events.PATCH_APPLIED, patched=patched)
        meter.set_component("cover", words_for_set(len(cover)))

        return StreamingResult(
            cover=frozenset(cover),
            certificate=certificate,
            space=meter.report(),
            algorithm=self.name,
            diagnostics={
                "max_level_reached": float(max_level_reached),
                "inclusion_events": float(inclusion_events),
                "patched_elements": float(patched),
                "level_width": float(level_width),
            },
        )
