"""Shared primitive types for the :mod:`repro` package.

The whole library identifies sets and elements by dense non-negative
integers:

* **set ids** live in ``range(m)`` where ``m`` is the number of sets,
* **element ids** live in ``range(n)`` where ``n`` is the universe size.

An *edge* is a ``(set_id, element_id)`` pair, mirroring the paper's
stream of tuples ``(S, u)`` meaning "element ``u`` is contained in set
``S``".  Edges are plain tuples at runtime (cheap, hashable); the
:class:`Edge` NamedTuple is provided for readable construction and
pattern-matching in user code and tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Sequence, Tuple, Union

import random

import numpy as np

SetId = int
ElementId = int
EdgeTuple = Tuple[SetId, ElementId]


class Edge(NamedTuple):
    """A single stream item: element ``element`` is contained in set ``set_id``."""

    set_id: SetId
    element: ElementId


SeedLike = Union[int, None, random.Random, np.random.Generator]


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` derived from ``seed``.

    Accepts ``None`` (non-deterministic), an ``int`` seed, an existing
    :class:`random.Random` (returned as-is, shared state), or a numpy
    :class:`~numpy.random.Generator` (a fresh ``Random`` is seeded from
    it so downstream use stays deterministic).
    """
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, np.random.Generator):
        return random.Random(int(seed.integers(0, 2**63)))
    return random.Random(seed)


def make_numpy_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` derived from ``seed``."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, random.Random):
        return np.random.default_rng(seed.getrandbits(63))
    return np.random.default_rng(seed)


def as_edge(item: Union[Edge, EdgeTuple, Sequence[int]]) -> Edge:
    """Coerce ``item`` to an :class:`Edge`, validating arity and sign."""
    set_id, element = item  # raises for wrong arity
    set_id = int(set_id)
    element = int(element)
    if set_id < 0 or element < 0:
        raise ValueError(f"edge ids must be non-negative, got {(set_id, element)}")
    return Edge(set_id, element)


def iter_edges(items: Iterable[Union[Edge, EdgeTuple]]) -> Iterator[Edge]:
    """Yield each item of ``items`` coerced to an :class:`Edge`."""
    for item in items:
        yield as_edge(item)
