"""Heavy-tailed ("web-scale") instances with Zipfian set sizes.

Practical set-cover corpora (web crawls, topic coverage [22], the
ALENEX'21 study [5]) have a few huge sets and many tiny ones.  This
module generates such workloads: set sizes follow a (truncated) Zipf
law and element popularity is skewed too, so both sides of the
incidence graph are heavy-tailed.  Used by the ``practice`` experiment
that mirrors the paper's Section 1.3 remarks.
"""

from __future__ import annotations

import math
from typing import List, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.streaming.instance import SetCoverInstance
from repro.types import SeedLike, make_numpy_rng


def zipf_instance(
    n: int,
    m: int,
    exponent: float = 1.5,
    max_set_fraction: float = 0.2,
    element_skew: float = 0.8,
    seed: SeedLike = None,
    name: str = "",
) -> SetCoverInstance:
    """Instance with Zipf(``exponent``) set sizes and skewed elements.

    Parameters
    ----------
    n, m:
        Universe size and number of sets.
    exponent:
        Zipf exponent for set sizes (> 1; larger = lighter tail).
    max_set_fraction:
        Cap on a single set's size as a fraction of ``n``.
    element_skew:
        Zipf-like exponent for element popularity; 0 = uniform.
    """
    if exponent <= 1.0:
        raise ConfigurationError(f"exponent must be > 1, got {exponent}")
    if not 0.0 < max_set_fraction <= 1.0:
        raise ConfigurationError(
            f"max_set_fraction must be in (0, 1], got {max_set_fraction}"
        )
    if element_skew < 0.0:
        raise ConfigurationError(
            f"element_skew must be >= 0, got {element_skew}"
        )
    rng = make_numpy_rng(seed)
    max_size = max(1, int(max_set_fraction * n))

    # Truncated Zipf sizes: rank r gets size proportional to r^-exponent.
    ranks = np.arange(1, m + 1, dtype=float)
    raw = ranks**-exponent
    sizes = np.maximum(1, np.minimum(max_size, (raw / raw[0] * max_size))).astype(int)
    rng.shuffle(sizes)

    # Element popularity weights ~ rank^-skew (rank order randomised).
    weights = np.arange(1, n + 1, dtype=float) ** -element_skew
    rng.shuffle(weights)
    probabilities = weights / weights.sum()

    sets: List[Set[int]] = []
    for size in sizes:
        size = int(min(size, n))
        members = rng.choice(n, size=size, replace=False, p=probabilities)
        sets.append(set(int(u) for u in members))

    _patch_feasibility(sets, n, rng)
    return SetCoverInstance(
        n,
        sets,
        name=name or f"zipf(n={n},m={m},s={exponent:g})",
    )


def _patch_feasibility(sets: List[Set[int]], n: int, rng) -> None:
    """Add uncovered elements to random sets (heavy tails leave gaps)."""
    covered: Set[int] = set()
    for members in sets:
        covered.update(members)
    for u in range(n):
        if u not in covered:
            sets[int(rng.integers(0, len(sets)))].add(u)


def blogwatch_instance(
    n_topics: int,
    n_blogs: int,
    posts_per_blog: int = 20,
    topic_skew: float = 1.2,
    seed: SeedLike = None,
) -> SetCoverInstance:
    """A "multi-topic blog-watch" workload in the spirit of [22].

    Each blog (set) covers the topics (elements) of its posts; topic
    popularity is Zipf-distributed, so mainstream topics appear in many
    blogs while niche topics are covered by few.  Streaming a blog's
    posts over time is the natural edge-arrival order for this workload.
    """
    if posts_per_blog < 1:
        raise ConfigurationError(
            f"posts_per_blog must be >= 1, got {posts_per_blog}"
        )
    rng = make_numpy_rng(seed)
    weights = np.arange(1, n_topics + 1, dtype=float) ** -max(topic_skew, 0.0)
    rng.shuffle(weights)
    probabilities = weights / weights.sum()
    sets: List[Set[int]] = []
    for _ in range(n_blogs):
        topics = rng.choice(
            n_topics,
            size=min(posts_per_blog, n_topics),
            replace=True,
            p=probabilities,
        )
        sets.append(set(int(t) for t in topics))
    _patch_feasibility(sets, n_topics, rng)
    return SetCoverInstance(
        n_topics,
        sets,
        name=f"blogwatch(topics={n_topics},blogs={n_blogs})",
    )
