"""Workload generators: random, planted, heavy-tailed, graph, and hard.

All generators take explicit seeds and return feasible
:class:`~repro.streaming.instance.SetCoverInstance` objects (or
wrappers that also carry the planted optimum).
"""

from repro.generators.dominating_set import (
    gnp_dominating_set,
    preferential_attachment_dominating_set,
    star_forest_dominating_set,
)
from repro.generators.hard import (
    NeedleInstance,
    layered_hard_instance,
    needle_in_haystack,
)
from repro.generators.planted import (
    PlantedInstance,
    disjoint_blocks_with_noise,
    planted_partition_instance,
)
from repro.generators.random_instances import (
    fixed_size_instance,
    quadratic_family,
    two_tier_instance,
    uniform_instance,
)
from repro.generators.zipf import blogwatch_instance, zipf_instance

__all__ = [
    "uniform_instance",
    "fixed_size_instance",
    "quadratic_family",
    "two_tier_instance",
    "PlantedInstance",
    "planted_partition_instance",
    "disjoint_blocks_with_noise",
    "zipf_instance",
    "blogwatch_instance",
    "gnp_dominating_set",
    "star_forest_dominating_set",
    "preferential_attachment_dominating_set",
    "NeedleInstance",
    "needle_in_haystack",
    "layered_hard_instance",
]
