"""Instances with a *planted* optimal cover of known size.

Measuring approximation ratios needs a handle on OPT.  A planted
instance partitions the universe into ``opt_size`` blocks, makes each
block one "planted" set (so the planted sets are an exact cover of size
``opt_size``), and then adds ``m - opt_size`` decoy sets that are random
subsets.  OPT is therefore at most ``opt_size`` (and usually exactly
that, since decoys are small or overlapping); every experiment that
reports a ratio uses these instances or an exact solver.

The planted sets' ids are randomly interleaved with the decoys so that
algorithms cannot exploit id order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.streaming.instance import SetCoverInstance
from repro.types import SeedLike, make_rng


@dataclass(frozen=True)
class PlantedInstance:
    """A set-cover instance together with its planted optimum."""

    instance: SetCoverInstance
    planted_sets: Tuple[int, ...]

    @property
    def opt_upper_bound(self) -> int:
        """Size of the planted cover (an upper bound on OPT)."""
        return len(self.planted_sets)


def planted_partition_instance(
    n: int,
    m: int,
    opt_size: int,
    decoy_size: Optional[int] = None,
    seed: SeedLike = None,
    name: str = "",
) -> PlantedInstance:
    """Universe split into ``opt_size`` planted blocks plus random decoys.

    Parameters
    ----------
    n, m:
        Universe size and total number of sets (``m >= opt_size``).
    opt_size:
        Number of planted sets; they partition the universe so they are
        a cover of exactly this size.
    decoy_size:
        Size of each decoy set (default: ``n // opt_size``, matching the
        planted block size so decoys are individually as attractive).
    seed:
        RNG seed; also controls the id interleaving.
    """
    if opt_size < 1:
        raise ConfigurationError(f"opt_size must be >= 1, got {opt_size}")
    if opt_size > n:
        raise ConfigurationError(
            f"opt_size={opt_size} cannot exceed universe size n={n}"
        )
    if m < opt_size:
        raise ConfigurationError(
            f"m={m} must be at least opt_size={opt_size}"
        )
    rng = make_rng(seed)

    elements = list(range(n))
    rng.shuffle(elements)
    block_size = math.ceil(n / opt_size)
    blocks: List[Set[int]] = [
        set(elements[start : start + block_size])
        for start in range(0, n, block_size)
    ]
    # Rounding can produce fewer than opt_size non-empty blocks; split
    # the largest blocks until the count is exact.
    while len(blocks) < opt_size:
        blocks.sort(key=len, reverse=True)
        largest = sorted(blocks[0])
        half = len(largest) // 2
        if half == 0:
            raise ConfigurationError(
                f"cannot plant {opt_size} non-empty blocks in a universe of {n}"
            )
        blocks[0] = set(largest[:half])
        blocks.append(set(largest[half:]))

    if decoy_size is None:
        decoy_size = max(1, n // opt_size)
    decoy_size = min(decoy_size, n)
    universe = list(range(n))
    decoys: List[Set[int]] = [
        set(rng.sample(universe, decoy_size)) for _ in range(m - opt_size)
    ]

    all_sets: List[Set[int]] = blocks + decoys
    order = list(range(m))
    rng.shuffle(order)
    shuffled = [all_sets[i] for i in order]
    planted_ids = tuple(sorted(order.index(i) for i in range(opt_size)))

    instance = SetCoverInstance(
        n,
        shuffled,
        name=name or f"planted(n={n},m={m},opt={opt_size})",
    )
    return PlantedInstance(instance=instance, planted_sets=planted_ids)


def disjoint_blocks_with_noise(
    n: int,
    opt_size: int,
    decoys_per_block: int,
    noise_overlap: float = 0.5,
    seed: SeedLike = None,
) -> PlantedInstance:
    """Planted cover plus decoys that each straddle two planted blocks.

    The decoys are engineered to *look* useful in a stream prefix (they
    overlap ``noise_overlap`` of two different blocks) while being
    strictly worse than the planted sets — a workload on which greedy
    approaches pay and the probabilistic inclusion rules shine.
    """
    if not 0.0 < noise_overlap <= 1.0:
        raise ConfigurationError(
            f"noise_overlap must be in (0, 1], got {noise_overlap}"
        )
    rng = make_rng(seed)
    base = planted_partition_instance(
        n, opt_size, opt_size, seed=rng, name="blocks-base"
    )
    blocks = [
        sorted(base.instance.set_members(s)) for s in base.planted_sets
    ]
    decoys: List[Set[int]] = []
    for b, block in enumerate(blocks):
        other = blocks[(b + 1) % len(blocks)]
        take_here = max(1, int(noise_overlap * len(block)))
        take_there = max(1, int(noise_overlap * len(other)))
        for _ in range(decoys_per_block):
            decoy = set(rng.sample(block, min(take_here, len(block))))
            decoy.update(rng.sample(other, min(take_there, len(other))))
            decoys.append(decoy)

    all_sets = [set(block) for block in blocks] + decoys
    order = list(range(len(all_sets)))
    rng.shuffle(order)
    shuffled = [all_sets[i] for i in order]
    planted_ids = tuple(sorted(order.index(i) for i in range(opt_size)))
    instance = SetCoverInstance(
        n,
        shuffled,
        name=f"blocks+noise(n={n},opt={opt_size},decoys={len(decoys)})",
    )
    return PlantedInstance(instance=instance, planted_sets=planted_ids)
