"""Hard instances derived from the lower-bound machinery.

These workloads stress streaming algorithms in exactly the way the
Theorem-2 construction does: one "golden" large set hides among many
small partial sets with tiny pairwise intersections, so an algorithm
that cannot remember enough per-set signal is forced into a cover of
Ω̃(√(nt)) sets where OPT is 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.errors import ConfigurationError
from repro.lowerbound.family import PartitionedFamily, build_family
from repro.streaming.instance import SetCoverInstance
from repro.types import SeedLike, make_rng


@dataclass(frozen=True)
class NeedleInstance:
    """A hard instance with a planted 2-set optimum.

    ``needle_set`` is the full Lemma-1 set ``T_j`` present as one set;
    ``complement_set`` is ``[n] \\ T_j``.  Together they are a cover of
    size 2; every other set is a small partial set that intersects the
    needle in O(log n) elements.
    """

    instance: SetCoverInstance
    needle_set: int
    complement_set: int

    @property
    def opt_upper_bound(self) -> int:
        """OPT is at most 2 by construction."""
        return 2


def needle_in_haystack(
    n: int,
    num_decoys: int,
    t: int = 4,
    seed: SeedLike = None,
) -> NeedleInstance:
    """Build the "needle" workload from a sampled Lemma-1 family.

    Parameters
    ----------
    n:
        Universe size.
    num_decoys:
        Number of small partial sets surrounding the needle.
    t:
        Partition arity of the underlying family (controls the needle
        size ``√(n·t)`` versus decoy size ``√(n/t)``).
    """
    if num_decoys < 1:
        raise ConfigurationError("need at least one decoy")
    rng = make_rng(seed)
    # Family of num_decoys//t + 2 sets: one supplies the needle, the
    # rest supply decoy parts.
    family_m = max(2, num_decoys // t + 2)
    family = build_family(n, family_m, t, seed=rng)

    needle_index = 0
    sets: List[Set[int]] = [set(family.full_set(needle_index))]
    decoys_added = 0
    for i in range(1, family.m):
        for r in range(family.t):
            if decoys_added >= num_decoys:
                break
            sets.append(set(family.parts[i][r]))
            decoys_added += 1
    complement = set(family.complement(needle_index))
    # Feasibility: any element in neither the needle/decoys nor the
    # complement is impossible by construction (complement covers all of
    # [n] minus the needle, and the needle covers itself).
    sets.append(complement)

    order = list(range(len(sets)))
    rng.shuffle(order)
    shuffled = [sets[i] for i in order]
    needle_id = order.index(0)
    complement_id = order.index(len(sets) - 1)
    instance = SetCoverInstance(
        n,
        shuffled,
        name=f"needle(n={n},decoys={decoys_added},t={t})",
    )
    return NeedleInstance(
        instance=instance, needle_set=needle_id, complement_set=complement_id
    )


def layered_hard_instance(
    n: int, layers: int, sets_per_layer: int, seed: SeedLike = None
) -> SetCoverInstance:
    """Geometrically shrinking coverage layers.

    Layer ``ℓ`` sets cover ~``n/2ˡ`` random elements; a good cover uses
    one set per layer (plus patching), but prefix-greedy strategies
    drown in layer-0 sets.  Exercises the level structure of the KK and
    Algorithm-2 inclusion rules across many levels.
    """
    if layers < 1 or sets_per_layer < 1:
        raise ConfigurationError("layers and sets_per_layer must be >= 1")
    rng = make_rng(seed)
    universe = list(range(n))
    sets: List[Set[int]] = []
    for layer in range(layers):
        size = max(1, n >> layer)
        for _ in range(sets_per_layer):
            sets.append(set(rng.sample(universe, min(size, n))))
    covered: Set[int] = set()
    for members in sets:
        covered.update(members)
    for u in range(n):
        if u not in covered:
            sets[rng.randrange(len(sets))].add(u)
    return SetCoverInstance(
        n, sets, name=f"layered(n={n},layers={layers},per={sets_per_layer})"
    )
