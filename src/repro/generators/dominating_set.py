"""Dominating-set workloads: the ``m = n`` special case of edge arrival.

Khanna–Konrad [19] studied Dominating Set in graph streams, which is
edge-arrival Set Cover with one set (the closed neighbourhood) per
vertex.  These generators build graphs and encode them through
:func:`repro.streaming.bipartite.dominating_set_instance`, giving the
workloads that originally motivated the KK-algorithm.
"""

from __future__ import annotations

import math
from typing import List, Set

from repro.errors import ConfigurationError
from repro.streaming.bipartite import dominating_set_instance
from repro.streaming.instance import SetCoverInstance
from repro.types import SeedLike, make_rng


def gnp_dominating_set(
    n: int, p: float, seed: SeedLike = None
) -> SetCoverInstance:
    """Dominating Set on an Erdős–Rényi G(n, p) graph."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        for w in range(v + 1, n):
            if rng.random() < p:
                adjacency[v].append(w)
    return dominating_set_instance(adjacency, name=f"gnp-domset(n={n},p={p:g})")


def star_forest_dominating_set(
    n_stars: int, leaves_per_star: int, seed: SeedLike = None
) -> SetCoverInstance:
    """Disjoint stars: OPT is exactly the number of stars.

    The star centres dominate everything, so the optimal dominating set
    has size ``n_stars`` — a planted optimum for ratio measurements on
    graph workloads.
    """
    if n_stars < 1 or leaves_per_star < 1:
        raise ConfigurationError("need at least one star and one leaf per star")
    n = n_stars * (leaves_per_star + 1)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for star in range(n_stars):
        centre = star * (leaves_per_star + 1)
        for leaf_offset in range(1, leaves_per_star + 1):
            adjacency[centre].append(centre + leaf_offset)
    return dominating_set_instance(
        adjacency, name=f"stars(centres={n_stars},leaves={leaves_per_star})"
    )


def preferential_attachment_dominating_set(
    n: int, attach: int = 2, seed: SeedLike = None
) -> SetCoverInstance:
    """Dominating Set on a Barabási–Albert style scale-free graph.

    Each new vertex attaches to ``attach`` existing vertices chosen
    with probability proportional to (1 + degree); hubs emerge, making
    small dominating sets possible and the workload heavy-tailed.
    """
    if n < 2:
        raise ConfigurationError(f"need n >= 2 vertices, got {n}")
    if attach < 1:
        raise ConfigurationError(f"attach must be >= 1, got {attach}")
    rng = make_rng(seed)
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    degree = [0] * n
    # Repeated-vertex sampling list implements the degree-proportional draw.
    targets: List[int] = [0]
    for v in range(1, n):
        chosen: Set[int] = set()
        k = min(attach, v)
        while len(chosen) < k:
            chosen.add(targets[rng.randrange(len(targets))])
        for w in chosen:
            adjacency[v].add(w)
            adjacency[w].add(v)
            degree[v] += 1
            degree[w] += 1
            targets.extend((v, w))
        targets.append(v)
    return dominating_set_instance(
        [sorted(neigh) for neigh in adjacency],
        name=f"scale-free-domset(n={n},attach={attach})",
    )
