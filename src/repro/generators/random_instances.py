"""Uniform random set-cover instances.

Two classic random models:

* :func:`uniform_instance` — every (set, element) incidence present
  independently with probability ``p`` (an Erdős–Rényi bipartite graph).
* :func:`fixed_size_instance` — each set is a uniform random subset of a
  given size.

Both guarantee feasibility by post-passing over the universe and
injecting each uncovered element into a random set (documented, and
rarely triggered at sensible densities).
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

from repro.errors import ConfigurationError
from repro.streaming.instance import SetCoverInstance
from repro.types import SeedLike, make_rng


def uniform_instance(
    n: int,
    m: int,
    p: float,
    seed: SeedLike = None,
    name: str = "",
) -> SetCoverInstance:
    """Instance where element ``u ∈ S_i`` independently with probability ``p``.

    Feasibility fix-up: any element left in no set is added to one
    uniformly random set.
    """
    if not 0.0 < p <= 1.0:
        raise ConfigurationError(f"p must be in (0, 1], got {p}")
    rng = make_rng(seed)
    sets: List[Set[int]] = [set() for _ in range(m)]
    # Sample per set via geometric skips: O(p*n*m) expected work instead
    # of n*m coin flips.
    for members in sets:
        u = _first_success(rng, p)
        while u < n:
            members.add(u)
            u += 1 + _first_success(rng, p)
    _ensure_feasible(sets, n, rng)
    return SetCoverInstance(
        n, sets, name=name or f"uniform(n={n},m={m},p={p:g})"
    )


def fixed_size_instance(
    n: int,
    m: int,
    set_size: int,
    seed: SeedLike = None,
    name: str = "",
) -> SetCoverInstance:
    """Instance of ``m`` uniform random subsets of size ``set_size``."""
    if not 1 <= set_size <= n:
        raise ConfigurationError(
            f"set_size must be in [1, n={n}], got {set_size}"
        )
    rng = make_rng(seed)
    universe = list(range(n))
    sets: List[Set[int]] = [set(rng.sample(universe, set_size)) for _ in range(m)]
    _ensure_feasible(sets, n, rng)
    return SetCoverInstance(
        n, sets, name=name or f"fixed-size(n={n},m={m},k={set_size})"
    )


def quadratic_family(
    n: int,
    set_size: Optional[int] = None,
    density: float = 1.0,
    seed: SeedLike = None,
) -> SetCoverInstance:
    """An ``m = Θ(n²)`` random instance — the regime of Theorem 3.

    Theorem 3 requires ``m = Ω̃(n²)``; this helper builds
    ``m = ceil(density · n²)`` sets of size ``set_size`` (default √n,
    so a cover of ~√n·polylog sets exists whp and OPT is small).
    """
    if density <= 0:
        raise ConfigurationError(f"density must be positive, got {density}")
    m = max(1, math.ceil(density * n * n))
    if set_size is None:
        set_size = max(1, int(math.isqrt(n)))
    return fixed_size_instance(
        n, m, set_size, seed=seed, name=f"quadratic(n={n},m={m},k={set_size})"
    )


def two_tier_instance(
    n: int,
    num_small: int,
    num_big: int,
    small_size: int = 5,
    big_size: Optional[int] = None,
    seed: SeedLike = None,
) -> SetCoverInstance:
    """Many tiny decoy sets plus a few mid-size "relevant" sets.

    Designed to exercise Algorithm 1's inner machinery: the big sets
    carry coverage ~Θ̃(√n)-to-Θ(n) (default ``32·√n``) so they produce a
    counter signal, while the tiny sets inflate ``m`` so the epoch-0
    sample (≈ √n·log m sets, almost all tiny) cannot cover the universe
    on its own.  The special-set detection of A(1..K) has to find the
    big sets mid-stream.
    """
    if num_small < 1 or num_big < 1:
        raise ConfigurationError("need at least one small and one big set")
    rng = make_rng(seed)
    if big_size is None:
        big_size = min(n, 32 * max(1, math.isqrt(n)))
    big_size = min(big_size, n)
    small_size = min(max(1, small_size), n)
    universe = list(range(n))
    sets: List[Set[int]] = []
    for _ in range(num_small):
        sets.append(set(rng.sample(universe, small_size)))
    for _ in range(num_big):
        sets.append(set(rng.sample(universe, big_size)))
    rng.shuffle(sets)
    _ensure_feasible(sets, n, rng)
    return SetCoverInstance(
        n,
        sets,
        name=(
            f"two-tier(n={n},small={num_small}x{small_size},"
            f"big={num_big}x{big_size})"
        ),
    )


def _first_success(rng, p: float) -> int:
    """Number of failures before the first success of a Bernoulli(p)."""
    if p >= 1.0:
        return 0
    # Inverse-transform sample of the geometric distribution.
    u = rng.random()
    return int(math.log(max(u, 1e-300)) / math.log(1.0 - p))


def _ensure_feasible(sets: List[Set[int]], n: int, rng) -> None:
    """Add each uncovered element to one random set (in place)."""
    covered: Set[int] = set()
    for members in sets:
        covered.update(members)
    for u in range(n):
        if u not in covered:
            sets[rng.randrange(len(sets))].add(u)
