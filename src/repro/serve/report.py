"""BENCH_serve.json (schema 1): the service's measured load surface.

One report holds a grid of :class:`~repro.serve.loadgen.LoadCellReport`
cells — each one (QPS, concurrency) pair replaying the *same* seeded
schedule — plus the server configuration they ran against, so a reader
can see how latency percentiles and admission behaviour move as offered
load grows without wondering whether the workload changed underneath.

Written by ``scripts/run_serve_bench.py`` and uploaded by CI's serve
job; rendered for humans with :func:`render_serve_report`.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro.analysis.tables import render_table
from repro.serve.loadgen import LoadCellReport

#: Bump when the cell or envelope shape changes incompatibly.
SERVE_BENCH_SCHEMA = 1


def serve_report_payload(
    cells: Sequence[LoadCellReport],
    server_config: Dict[str, Any],
    workload: Dict[str, Any],
) -> Dict[str, Any]:
    """Assemble the schema-1 envelope from measured cells."""
    return {
        "schema": SERVE_BENCH_SCHEMA,
        "description": (
            "Serve-mode load benchmark; see scripts/run_serve_bench.py. "
            "Each cell replays one seeded mixed workload (solve / "
            "distribute / chaos) at a target QPS and client concurrency "
            "against a live repro.serve server, and records nearest-rank "
            "latency percentiles, achieved throughput, outcome counts "
            "(ok / degraded / admission rejections / remote errors), and "
            "the server's pool-utilization snapshot. 'invalid' must be 0 "
            "in every cell: a served cover that fails verification is a "
            "correctness bug, not a load artifact."
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "server": dict(server_config),
        "workload": dict(workload),
        "cells": [cell.as_dict() for cell in cells],
    }


def write_serve_report(
    path: Path,
    cells: Sequence[LoadCellReport],
    server_config: Dict[str, Any],
    workload: Dict[str, Any],
) -> Dict[str, Any]:
    """Write ``BENCH_serve.json``; returns the payload written."""
    payload = serve_report_payload(cells, server_config, workload)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return payload


def load_serve_report(path: Path) -> Dict[str, Any]:
    """Read a ``BENCH_serve.json`` file (empty dict if absent)."""
    if not path.exists():
        return {}
    return json.loads(path.read_text(encoding="utf-8"))


def render_serve_report(payload: Dict[str, Any]) -> str:
    """Human-readable table of the report's cells."""
    headers = [
        "qps",
        "conc",
        "reqs",
        "ok",
        "degraded",
        "admitted-rej",
        "errors",
        "invalid",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "achieved qps",
    ]
    rows: List[List[object]] = []
    for cell in payload.get("cells", []):
        latency = cell.get("latency", {})
        rows.append(
            [
                cell.get("qps", 0.0),
                cell.get("concurrency", 0),
                cell.get("requests", 0),
                cell.get("ok", 0),
                cell.get("degraded", 0),
                cell.get("admission_rejections", 0),
                cell.get("remote_errors", 0) + cell.get("transport_errors", 0),
                cell.get("invalid", 0),
                latency.get("p50_ms", 0.0),
                latency.get("p95_ms", 0.0),
                latency.get("p99_ms", 0.0),
                cell.get("achieved_qps", 0.0),
            ]
        )
    return render_table(headers, rows, title="serve load surface")
