"""The long-running set-cover service: asyncio server with admission.

:class:`SetCoverServer` listens on localhost TCP, speaks the framed
protocol of :mod:`repro.serve.protocol`, and dispatches requests
against a shared :class:`~repro.serve.registry.InstanceRegistry`.
Compute requests (``solve`` / ``distribute`` / ``summary``) first
lease their estimated words from the global
:class:`~repro.serve.admission.ResourcePool` — queueing or failing
with a typed :class:`~repro.errors.AdmissionError` — then run the
*batch* code path (:func:`~repro.algorithms.make_algorithm`,
:func:`~repro.distributed.executor.run_distributed`) on a worker
thread, so a served solve is byte-identical to its CLI twin
(``scripts/check_serve_parity.py`` gates this).  Control requests
(``ping`` / ``load`` / ``list`` / ``stats`` / ...) bypass admission and
stay answerable while the pool is saturated.

Connection model: one asyncio task per connection, requests on a
connection processed in order (pipelining across *connections* is the
concurrency story — each client holds its own connection).  Errors a
handler raises become typed error responses; the connection, and the
server, stay up.

Graceful shutdown (the drain contract, tested by
``tests/test_serve_server.py``): stop accepting, reject queued
admissions with ``reason="shutting-down"``, let every in-flight request
finish and answer, then close lingering connections.  New compute
requests arriving on open connections during the drain are rejected
with the same typed error.  After :meth:`shutdown` returns no acceptor
task, worker thread, or shared-memory segment created on behalf of a
request remains live.

A sandbox that forbids binding raises the typed
:class:`~repro.errors.TransportError` from :meth:`start`, which the
parity gate, the bench, and CI treat as a graceful skip — the same
contract as the PR-8 socket transport.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.algorithms import make_algorithm, registered_algorithms
from repro.distributed.backends import registered_backends
from repro.distributed.comm import make_comm_budget
from repro.distributed.coordinator import registered_coordinators
from repro.distributed.executor import run_distributed
from repro.distributed.router import STRATEGIES
from repro.distributed.transport import Codec, make_codec
from repro.errors import (
    AdmissionError,
    InvalidParameterError,
    ReproError,
    TransportError,
)
from repro.faults.injectors import FAULT_KINDS, FaultSpec, inject
from repro.faults.resilient import POLICIES, ResilientAlgorithm
from repro.obs.tracer import RecordingTracer, TraceCollector, events_to_jsonl
from repro.obs.summary import summarize
from repro.serve.admission import REJECT_SHUTTING_DOWN, ResourcePool
from repro.serve.protocol import (
    COMPUTE_KINDS,
    REQUEST_KINDS,
    error_response,
    ok_response,
    read_frame_async,
    write_frame_async,
)
from repro.serve.registry import InstanceRegistry, LoadedInstance
from repro.streaming.orders import ORDER_REGISTRY, make_order
from repro.streaming.stream import stream_of
from repro._version import __version__

#: Upper bound on the test/ops ``delay_ms`` solve knob — it exists to
#: make drain and queueing behaviour observable, not to sleep servers.
MAX_DELAY_MS = 5_000


@dataclass
class ServeConfig:
    """Tunables for one server; defaults suit tests and local use."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Global pool capacities, in words (the admission currency).
    space_pool_words: int = 200_000
    comm_pool_words: int = 100_000
    #: Queued-admission bounds.
    max_queue: int = 16
    queue_timeout: Optional[float] = 30.0
    #: Backend/parallelism for distribute requests (operational).
    backend: str = "thread"
    max_workers: int = 1
    #: Wire codec name (None = msgpack-or-pickle default).
    codec: Optional[str] = None
    #: Seconds shutdown waits for in-flight requests before force-close.
    drain_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.backend not in registered_backends():
            raise InvalidParameterError(
                "backend", self.backend,
                "known backends: " + ", ".join(registered_backends()),
            )
        if self.max_workers < 1:
            raise InvalidParameterError(
                "max_workers", self.max_workers, "need at least 1"
            )
        if self.drain_timeout <= 0:
            raise InvalidParameterError(
                "drain_timeout", self.drain_timeout, "must be positive"
            )


class SetCoverServer:
    """One service instance; start on an event loop, stop gracefully."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        registry: Optional[InstanceRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.registry = registry if registry is not None else InstanceRegistry()
        self.pool = ResourcePool(
            space_words=self.config.space_pool_words,
            comm_words=self.config.comm_pool_words,
            max_queue=self.config.max_queue,
            queue_timeout=self.config.queue_timeout,
        )
        self._codec: Codec = make_codec(self.config.codec)
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._draining = False
        self._stopped = False
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._started_at = 0.0
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind and begin accepting; typed error where binding is denied."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown_requested = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port
            )
        except OSError as exc:
            raise TransportError(
                f"serve cannot bind on {self.config.host}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def wait_shutdown(self) -> None:
        """Block until a client ``shutdown`` request (or local trigger)."""
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()

    def request_shutdown(self) -> None:
        """Trigger :meth:`wait_shutdown` (callable from handlers/signals)."""
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def shutdown(self) -> None:
        """Drain and stop: the graceful-shutdown contract (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Queued admissions first: they must observe a typed rejection,
        # and their handlers then count down the in-flight drain below.
        await self.pool.shutdown()
        if self._idle is not None:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                pass  # force-close below; slow requests lose their reply
        for writer in list(self._connections):
            writer.close()
        self.request_shutdown()

    # -- connection handling ---------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_frame_async(reader)
                except (TransportError, ConnectionError, OSError):
                    break  # malformed or torn connection; drop it
                if request is None:
                    break  # clean EOF
                response = await self._dispatch(request)
                try:
                    await write_frame_async(writer, self._codec, response)
                except (ConnectionError, OSError):
                    break
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _dispatch(self, request: Any) -> Dict[str, Any]:
        """Route one request; every failure becomes a typed error reply."""
        if not isinstance(request, dict):
            return error_response(
                0,
                InvalidParameterError(
                    "request", type(request).__name__,
                    "request payload must be a dict",
                ),
            )
        request_id = int(request.get("id", 0))
        kind = request.get("kind")
        self._enter()
        try:
            if kind not in REQUEST_KINDS:
                raise InvalidParameterError(
                    "kind", kind, "known request kinds: "
                    + ", ".join(REQUEST_KINDS)
                )
            self.counters[kind] = self.counters.get(kind, 0) + 1
            if kind in COMPUTE_KINDS and self._draining:
                raise AdmissionError(
                    REJECT_SHUTTING_DOWN, context=f"serve {kind}"
                )
            handler = getattr(self, f"_handle_{kind}")
            result = await handler(request)
            return ok_response(request_id, result)
        except ReproError as error:
            self.counters["errors"] = self.counters.get("errors", 0) + 1
            return error_response(request_id, error)
        except Exception as error:  # noqa: BLE001 — the server must stay up
            self.counters["errors"] = self.counters.get("errors", 0) + 1
            return error_response(request_id, error)
        finally:
            self._exit()

    def _enter(self) -> None:
        self._inflight += 1
        if self._idle is not None:
            self._idle.clear()

    def _exit(self) -> None:
        self._inflight -= 1
        if self._inflight == 0 and self._idle is not None:
            self._idle.set()

    # -- control handlers ------------------------------------------------

    async def _handle_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"server": "repro-serve", "version": __version__}

    async def _handle_load(self, request: Dict[str, Any]) -> Dict[str, Any]:
        entry = self.registry.load_text(
            str(request.get("name", "")), str(request.get("text", ""))
        )
        return entry.describe()

    async def _handle_unload(self, request: Dict[str, Any]) -> Dict[str, Any]:
        entry = self.registry.unload(str(request.get("name", "")))
        return {"unloaded": entry.name}

    async def _handle_list(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"instances": [e.describe() for e in self.registry.entries()]}

    async def _handle_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "draining": self._draining,
            "inflight": self._inflight,
            "instances": len(self.registry),
            "counters": dict(sorted(self.counters.items())),
            "pool": self.pool.stats().as_dict(),
        }

    async def _handle_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.request_shutdown()
        return {"stopping": True}

    # -- compute handlers (admission-controlled) -------------------------

    async def _with_lease(
        self, space_words: int, comm_words: int, context: str, fn
    ):
        """Lease → run on a worker thread → release; the request spine."""
        lease = await self.pool.lease(
            space_words=space_words, comm_words=comm_words, context=context
        )
        try:
            return await asyncio.to_thread(fn)
        finally:
            self.pool.release(lease)

    def _solve_params(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Validate the shared solve-shaped parameters with typed errors."""
        algorithm = str(request.get("algorithm", "kk"))
        if algorithm not in registered_algorithms():
            raise InvalidParameterError(
                "algorithm", algorithm,
                "known algorithms: " + ", ".join(registered_algorithms()),
            )
        order = str(request.get("order", "canonical"))
        if order not in ORDER_REGISTRY:
            raise InvalidParameterError(
                "order", order,
                "known orders: " + ", ".join(sorted(ORDER_REGISTRY)),
            )
        return {
            "entry": self.registry.get(str(request.get("instance", ""))),
            "algorithm": algorithm,
            "order": order,
            "seed": int(request.get("seed", 0)),
            "alpha": request.get("alpha"),
        }

    async def _handle_solve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        params = self._solve_params(request)
        entry: LoadedInstance = params["entry"]
        include_trace = bool(request.get("include_trace", False))
        delay_ms = min(max(int(request.get("delay_ms", 0)), 0), MAX_DELAY_MS)
        fault_kind = request.get("fault_kind")
        if fault_kind is not None and fault_kind not in FAULT_KINDS:
            raise InvalidParameterError(
                "fault_kind", fault_kind,
                "known fault kinds: " + ", ".join(FAULT_KINDS),
            )
        fault_rate = float(request.get("fault_rate", 0.1))
        policy = str(request.get("policy", "best_effort"))
        if policy not in POLICIES:
            raise InvalidParameterError(
                "policy", policy, "known policies: " + ", ".join(POLICIES)
            )

        def work() -> Dict[str, Any]:
            if delay_ms:
                time.sleep(delay_ms / 1000.0)
            started = time.perf_counter()
            order = make_order(params["order"], seed=params["seed"])
            stream = stream_of(entry.instance, order)
            tracer = RecordingTracer() if include_trace else None
            algorithm = make_algorithm(
                params["algorithm"],
                entry.instance,
                seed=params["seed"],
                alpha=params["alpha"],
                tracer=tracer,
            )
            response: Dict[str, Any] = {
                "instance": entry.name,
                "algorithm": params["algorithm"],
                "order": params["order"],
                "seed": params["seed"],
            }
            if fault_kind is not None:
                faulty = inject(
                    stream,
                    [
                        FaultSpec(
                            kind=str(fault_kind),
                            rate=fault_rate,
                            seed=params["seed"],
                        )
                    ],
                )
                outcome = ResilientAlgorithm(algorithm, policy=policy).run(
                    faulty
                )
                result = outcome.result
                if result is not None and outcome.degradation is None:
                    result.verify(entry.instance)
                response.update(
                    {
                        "outcome": "ok" if outcome.ok else "degraded",
                        "degraded": not outcome.ok,
                        "cover": tuple(
                            sorted(result.cover) if result is not None else ()
                        ),
                        "cover_size": (
                            len(result.cover) if result is not None else 0
                        ),
                        "certificate": tuple(
                            sorted(result.certificate.items())
                            if result is not None
                            else ()
                        ),
                        "peak_words": (
                            result.space.peak_words if result is not None else 0
                        ),
                        "valid": outcome.ok,
                    }
                )
            else:
                result = algorithm.run(stream)
                result.verify(entry.instance)
                response.update(
                    {
                        "outcome": "ok",
                        "degraded": False,
                        "cover": tuple(sorted(result.cover)),
                        "cover_size": len(result.cover),
                        "certificate": tuple(sorted(result.certificate.items())),
                        "peak_words": result.space.peak_words,
                        "valid": True,
                    }
                )
            if tracer is not None:
                tracer.finish()
                response["trace_jsonl"] = events_to_jsonl(tracer.events)
            response["elapsed_ms"] = (time.perf_counter() - started) * 1000.0
            return response

        return await self._with_lease(
            entry.estimated_solve_words, 0, "serve solve", work
        )

    async def _handle_summary(self, request: Dict[str, Any]) -> Dict[str, Any]:
        params = self._solve_params(request)
        entry: LoadedInstance = params["entry"]

        def work() -> Dict[str, Any]:
            order = make_order(params["order"], seed=params["seed"])
            stream = stream_of(entry.instance, order)
            tracer = RecordingTracer()
            algorithm = make_algorithm(
                params["algorithm"],
                entry.instance,
                seed=params["seed"],
                alpha=params["alpha"],
                tracer=tracer,
            )
            result = algorithm.run(stream)
            result.verify(entry.instance)
            events = tracer.finish()
            summary = summarize(events)
            return {
                "instance": entry.name,
                "algorithm": params["algorithm"],
                "order": params["order"],
                "seed": params["seed"],
                "cover_size": len(result.cover),
                "peak_words": result.space.peak_words,
                "trace_events": len(events),
                "summary_text": summary.render(),
            }

        return await self._with_lease(
            entry.estimated_solve_words, 0, "serve summary", work
        )

    async def _handle_distribute(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        params = self._solve_params(request)
        entry: LoadedInstance = params["entry"]
        workers = int(request.get("workers", 4))
        if workers < 1:
            raise InvalidParameterError(
                "workers", workers, "need at least 1 shard"
            )
        strategy = str(request.get("strategy", "by-set"))
        if strategy not in STRATEGIES:
            raise InvalidParameterError(
                "strategy", strategy,
                "known strategies: " + ", ".join(sorted(STRATEGIES)),
            )
        coordinator = str(request.get("coordinator", "chain"))
        if coordinator not in registered_coordinators():
            raise InvalidParameterError(
                "coordinator", coordinator,
                "known coordinators: " + ", ".join(registered_coordinators()),
            )
        budget = make_comm_budget(
            request.get("comm_budget"), context="serve distribute"
        )
        include_trace = bool(request.get("include_trace", False))
        comm_words = (
            budget.words
            if budget is not None
            else entry.estimated_distribute_comm_words(workers)
        )

        def work() -> Dict[str, Any]:
            started = time.perf_counter()
            order = make_order(params["order"], seed=params["seed"])
            collector = TraceCollector() if include_trace else None
            result = run_distributed(
                entry.instance,
                workers=workers,
                algorithm=params["algorithm"],
                strategy=strategy,
                coordinator=coordinator,
                order=order,
                seed=params["seed"],
                alpha=params["alpha"],
                max_workers=self.config.max_workers,
                comm_budget=budget,
                backend=self.config.backend,
                collector=collector,
            )
            result.verify(entry.instance)
            response: Dict[str, Any] = {
                "instance": entry.name,
                "algorithm": params["algorithm"],
                "order": params["order"],
                "seed": params["seed"],
                "workers": workers,
                "strategy": strategy,
                "coordinator": coordinator,
                "outcome": "ok",
                "degraded": False,
                "cover": tuple(sorted(result.cover)),
                "cover_size": result.cover_size,
                "certificate": tuple(sorted(result.certificate.items())),
                "total_comm_words": result.total_comm_words,
                "max_message_words": result.max_message_words,
                "messages": result.comm.num_messages,
                "per_link_words": dict(
                    sorted(result.comm.per_link_words.items())
                ),
                "valid": True,
            }
            if collector is not None:
                response["trace_jsonl"] = collector.to_jsonl()
            response["elapsed_ms"] = (time.perf_counter() - started) * 1000.0
            return response

        return await self._with_lease(
            entry.estimated_solve_words + 64 * workers,
            comm_words,
            "serve distribute",
            work,
        )


# -- threaded harness --------------------------------------------------------


@dataclass
class ServerHandle:
    """A server running on a background event-loop thread.

    The harness the CLI bench, the scripts, and the tests share: start
    with :func:`start_server_thread`, talk to ``host:port`` from any
    thread, and :meth:`stop` to drain and join.  Context-manager use
    stops on exit.
    """

    server: SetCoverServer
    loop: asyncio.AbstractEventLoop
    thread: threading.Thread
    host: str
    port: int
    _stopped: bool = field(default=False, repr=False)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown, then stop and join the loop thread."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        )
        try:
            future.result(timeout)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_server_thread(
    config: Optional[ServeConfig] = None,
    registry: Optional[InstanceRegistry] = None,
    start_timeout: float = 10.0,
) -> ServerHandle:
    """Run a :class:`SetCoverServer` on a daemon event-loop thread.

    Raises whatever :meth:`SetCoverServer.start` raised — notably the
    typed :class:`~repro.errors.TransportError` in bind-forbidden
    sandboxes, so callers can skip gracefully.
    """
    server = SetCoverServer(config=config, registry=registry)
    ready = threading.Event()
    box: Dict[str, object] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 — relayed to caller
            box["error"] = exc
            ready.set()
            loop.close()
            return
        box["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-serve-loop", daemon=True
    )
    thread.start()
    if not ready.wait(start_timeout):
        raise TransportError("serve event loop failed to start in time")
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    assert server.port is not None
    return ServerHandle(
        server=server,
        loop=box["loop"],  # type: ignore[assignment]
        thread=thread,
        host=server.config.host,
        port=server.port,
    )
