"""repro.serve — long-running set-cover service with admission control.

The service mode turns the batch library into a resident process: a
registry of loaded instances served over the PR-8 frame codec on
localhost TCP, with every compute request admission-controlled against
a global resource pool before it runs.  The load-bearing invariant is
*batch-twin parity*: a served solve or distribute runs exactly the code
its batch twin would (same order, same stream, same meters), and leases
are pure reservations — admission can delay or refuse a request, never
change its bytes.

Layers, bottom up:

- :mod:`repro.serve.protocol` — request/response payloads over frames,
  typed-error round-tripping;
- :mod:`repro.serve.admission` — the resource pool and its
  admitted / queued / rejected state machine;
- :mod:`repro.serve.registry` — named loaded instances plus admission
  estimates;
- :mod:`repro.serve.server` — the asyncio server, drain-on-shutdown;
- :mod:`repro.serve.client` — blocking client library (one connection,
  typed remote errors);
- :mod:`repro.serve.loadgen` / :mod:`repro.serve.report` — seeded
  mixed-workload load generator and the BENCH_serve.json schema.
"""

from repro.serve.admission import (
    Lease,
    PoolStats,
    REJECT_EXCEEDS_CAPACITY,
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
    REJECT_TIMED_OUT,
    ResourcePool,
)
from repro.serve.client import ServeClient
from repro.serve.loadgen import (
    DEFAULT_MIX,
    LatencySummary,
    LoadCellReport,
    WorkloadOp,
    build_schedule,
    run_load,
)
from repro.serve.registry import InstanceRegistry, LoadedInstance
from repro.serve.report import (
    SERVE_BENCH_SCHEMA,
    load_serve_report,
    render_serve_report,
    serve_report_payload,
    write_serve_report,
)
from repro.serve.server import (
    ServeConfig,
    ServerHandle,
    SetCoverServer,
    start_server_thread,
)

__all__ = [
    "DEFAULT_MIX",
    "InstanceRegistry",
    "LatencySummary",
    "Lease",
    "LoadCellReport",
    "LoadedInstance",
    "PoolStats",
    "REJECT_EXCEEDS_CAPACITY",
    "REJECT_QUEUE_FULL",
    "REJECT_SHUTTING_DOWN",
    "REJECT_TIMED_OUT",
    "ResourcePool",
    "SERVE_BENCH_SCHEMA",
    "ServeClient",
    "ServeConfig",
    "ServerHandle",
    "SetCoverServer",
    "WorkloadOp",
    "build_schedule",
    "load_serve_report",
    "render_serve_report",
    "run_load",
    "serve_report_payload",
    "start_server_thread",
    "write_serve_report",
]
