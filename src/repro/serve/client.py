"""Blocking client library for the set-cover service.

:class:`ServeClient` holds one TCP connection and issues framed
requests synchronously — request out, response in, in order.  Server
failures come back as the typed errors the protocol defines
(:class:`~repro.errors.AdmissionError` reconstructed with its full
retry-after context, everything else a
:class:`~repro.errors.RemoteServeError` tagged with the original type
name); connection-level failures are
:class:`~repro.errors.TransportError`.  One client per thread — the
load generator gives each worker its own connection, which is also the
server's concurrency model.

``max_retries`` opts a client into honouring the pool's ``retry_after``
pacing hint: an :class:`~repro.errors.AdmissionError` that carries one
is slept out and the request re-issued, up to the cap.  Off by default
— rejections stay a caller-visible typed error unless asked for.
"""

from __future__ import annotations

import socket as socket_module
import threading
import time
from typing import Any, Dict, List, Optional, Union

from repro.distributed.transport import make_codec
from repro.errors import AdmissionError, InvalidParameterError, TransportError
from repro.serve.protocol import recv_frame, request_payload, send_frame
from repro.streaming.instance import SetCoverInstance
from repro.streaming.io import dumps_instance


class ServeClient:
    """One connection to a :class:`~repro.serve.server.SetCoverServer`."""

    #: Ceiling on one retry sleep, seconds — a hint is advisory and a
    #: confused server must not park a client for minutes.
    MAX_RETRY_SLEEP = 5.0

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        codec: Optional[str] = None,
        max_retries: int = 0,
    ) -> None:
        if max_retries < 0:
            raise InvalidParameterError(
                "max_retries", max_retries, "must be >= 0"
            )
        self.host = host
        self.port = port
        self.max_retries = max_retries
        self._codec = make_codec(codec)
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        try:
            self._sock = socket_module.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot connect to serve endpoint {host}:{port}: {exc}"
            ) from exc

    # -- plumbing --------------------------------------------------------

    def request(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Issue one request; returns the result dict or raises typed.

        With ``max_retries > 0``, an :class:`AdmissionError` whose
        ``retry_after`` hint is present is paced out — sleep the hinted
        interval (capped at :attr:`MAX_RETRY_SLEEP`), re-issue, up to
        the cap.  Rejections the pool marks unretryable
        (``retry_after=None``: exceeds-capacity, shutting-down) are
        re-raised immediately whatever the budget.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(kind, **fields)
            except AdmissionError as exc:
                if attempt >= self.max_retries or exc.retry_after is None:
                    raise
                attempt += 1
                time.sleep(min(exc.retry_after, self.MAX_RETRY_SLEEP))

    def _request_once(self, kind: str, **fields: Any) -> Dict[str, Any]:
        if self._closed:
            raise TransportError("serve client is closed")
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            payload = request_payload(kind, request_id, **fields)
            try:
                send_frame(self._sock, self._codec, payload)
                response = recv_frame(self._sock)
            except OSError as exc:
                raise TransportError(
                    f"serve connection to {self.host}:{self.port} failed: "
                    f"{exc}"
                ) from exc
        if response is None:
            raise TransportError(
                "server closed the connection before responding"
            )
        if not isinstance(response, dict):
            raise TransportError(
                f"malformed response of type {type(response).__name__}"
            )
        if int(response.get("id", -1)) != request_id:
            raise TransportError(
                f"response id {response.get('id')} does not match request "
                f"id {request_id}"
            )
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        from repro.serve.protocol import payload_to_error

        raise payload_to_error(response.get("error") or {})

    def close(self) -> None:
        """Close the connection; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the service API -------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Server identity/version round trip."""
        return self.request("ping")

    def load(
        self, name: str, instance: Union[SetCoverInstance, str]
    ) -> Dict[str, Any]:
        """Load an instance (object or io-format text) under ``name``."""
        text = (
            dumps_instance(instance)
            if isinstance(instance, SetCoverInstance)
            else instance
        )
        return self.request("load", name=name, text=text)

    def unload(self, name: str) -> Dict[str, Any]:
        """Drop a loaded instance."""
        return self.request("unload", name=name)

    def instances(self) -> List[Dict[str, Any]]:
        """Describe every loaded instance, sorted by name."""
        result = self.request("list")
        return list(result.get("instances", []))

    def solve(
        self,
        instance: str,
        algorithm: str = "kk",
        order: str = "canonical",
        seed: int = 0,
        alpha: Optional[float] = None,
        include_trace: bool = False,
        fault_kind: Optional[str] = None,
        fault_rate: float = 0.1,
        policy: str = "best_effort",
        delay_ms: int = 0,
    ) -> Dict[str, Any]:
        """One streaming solve on the server; cover + certificate back.

        ``fault_kind`` turns the request into a chaos cell: the stream
        is fault-injected server-side and run under the given
        degradation ``policy`` (the response's ``outcome`` is then
        ``"ok"`` or ``"degraded"``).  ``delay_ms`` is the test/ops knob
        that stretches the request inside its lease window.
        """
        fields: Dict[str, Any] = dict(
            instance=instance,
            algorithm=algorithm,
            order=order,
            seed=seed,
            include_trace=include_trace,
            delay_ms=delay_ms,
        )
        if alpha is not None:
            fields["alpha"] = alpha
        if fault_kind is not None:
            fields.update(
                fault_kind=fault_kind, fault_rate=fault_rate, policy=policy
            )
        return self.request("solve", **fields)

    def distribute(
        self,
        instance: str,
        workers: int = 4,
        algorithm: str = "kk",
        strategy: str = "by-set",
        coordinator: str = "chain",
        order: str = "canonical",
        seed: int = 0,
        alpha: Optional[float] = None,
        comm_budget: Optional[int] = None,
        include_trace: bool = False,
    ) -> Dict[str, Any]:
        """One sharded solve-and-merge on the server, comm-metered."""
        fields: Dict[str, Any] = dict(
            instance=instance,
            workers=workers,
            algorithm=algorithm,
            strategy=strategy,
            coordinator=coordinator,
            order=order,
            seed=seed,
            include_trace=include_trace,
        )
        if alpha is not None:
            fields["alpha"] = alpha
        if comm_budget is not None:
            fields["comm_budget"] = comm_budget
        return self.request("distribute", **fields)

    def summary(
        self,
        instance: str,
        algorithm: str = "kk",
        order: str = "canonical",
        seed: int = 0,
        alpha: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Traced solve returning the rendered trace summary."""
        fields: Dict[str, Any] = dict(
            instance=instance, algorithm=algorithm, order=order, seed=seed
        )
        if alpha is not None:
            fields["alpha"] = alpha
        return self.request("summary", **fields)

    def stats(self) -> Dict[str, Any]:
        """Server counters, pool stats, in-flight/draining state."""
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and stop."""
        return self.request("shutdown")
