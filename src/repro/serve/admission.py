"""Admission control: a global space/communication pool with leases.

The batch entry points enforce per-run budgets
(:class:`~repro.streaming.space.SpaceBudget`,
:class:`~repro.distributed.comm.CommBudget`); under concurrency those
budgets draw on *shared* machine resources, so the server holds one
:class:`ResourcePool` — a global capacity in space words and comm
words — and every compute request must **lease** its estimated words
before running.  The request's own meters still do the measuring (that
is what keeps a served run byte-identical to its batch twin); the lease
is the reservation that bounds how much metered work can be in flight
at once.

Admission state machine (DESIGN.md §14)::

              ┌──────────── exceeds-capacity ──► rejected (no retry)
              │
    request ──┼─ fits, queue empty ───────────► admitted ─► running ─► released
              │
              ├─ pool busy, queue has room ───► queued ─┬─ capacity freed ─► admitted
              │                                         ├─ queue timeout ──► rejected (retry-after)
              │                                         └─ pool shutdown ──► rejected (shutting-down)
              └─ queue full ──────────────────► rejected (retry-after)

Queued requests are granted strictly FIFO — a small request never
overtakes a large one (head-of-line blocking is deliberate: overtaking
would starve big requests under sustained small-request load, and the
deterministic order makes admission testable).  Every rejection is the
typed :class:`~repro.errors.AdmissionError` carrying requested and
available words, queue depth, and an advisory ``retry_after`` hint.

The pool is asyncio-native (single event loop, no locks): all state
transitions happen on the server's loop, and the blocking solve work
itself runs on worker threads *after* the lease is granted.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.errors import AdmissionError, InvalidParameterError

#: Rejection reasons (the state machine's terminal labels).
REJECT_EXCEEDS_CAPACITY = "exceeds-capacity"
REJECT_QUEUE_FULL = "queue-full"
REJECT_TIMED_OUT = "timed-out"
REJECT_SHUTTING_DOWN = "shutting-down"


@dataclass
class Lease:
    """One granted reservation; return it with :meth:`ResourcePool.release`."""

    space_words: int
    comm_words: int
    context: str = ""
    released: bool = False


@dataclass(frozen=True)
class PoolStats:
    """Snapshot of the pool, for the ``stats`` request and the bench."""

    space_capacity_words: int
    comm_capacity_words: int
    leased_space_words: int
    leased_comm_words: int
    peak_space_words: int
    peak_comm_words: int
    active_leases: int
    queue_depth: int
    admitted: int
    completed: int
    queued_total: int
    rejections: Dict[str, int] = field(default_factory=dict)

    @property
    def space_utilization(self) -> float:
        """Peak leased space over capacity, in [0, 1]."""
        if self.space_capacity_words <= 0:
            return 0.0
        return self.peak_space_words / self.space_capacity_words

    @property
    def rejected(self) -> int:
        """Total rejections across every reason."""
        return sum(self.rejections.values())

    def as_dict(self) -> Dict[str, object]:
        """Primitive-dict form for the wire and BENCH_serve.json."""
        return {
            "space_capacity_words": self.space_capacity_words,
            "comm_capacity_words": self.comm_capacity_words,
            "leased_space_words": self.leased_space_words,
            "leased_comm_words": self.leased_comm_words,
            "peak_space_words": self.peak_space_words,
            "peak_comm_words": self.peak_comm_words,
            "active_leases": self.active_leases,
            "queue_depth": self.queue_depth,
            "admitted": self.admitted,
            "completed": self.completed,
            "queued_total": self.queued_total,
            "rejected": self.rejected,
            "rejections": dict(sorted(self.rejections.items())),
            "space_utilization": self.space_utilization,
        }


class _Waiter:
    """One queued admission: the future resolves to a Lease or raises."""

    __slots__ = ("space_words", "comm_words", "context", "future")

    def __init__(
        self,
        space_words: int,
        comm_words: int,
        context: str,
        future: "asyncio.Future[Lease]",
    ) -> None:
        self.space_words = space_words
        self.comm_words = comm_words
        self.context = context
        self.future = future


class ResourcePool:
    """The server's global space/comm capacity, leased per request."""

    def __init__(
        self,
        space_words: int,
        comm_words: int,
        max_queue: int = 16,
        queue_timeout: Optional[float] = None,
    ) -> None:
        if not isinstance(space_words, int) or space_words <= 0:
            raise InvalidParameterError(
                "space_words", space_words, "pool capacity must be a "
                "positive integer number of words"
            )
        if not isinstance(comm_words, int) or comm_words <= 0:
            raise InvalidParameterError(
                "comm_words", comm_words, "pool capacity must be a "
                "positive integer number of words"
            )
        if max_queue < 0:
            raise InvalidParameterError(
                "max_queue", max_queue, "must be >= 0"
            )
        if queue_timeout is not None and queue_timeout <= 0:
            raise InvalidParameterError(
                "queue_timeout", queue_timeout, "must be positive or None"
            )
        self.space_capacity = space_words
        self.comm_capacity = comm_words
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._leased_space = 0
        self._leased_comm = 0
        self._peak_space = 0
        self._peak_comm = 0
        self._active_leases = 0
        self._waiters: Deque[_Waiter] = deque()
        self._closed = False
        self._admitted = 0
        self._completed = 0
        self._queued_total = 0
        self._rejections: Dict[str, int] = {}

    # -- queries ---------------------------------------------------------

    @property
    def available_space(self) -> int:
        """Unleased space words right now."""
        return self.space_capacity - self._leased_space

    @property
    def available_comm(self) -> int:
        """Unleased comm words right now."""
        return self.comm_capacity - self._leased_comm

    def stats(self) -> PoolStats:
        """Immutable snapshot of capacities, peaks, and counters."""
        return PoolStats(
            space_capacity_words=self.space_capacity,
            comm_capacity_words=self.comm_capacity,
            leased_space_words=self._leased_space,
            leased_comm_words=self._leased_comm,
            peak_space_words=self._peak_space,
            peak_comm_words=self._peak_comm,
            active_leases=self._active_leases,
            queue_depth=len(self._waiters),
            admitted=self._admitted,
            completed=self._completed,
            queued_total=self._queued_total,
            rejections=dict(self._rejections),
        )

    # -- internals -------------------------------------------------------

    def _fits(self, space_words: int, comm_words: int) -> bool:
        return (
            self._leased_space + space_words <= self.space_capacity
            and self._leased_comm + comm_words <= self.comm_capacity
        )

    def _retry_after(self) -> float:
        """Advisory retry hint: scales with how much work is ahead.

        Deliberately coarse — 25 ms per lease or queue slot currently in
        the way, floored at 50 ms.  Clients treat it as a pacing hint,
        not a guarantee.
        """
        ahead = self._active_leases + len(self._waiters)
        return max(0.05, 0.025 * ahead)

    def _reject(
        self,
        reason: str,
        space_words: int,
        comm_words: int,
        context: str,
        retry_after: Optional[float],
    ) -> AdmissionError:
        self._rejections[reason] = self._rejections.get(reason, 0) + 1
        return AdmissionError(
            reason,
            requested_space_words=space_words,
            requested_comm_words=comm_words,
            available_space_words=self.available_space,
            available_comm_words=self.available_comm,
            queue_depth=len(self._waiters),
            retry_after=retry_after,
            context=context,
        )

    def _grant(self, space_words: int, comm_words: int, context: str) -> Lease:
        self._leased_space += space_words
        self._leased_comm += comm_words
        self._peak_space = max(self._peak_space, self._leased_space)
        self._peak_comm = max(self._peak_comm, self._leased_comm)
        self._active_leases += 1
        self._admitted += 1
        return Lease(
            space_words=space_words, comm_words=comm_words, context=context
        )

    def _grant_waiters(self) -> None:
        """Admit queued requests, strictly FIFO, while the head fits."""
        while self._waiters:
            head = self._waiters[0]
            if head.future.done():
                # Timed out or cancelled while queued; drop and continue.
                self._waiters.popleft()
                continue
            if not self._fits(head.space_words, head.comm_words):
                return
            self._waiters.popleft()
            head.future.set_result(
                self._grant(head.space_words, head.comm_words, head.context)
            )

    # -- lease lifecycle -------------------------------------------------

    async def lease(
        self, space_words: int = 0, comm_words: int = 0, context: str = ""
    ) -> Lease:
        """Reserve words, queueing FIFO if the pool is busy.

        Raises the typed :class:`~repro.errors.AdmissionError` on every
        rejection path of the state machine above.
        """
        if space_words < 0 or comm_words < 0:
            raise InvalidParameterError(
                "space_words" if space_words < 0 else "comm_words",
                space_words if space_words < 0 else comm_words,
                "lease request must be non-negative",
            )
        if self._closed:
            raise self._reject(
                REJECT_SHUTTING_DOWN, space_words, comm_words, context, None
            )
        if space_words > self.space_capacity or comm_words > self.comm_capacity:
            raise self._reject(
                REJECT_EXCEEDS_CAPACITY, space_words, comm_words, context, None
            )
        if not self._waiters and self._fits(space_words, comm_words):
            return self._grant(space_words, comm_words, context)
        if len(self._waiters) >= self.max_queue:
            raise self._reject(
                REJECT_QUEUE_FULL,
                space_words,
                comm_words,
                context,
                self._retry_after(),
            )
        loop = asyncio.get_running_loop()
        waiter = _Waiter(space_words, comm_words, context, loop.create_future())
        self._waiters.append(waiter)
        self._queued_total += 1
        try:
            return await asyncio.wait_for(waiter.future, self.queue_timeout)
        except asyncio.TimeoutError:
            try:
                self._waiters.remove(waiter)
            except ValueError:
                pass
            # If the grant landed on the same tick the timer fired, the
            # cancelled wait_for still left the future resolved — return
            # the words so they are not stranded.
            future = waiter.future
            if (
                future.done()
                and not future.cancelled()
                and future.exception() is None
            ):
                self.release(future.result())
            raise self._reject(
                REJECT_TIMED_OUT,
                space_words,
                comm_words,
                context,
                self._retry_after(),
            ) from None
        except asyncio.CancelledError:
            try:
                self._waiters.remove(waiter)
            except ValueError:
                pass
            raise

    def release(self, lease: Lease) -> None:
        """Return a lease's words and admit whatever now fits (idempotent)."""
        if lease.released:
            return
        lease.released = True
        self._leased_space -= lease.space_words
        self._leased_comm -= lease.comm_words
        self._active_leases -= 1
        self._completed += 1
        self._grant_waiters()

    async def shutdown(self) -> int:
        """Reject every queued waiter with a typed shutting-down error.

        Returns how many waiters were evicted.  Active leases are left
        to drain — the server waits for in-flight requests separately.
        New :meth:`lease` calls after shutdown are rejected immediately.
        """
        self._closed = True
        evicted = 0
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.future.done():
                continue
            waiter.future.set_exception(
                self._reject(
                    REJECT_SHUTTING_DOWN,
                    waiter.space_words,
                    waiter.comm_words,
                    waiter.context,
                    None,
                )
            )
            evicted += 1
        return evicted
