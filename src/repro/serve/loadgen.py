"""Seeded load generator: replay mixed workloads against a live server.

The generator separates *what* is sent from *how fast*: a schedule is
a pure function of ``(instances, mix, requests, seed)`` — every op's
kind, parameters, and per-op seed are pre-drawn from one root RNG, so
two runs at different QPS/concurrency replay the *same* requests — and
:func:`run_load` then fires one schedule at a target QPS across ``C``
worker threads (each with its own client connection, matching the
server's one-connection-per-client concurrency model).  Op *i* is
assigned to worker ``i % C`` and dispatched no earlier than its offset
``i / qps`` from the start line, so the arrival process is a paced
open(ish) load, not a closed loop hammering as fast as responses come
back.

Outcome classification mirrors the chaos harness's discipline — every
request must end in exactly one bucket:

``ok``         a valid result (server-side verified);
``degraded``   a chaos cell that salvaged a partial cover, explicitly;
``admission``  a typed :class:`~repro.errors.AdmissionError` rejection;
``error``      any other typed remote error (chaos cells may earn one);
``transport``  connection-level failure (should be zero on localhost);
``invalid``    a response claiming success without validity — the
               bucket the bench asserts is **empty**.

Latency is measured per request around the client call (service time,
not queue-at-client time) and summarised by nearest-rank percentiles
(:func:`repro.analysis.stats.percentile`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import percentile
from repro.errors import (
    AdmissionError,
    InvalidParameterError,
    ReproError,
    TransportError,
)
from repro.serve.client import ServeClient
from repro.types import SeedLike, make_rng

#: Default workload mix: (kind, weight).  ``chaos`` is a fault-injected
#: solve under the best-effort policy.
DEFAULT_MIX: Tuple[Tuple[str, int], ...] = (
    ("solve", 3),
    ("distribute", 1),
    ("chaos", 1),
)

_MIX_KINDS = ("solve", "distribute", "chaos")
_CHAOS_FAULTS = ("drop", "duplicate", "corrupt")
_SEED_BITS = 31


@dataclass(frozen=True)
class WorkloadOp:
    """One scheduled request: kind plus fully-resolved client kwargs."""

    index: int
    kind: str
    fields: Dict[str, Any]


def build_schedule(
    instances: Sequence[str],
    requests: int,
    seed: SeedLike = 0,
    mix: Sequence[Tuple[str, int]] = DEFAULT_MIX,
    algorithms: Sequence[str] = ("kk",),
    workers: int = 4,
) -> List[WorkloadOp]:
    """Pre-draw a deterministic mixed-workload schedule.

    Pure in its arguments: kinds are drawn by weight, instances and
    algorithms uniformly, and each op gets an independent 31-bit seed —
    all from one root RNG, so the schedule replays identically whatever
    pacing later executes it.
    """
    if not instances:
        raise InvalidParameterError(
            "instances", instances, "need at least one loaded instance name"
        )
    if requests < 1:
        raise InvalidParameterError(
            "requests", requests, "need at least one request"
        )
    weighted: List[str] = []
    for kind, weight in mix:
        if kind not in _MIX_KINDS:
            raise InvalidParameterError(
                "mix", kind, "known workload kinds: " + ", ".join(_MIX_KINDS)
            )
        if weight < 0:
            raise InvalidParameterError("mix", weight, "weights must be >= 0")
        weighted.extend([kind] * weight)
    if not weighted:
        raise InvalidParameterError(
            "mix", tuple(mix), "at least one kind needs positive weight"
        )
    rng = make_rng(seed)
    schedule: List[WorkloadOp] = []
    for index in range(requests):
        kind = weighted[rng.randrange(len(weighted))]
        op_seed = rng.getrandbits(_SEED_BITS)
        instance = instances[rng.randrange(len(instances))]
        algorithm = algorithms[rng.randrange(len(algorithms))]
        if kind == "solve":
            fields: Dict[str, Any] = dict(
                instance=instance,
                algorithm=algorithm,
                order="random",
                seed=op_seed,
            )
        elif kind == "chaos":
            fields = dict(
                instance=instance,
                algorithm=algorithm,
                order="random",
                seed=op_seed,
                fault_kind=_CHAOS_FAULTS[rng.randrange(len(_CHAOS_FAULTS))],
                fault_rate=0.1,
                policy="best_effort",
            )
        else:  # distribute
            fields = dict(
                instance=instance,
                algorithm=algorithm,
                workers=workers,
                coordinator=("union", "greedy", "chain")[rng.randrange(3)],
                order="canonical",
                seed=op_seed,
            )
        schedule.append(WorkloadOp(index=index, kind=kind, fields=fields))
    return schedule


@dataclass(frozen=True)
class LatencySummary:
    """Nearest-rank latency percentiles over one cell, in milliseconds."""

    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    samples: int

    @classmethod
    def of(cls, samples_ms: Sequence[float]) -> "LatencySummary":
        if not samples_ms:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0)
        return cls(
            p50_ms=percentile(samples_ms, 50),
            p95_ms=percentile(samples_ms, 95),
            p99_ms=percentile(samples_ms, 99),
            mean_ms=sum(samples_ms) / len(samples_ms),
            max_ms=max(samples_ms),
            samples=len(samples_ms),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "samples": self.samples,
        }


@dataclass
class LoadCellReport:
    """One (QPS, concurrency) cell's measured outcome."""

    qps: float
    concurrency: int
    requests: int
    ok: int = 0
    degraded: int = 0
    admission_rejections: int = 0
    remote_errors: int = 0
    transport_errors: int = 0
    invalid: int = 0
    elapsed_s: float = 0.0
    achieved_qps: float = 0.0
    latency: LatencySummary = field(
        default_factory=lambda: LatencySummary.of(())
    )
    by_kind: Dict[str, int] = field(default_factory=dict)
    pool: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Primitive-dict form for BENCH_serve.json."""
        return {
            "qps": self.qps,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "admission_rejections": self.admission_rejections,
            "remote_errors": self.remote_errors,
            "transport_errors": self.transport_errors,
            "invalid": self.invalid,
            "elapsed_s": self.elapsed_s,
            "achieved_qps": self.achieved_qps,
            "latency": self.latency.as_dict(),
            "by_kind": dict(sorted(self.by_kind.items())),
            "pool": dict(self.pool),
        }


def _classify(response: Dict[str, Any]) -> str:
    """Bucket a successful reply: ok, degraded, or invalid."""
    if response.get("degraded"):
        return "degraded"
    if response.get("valid", False):
        return "ok"
    return "invalid"


def run_load(
    host: str,
    port: int,
    schedule: Sequence[WorkloadOp],
    qps: float,
    concurrency: int,
    timeout: float = 60.0,
    stats_client: Optional[ServeClient] = None,
) -> LoadCellReport:
    """Fire one schedule at ``qps`` across ``concurrency`` connections.

    Returns the cell report with latency percentiles, outcome counts,
    achieved throughput, and (when the server is reachable for a final
    ``stats`` call) the pool-utilization snapshot.
    """
    if qps <= 0:
        raise InvalidParameterError("qps", qps, "must be positive")
    if concurrency < 1:
        raise InvalidParameterError(
            "concurrency", concurrency, "need at least one worker"
        )
    report = LoadCellReport(
        qps=qps, concurrency=concurrency, requests=len(schedule)
    )
    lock = threading.Lock()
    latencies: List[float] = []
    start_line = time.perf_counter() + 0.05  # let every worker reach the gate

    def worker(worker_index: int) -> None:
        ops = [op for op in schedule if op.index % concurrency == worker_index]
        if not ops:
            return
        try:
            client = ServeClient(host=host, port=port, timeout=timeout)
        except TransportError:
            with lock:
                report.transport_errors += len(ops)
            return
        try:
            for op in ops:
                target = start_line + op.index / qps
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                began = time.perf_counter()
                try:
                    response = client.request(
                        "solve" if op.kind == "chaos" else op.kind,
                        **op.fields,
                    )
                    bucket = _classify(response)
                except AdmissionError:
                    bucket = "admission"
                except TransportError:
                    bucket = "transport"
                except ReproError:
                    bucket = "error"
                elapsed_ms = (time.perf_counter() - began) * 1000.0
                with lock:
                    latencies.append(elapsed_ms)
                    report.by_kind[op.kind] = report.by_kind.get(op.kind, 0) + 1
                    if bucket == "ok":
                        report.ok += 1
                    elif bucket == "degraded":
                        report.degraded += 1
                    elif bucket == "admission":
                        report.admission_rejections += 1
                    elif bucket == "transport":
                        report.transport_errors += 1
                    elif bucket == "error":
                        report.remote_errors += 1
                    else:
                        report.invalid += 1
        finally:
            client.close()

    threads = [
        threading.Thread(
            target=worker, args=(i,), name=f"repro-loadgen-{i}", daemon=True
        )
        for i in range(concurrency)
    ]
    began = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_s = time.perf_counter() - began
    if report.elapsed_s > 0:
        report.achieved_qps = len(schedule) / report.elapsed_s
    report.latency = LatencySummary.of(latencies)
    owns_stats = stats_client is None
    try:
        stats = stats_client or ServeClient(host=host, port=port, timeout=timeout)
        try:
            report.pool = dict(stats.stats().get("pool", {}))
        finally:
            if owns_stats:
                stats.close()
    except (TransportError, ReproError):
        report.pool = {}
    return report
