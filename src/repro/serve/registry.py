"""The server's registry of loaded instances, shared across requests.

Loading an instance is the expensive, once-per-dataset step (parse,
validate, freeze); every subsequent request against it re-derives its
stream from the shared immutable :class:`SetCoverInstance` — exactly
the object a batch run would build from the same file, which is what
keeps served solves byte-identical to their batch twins.  Entries also
carry the *admission estimates*: a generous envelope on the words a
solve of this instance can hold live (covering even ``store-all``'s
O(edges) footprint), used by the server to size pool leases.  The
estimate is operational only — it sizes the reservation, never the
meters, so a wrong estimate can change admission behaviour but not a
single solved byte.

Thread safety: the registry is mutated from the event loop (load /
unload handlers) and read from solver worker threads, so all access
goes through one lock; entries themselves are immutable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import InvalidParameterError
from repro.streaming.instance import SetCoverInstance
from repro.streaming.io import loads_instance


@dataclass(frozen=True)
class LoadedInstance:
    """One registry entry: the shared instance plus admission estimates."""

    name: str
    instance: SetCoverInstance
    n: int
    m: int
    edges: int
    #: Envelope on one solve's live words (any registry algorithm).
    estimated_solve_words: int
    #: Monotonic load sequence number (diagnostic ordering).
    loaded_seq: int

    def describe(self) -> Dict[str, object]:
        """Primitive-dict form for ``list`` responses."""
        return {
            "name": self.name,
            "n": self.n,
            "m": self.m,
            "edges": self.edges,
            "estimated_solve_words": self.estimated_solve_words,
            "loaded_seq": self.loaded_seq,
        }

    def estimated_distribute_comm_words(self, workers: int) -> int:
        """Envelope on a W-worker merge's total comm words.

        The chain forwards O(n) state per hop (W hops) and the star
        merges upload O(n) once each; doubled for witness pairs plus a
        per-worker constant.
        """
        return 2 * self.n * (workers + 1) + 16 * workers + 64


def _estimate_solve_words(n: int, m: int, edges: int) -> int:
    """A generous envelope on any registry algorithm's peak words.

    ``store-all`` keeps every edge; the streaming algorithms keep
    covers/certificates/working sets in O(n + m).  The constant slack
    absorbs per-algorithm bookkeeping.
    """
    return edges + 4 * (n + m) + 64


class InstanceRegistry:
    """Name -> :class:`LoadedInstance`, with typed errors on misuse."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, LoadedInstance] = {}
        self._next_seq = 0

    def load_instance(
        self, name: str, instance: SetCoverInstance
    ) -> LoadedInstance:
        """Validate and register ``instance`` under ``name``."""
        if not name or not isinstance(name, str):
            raise InvalidParameterError(
                "name", name, "instance name must be a non-empty string"
            )
        instance.validate()
        edges = sum(1 for _ in instance.edges())
        with self._lock:
            if name in self._entries:
                raise InvalidParameterError(
                    "name", name, "an instance with this name is already "
                    "loaded; unload it first"
                )
            entry = LoadedInstance(
                name=name,
                instance=instance,
                n=instance.n,
                m=instance.m,
                edges=edges,
                estimated_solve_words=_estimate_solve_words(
                    instance.n, instance.m, edges
                ),
                loaded_seq=self._next_seq,
            )
            self._next_seq += 1
            self._entries[name] = entry
        return entry

    def load_text(self, name: str, text: str) -> LoadedInstance:
        """Parse the io text format and register it (the wire path)."""
        return self.load_instance(name, loads_instance(text))

    def unload(self, name: str) -> LoadedInstance:
        """Remove and return the entry; unknown names are typed errors."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise self._unknown(name)
        return entry

    def get(self, name: str) -> LoadedInstance:
        """Look up an entry; unknown names are typed errors."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise self._unknown(name)
        return entry

    def entries(self) -> List[LoadedInstance]:
        """All entries, sorted by name (deterministic listing)."""
        with self._lock:
            return sorted(self._entries.values(), key=lambda e: e.name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _unknown(self, name: str) -> InvalidParameterError:
        with self._lock:
            known = ", ".join(sorted(self._entries)) or "none"
        return InvalidParameterError(
            "instance", name, f"not loaded; loaded instances: {known}"
        )
