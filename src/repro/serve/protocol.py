"""The serve wire protocol: framed request/response dicts.

The service speaks the PR-8 length-prefixed frame codec
(:func:`repro.distributed.transport.encode_frame` — ``RPWT`` magic,
codec tag, big-endian length, codec-encoded payload) over localhost
TCP.  Payloads are primitive ``str -> scalar | str | dict | tuple``
dicts in two envelope shapes:

Request::

    {"kind": <one of REQUEST_KINDS>, "id": <client-chosen int>, ...fields}

Response::

    {"id": <echoed>, "ok": True,  "result": {...}}
    {"id": <echoed>, "ok": False, "error": {"type": ..., "message": ...}}

Error payloads carry the server-side exception's *type name* and
message; :func:`payload_to_error` turns them back into typed errors on
the client — :class:`~repro.errors.AdmissionError` travels with its
full field set and is reconstructed as itself (a rejected client sees
the same typed error, with retry-after context, that the pool raised),
every other :class:`~repro.errors.ReproError` subclass becomes a
:class:`~repro.errors.RemoteServeError` tagged with the original type.

Frames are size-capped at :data:`MAX_FRAME_BYTES`; an oversized
announced length is a typed :class:`~repro.errors.TransportError`
*before* any allocation, so a corrupt header cannot balloon memory.
"""

from __future__ import annotations

import socket as socket_module
from typing import Any, Dict, Optional, Tuple

from repro.distributed.transport import (
    Codec,
    FRAME_HEADER_SIZE,
    decode_frame,
    encode_frame,
    parse_frame_header,
)
from repro.errors import (
    AdmissionError,
    InvalidParameterError,
    RemoteServeError,
    TransportError,
)

#: Every request kind the server dispatches.  ``solve``/``distribute``/
#: ``summary`` are compute kinds (admission-controlled); the rest are
#: control-plane kinds answered even while the pool is saturated.
REQUEST_KINDS: Tuple[str, ...] = (
    "ping",
    "load",
    "unload",
    "list",
    "solve",
    "distribute",
    "summary",
    "stats",
    "shutdown",
)

#: Compute kinds lease from the resource pool before running.
COMPUTE_KINDS: Tuple[str, ...] = ("solve", "distribute", "summary")

#: Hard cap on a single frame — a corrupt or hostile length field must
#: not translate into an arbitrary allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def request_payload(kind: str, request_id: int, **fields: Any) -> Dict[str, Any]:
    """Build one request envelope; unknown kinds fail fast client-side."""
    if kind not in REQUEST_KINDS:
        known = ", ".join(REQUEST_KINDS)
        raise InvalidParameterError(
            "kind", kind, f"known request kinds: {known}"
        )
    payload: Dict[str, Any] = {"kind": kind, "id": int(request_id)}
    payload.update(fields)
    return payload


def ok_response(request_id: int, result: Dict[str, Any]) -> Dict[str, Any]:
    """Build a success envelope echoing the request id."""
    return {"id": int(request_id), "ok": True, "result": result}


def error_response(request_id: int, error: BaseException) -> Dict[str, Any]:
    """Build a failure envelope carrying the typed error payload."""
    return {"id": int(request_id), "ok": False, "error": error_to_payload(error)}


def error_to_payload(error: BaseException) -> Dict[str, Any]:
    """Serialise an exception for the wire (type name + message + fields)."""
    payload: Dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, AdmissionError):
        payload["admission"] = {
            "reason": error.reason,
            "requested_space_words": error.requested_space_words,
            "requested_comm_words": error.requested_comm_words,
            "available_space_words": error.available_space_words,
            "available_comm_words": error.available_comm_words,
            "queue_depth": error.queue_depth,
            "retry_after": error.retry_after,
            "context": error.context,
        }
    if isinstance(error, InvalidParameterError):
        payload["parameter"] = error.parameter
    return payload


def payload_to_error(payload: Dict[str, Any]) -> Exception:
    """Reconstruct the typed client-side error for one error payload."""
    error_type = str(payload.get("type", "ReproError"))
    message = str(payload.get("message", ""))
    admission = payload.get("admission")
    if error_type == "AdmissionError" and isinstance(admission, dict):
        return AdmissionError(
            reason=str(admission.get("reason", "unknown")),
            requested_space_words=int(admission.get("requested_space_words", 0)),
            requested_comm_words=int(admission.get("requested_comm_words", 0)),
            available_space_words=int(admission.get("available_space_words", 0)),
            available_comm_words=int(admission.get("available_comm_words", 0)),
            queue_depth=int(admission.get("queue_depth", 0)),
            retry_after=admission.get("retry_after"),
            context=str(admission.get("context", "")),
        )
    return RemoteServeError(error_type, message)


# -- blocking socket framing (client side) ----------------------------------


def send_frame(sock: socket_module.socket, codec: Codec, payload: object) -> int:
    """Encode and send one frame; returns the bytes put on the wire."""
    frame = encode_frame(codec, payload)
    if len(frame) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(frame)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    sock.sendall(frame)
    return len(frame)


def _recv_exactly(sock: socket_module.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on a clean EOF at a frame
    boundary, :class:`TransportError` on EOF mid-frame."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise TransportError(
                f"peer closed mid-frame with {remaining} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket_module.socket) -> Optional[object]:
    """Read one framed payload; ``None`` on clean EOF."""
    header = _recv_exactly(sock, FRAME_HEADER_SIZE)
    if header is None:
        return None
    _, length = parse_frame_header(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame announces {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    body = _recv_exactly(sock, length)
    if body is None or len(body) != length:
        raise TransportError("peer closed mid-frame")
    return decode_frame(header + body)


# -- asyncio stream framing (server side) -----------------------------------


async def read_frame_async(reader) -> Optional[object]:
    """Read one framed payload from an asyncio stream; ``None`` on EOF."""
    import asyncio

    try:
        header = await reader.readexactly(FRAME_HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TransportError(
            f"peer closed mid-header after {len(exc.partial)} bytes"
        ) from exc
    _, length = parse_frame_header(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame announces {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError("peer closed mid-frame") from exc
    return decode_frame(header + body)


async def write_frame_async(writer, codec: Codec, payload: object) -> int:
    """Encode, write, and drain one frame on an asyncio stream."""
    frame = encode_frame(codec, payload)
    if len(frame) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(frame)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    writer.write(frame)
    await writer.drain()
    return len(frame)
