"""repro — Set Cover in the one-pass edge-arrival streaming model.

A full reproduction of Khanna, Konrad and Alexandru, *"Set Cover in the
One-pass Edge-arrival Streaming Model"* (PODS 2023): the KK-algorithm
(Theorem 1), the low-space adversarial Algorithm 2 (Theorem 4), the
random-order Algorithm 1 (Theorem 3), and the Theorem-2 lower-bound
machinery (Lemma-1 families, Set-Disjointness, the reduction, and the
deterministic 2√(nt) protocol), together with generators, baselines,
and an experiment harness regenerating every Table-1 row.

Quickstart::

    from repro import (
        KKAlgorithm, RandomOrder, stream_of, quadratic_family,
    )

    instance = quadratic_family(n=64, seed=0)
    stream = stream_of(instance, RandomOrder(seed=1))
    result = KKAlgorithm(seed=2).run(stream)
    result.verify(instance)
    print(result.cover_size, result.space.peak_words)
"""

from repro._version import __version__
from repro.distributed import (
    CommBudget,
    CommMeter,
    CommReport,
    DistributedResult,
    ShardRouter,
    registered_backends,
    run_distributed,
)
from repro.baselines import (
    FirstFitAlgorithm,
    SetArrivalThresholdGreedy,
    StoreAllAlgorithm,
    UniformSampleAlgorithm,
    greedy_cover,
    greedy_cover_size,
    lazy_greedy_cover,
)
from repro.core import (
    AmplifiedAlgorithm,
    ElementSamplingAlgorithm,
    KKAlgorithm,
    LowSpaceAdversarialAlgorithm,
    RandomOrderAlgorithm,
    Scaling,
    StreamingResult,
    StreamingSetCoverAlgorithm,
    StreamLengthOblivious,
)
from repro.errors import (
    CommBudgetError,
    ConfigurationError,
    InfeasibleInstanceError,
    InvalidCoverError,
    InvalidInstanceError,
    InvalidParameterError,
    InvalidStreamError,
    ProtocolError,
    ReproError,
    SpaceBudgetExceededError,
    StreamExhaustedError,
)
from repro.multipass import MultiPassThresholdGreedy
from repro.generators import (
    blogwatch_instance,
    fixed_size_instance,
    gnp_dominating_set,
    needle_in_haystack,
    planted_partition_instance,
    quadratic_family,
    two_tier_instance,
    uniform_instance,
    zipf_instance,
)
from repro.streaming import (
    CanonicalOrder,
    EdgeStream,
    LargeSetsLastOrder,
    RandomOrder,
    ReplayableStream,
    RoundRobinInterleaveOrder,
    SetCoverInstance,
    SetGroupedOrder,
    SpaceBudget,
    SpaceMeter,
    stream_of,
)
from repro.types import Edge

__all__ = [
    "__version__",
    # instances and streams
    "SetCoverInstance",
    "Edge",
    "EdgeStream",
    "ReplayableStream",
    "stream_of",
    "CanonicalOrder",
    "RandomOrder",
    "SetGroupedOrder",
    "RoundRobinInterleaveOrder",
    "LargeSetsLastOrder",
    "SpaceMeter",
    "SpaceBudget",
    # algorithms
    "StreamingSetCoverAlgorithm",
    "StreamingResult",
    "Scaling",
    "KKAlgorithm",
    "ElementSamplingAlgorithm",
    "AmplifiedAlgorithm",
    "LowSpaceAdversarialAlgorithm",
    "RandomOrderAlgorithm",
    "StreamLengthOblivious",
    "MultiPassThresholdGreedy",
    # baselines
    "greedy_cover",
    "greedy_cover_size",
    "lazy_greedy_cover",
    "SetArrivalThresholdGreedy",
    "StoreAllAlgorithm",
    "FirstFitAlgorithm",
    "UniformSampleAlgorithm",
    # generators
    "uniform_instance",
    "fixed_size_instance",
    "quadratic_family",
    "two_tier_instance",
    "planted_partition_instance",
    "zipf_instance",
    "blogwatch_instance",
    "gnp_dominating_set",
    "needle_in_haystack",
    # distributed execution
    "run_distributed",
    "registered_backends",
    "DistributedResult",
    "ShardRouter",
    "CommMeter",
    "CommBudget",
    "CommReport",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InvalidStreamError",
    "InvalidCoverError",
    "InfeasibleInstanceError",
    "SpaceBudgetExceededError",
    "StreamExhaustedError",
    "CommBudgetError",
    "ProtocolError",
    "ConfigurationError",
    "InvalidParameterError",
]
