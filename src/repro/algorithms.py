"""Central registry of one-pass streaming set-cover algorithms.

One place mapping public names to constructors, shared by the CLI's
``solve`` subcommand, the chaos harness, and the property-test suite
("every registered algorithm survives every fault type").  Builders
receive the instance so shape-dependent defaults (``α = √n`` and
friends) match what the experiments use.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.baselines.emek_rosen import SetArrivalThresholdGreedy
from repro.baselines.store_all import StoreAllAlgorithm
from repro.baselines.trivial import FirstFitAlgorithm
from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.core.base import StreamingSetCoverAlgorithm, Tracer
from repro.core.element_sampling import ElementSamplingAlgorithm
from repro.core.kk import KKAlgorithm, KKReferenceAlgorithm
from repro.core.random_order import RandomOrderAlgorithm
from repro.errors import ConfigurationError
from repro.streaming.instance import SetCoverInstance
from repro.types import SeedLike

AlgorithmBuilder = Callable[
    [SetCoverInstance, SeedLike, Optional[float]], StreamingSetCoverAlgorithm
]
"""Build an algorithm for ``(instance, seed, alpha_override)``."""


def _build_kk(instance, seed, alpha):
    return KKAlgorithm(seed=seed)


def _build_kk_reference(instance, seed, alpha):
    return KKReferenceAlgorithm(seed=seed)


def _build_adversarial(instance, seed, alpha):
    alpha = alpha if alpha else 2 * math.sqrt(instance.n)
    return LowSpaceAdversarialAlgorithm(alpha=alpha, seed=seed)


def _build_random_order(instance, seed, alpha):
    return RandomOrderAlgorithm(seed=seed)


def _build_element_sampling(instance, seed, alpha):
    alpha = alpha if alpha else math.sqrt(instance.n)
    return ElementSamplingAlgorithm(alpha=alpha, seed=seed)


def _build_set_arrival(instance, seed, alpha):
    return SetArrivalThresholdGreedy(seed=seed)


def _build_first_fit(instance, seed, alpha):
    return FirstFitAlgorithm(seed=seed)


def _build_store_all(instance, seed, alpha):
    return StoreAllAlgorithm(seed=seed)


#: Public name -> builder.  Names match the historical CLI choices.
ALGORITHM_REGISTRY: Dict[str, AlgorithmBuilder] = {
    "kk": _build_kk,
    "kk-reference": _build_kk_reference,
    "adversarial": _build_adversarial,
    "random-order": _build_random_order,
    "element-sampling": _build_element_sampling,
    "set-arrival": _build_set_arrival,
    "first-fit": _build_first_fit,
    "store-all": _build_store_all,
}


def registered_algorithms() -> List[str]:
    """Registry names in deterministic (sorted) order."""
    return sorted(ALGORITHM_REGISTRY)


def make_algorithm(
    name: str,
    instance: SetCoverInstance,
    seed: SeedLike = 0,
    alpha: Optional[float] = None,
    tracer: Optional[Tracer] = None,
) -> StreamingSetCoverAlgorithm:
    """Construct a registered algorithm sized for ``instance``.

    ``tracer`` attaches an observability tracer (see :mod:`repro.obs`)
    to the built instance; the default leaves the no-op tracer in place.
    """
    try:
        builder = ALGORITHM_REGISTRY[name]
    except KeyError:
        known = ", ".join(registered_algorithms())
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        ) from None
    algorithm = builder(instance, seed, alpha)
    if tracer is not None:
        algorithm.set_tracer(tracer)
    return algorithm
