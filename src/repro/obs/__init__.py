"""Structured observability for the streaming algorithms (zero-dep).

``repro.obs`` makes every probabilistic decision of the paper's
machinery inspectable: a :class:`~repro.obs.tracer.RecordingTracer`
collects nestable spans (run → epoch → subepoch) and typed events
(``coin_flip``, ``set_admitted``, ``element_covered``,
``level_promoted``, ``patch_applied``, ``space_sample``, ...) with
seed-deterministic ordering, while the default
:class:`~repro.obs.tracer.NullTracer` keeps the hot path free of any
tracing cost.  See DESIGN.md §8 for the event taxonomy and
``repro-setcover trace`` for the CLI entry point.
"""

from repro.obs.events import (
    COIN_FLIP,
    COUNTER,
    DEGRADATION,
    ELEMENT_COVERED,
    ELEMENT_MARKED,
    EVENT_TYPES,
    LEVEL_PROMOTED,
    PATCH_APPLIED,
    RUN_FAILED,
    SET_ADMITTED,
    SET_SPECIAL,
    SET_TRACKED,
    SPACE_SAMPLE,
    SPAN_ALGORITHM,
    SPAN_BEGIN,
    SPAN_END,
    SPAN_EPOCH,
    SPAN_EPOCH0,
    SPAN_KINDS,
    SPAN_OFFLINE,
    SPAN_REMAINDER,
    SPAN_RUN,
    SPAN_SUBEPOCH,
    STREAM_SANITIZED,
    TraceEvent,
)
from repro.obs.summary import TraceSummary, summarize
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceCollector,
    event_to_json,
    events_to_jsonl,
    parse_jsonl,
    parse_jsonl_cells,
    read_trace,
    write_trace,
)

__all__ = [
    "COIN_FLIP",
    "COUNTER",
    "DEGRADATION",
    "ELEMENT_COVERED",
    "ELEMENT_MARKED",
    "EVENT_TYPES",
    "LEVEL_PROMOTED",
    "NULL_TRACER",
    "NullTracer",
    "PATCH_APPLIED",
    "RUN_FAILED",
    "RecordingTracer",
    "SET_ADMITTED",
    "SET_SPECIAL",
    "SET_TRACKED",
    "SPACE_SAMPLE",
    "SPAN_ALGORITHM",
    "SPAN_BEGIN",
    "SPAN_END",
    "SPAN_EPOCH",
    "SPAN_EPOCH0",
    "SPAN_KINDS",
    "SPAN_OFFLINE",
    "SPAN_REMAINDER",
    "SPAN_RUN",
    "SPAN_SUBEPOCH",
    "STREAM_SANITIZED",
    "TraceCollector",
    "TraceEvent",
    "TraceSummary",
    "event_to_json",
    "events_to_jsonl",
    "parse_jsonl",
    "parse_jsonl_cells",
    "read_trace",
    "summarize",
    "write_trace",
]
