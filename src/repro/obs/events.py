"""Event taxonomy for the structured tracing layer.

Every trace is a flat sequence of :class:`TraceEvent` records.  Two of
the types (:data:`SPAN_BEGIN` / :data:`SPAN_END`) delimit *spans* — the
nestable phases of a run (run → epoch → subepoch) — and the rest are
point events or flushed counters attached to the innermost open span.

The taxonomy is closed: :class:`~repro.obs.tracer.RecordingTracer`
rejects unknown event types so a typo in an instrumentation site fails
loudly in tests instead of silently fragmenting the trace vocabulary.
DESIGN.md §8 documents the meaning and emitting sites of every type.

Determinism contract: events carry a per-trace sequence number and *no*
wall-clock timestamps, so a fixed (seed, instance, order) triple yields
a byte-identical JSONL trace on every run and under any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Union

AttrValue = Union[int, float, str, bool]

# -- span delimiters -------------------------------------------------------

SPAN_BEGIN = "span_begin"
SPAN_END = "span_end"

# -- span kinds ------------------------------------------------------------

SPAN_RUN = "run"
SPAN_EPOCH0 = "epoch0"
SPAN_ALGORITHM = "algorithm"  # Algorithm 1's inner A(i)
SPAN_EPOCH = "epoch"
SPAN_SUBEPOCH = "subepoch"
SPAN_REMAINDER = "remainder"
SPAN_OFFLINE = "offline"  # element sampling's post-pass greedy
SPAN_SHARD = "shard"  # one distributed worker's shard-local pass
SPAN_MERGE = "merge"  # a distributed coordinator merging shard outputs
SPAN_ASYNC = "async"  # one asynchronous delivery simulation (asyncsim)

SPAN_KINDS: FrozenSet[str] = frozenset(
    {
        SPAN_RUN,
        SPAN_EPOCH0,
        SPAN_ALGORITHM,
        SPAN_EPOCH,
        SPAN_SUBEPOCH,
        SPAN_REMAINDER,
        SPAN_OFFLINE,
        SPAN_SHARD,
        SPAN_MERGE,
        SPAN_ASYNC,
    }
)

# -- point events and counters --------------------------------------------

COIN_FLIP = "coin_flip"  # counter: Coin(p) draws (incl. deterministic ones)
SET_ADMITTED = "set_admitted"  # a set joined the (partial) cover
ELEMENT_COVERED = "element_covered"  # counter: elements witnessed/marked
LEVEL_PROMOTED = "level_promoted"  # a set's level/degree-level advanced
SET_SPECIAL = "set_special"  # Algorithm 1: a counter hit the threshold
SET_TRACKED = "set_tracked"  # Algorithm 1: set joined the tracked sample
ELEMENT_MARKED = "element_marked"  # counter: optimistic marks (lines 7/31)
PATCH_APPLIED = "patch_applied"  # first-fit patching completed a cover
SPACE_SAMPLE = "space_sample"  # meter snapshot (peak/current words)
COUNTER = "counter"  # flushed counter values outside any span
RUN_FAILED = "run_failed"  # the pass raised; attrs carry the error type
STREAM_SANITIZED = "stream_sanitized"  # resilient wrapper repaired a stream
DEGRADATION = "degradation"  # a DegradationRecord was emitted
MESSAGE_SENT = "message_sent"  # a coordinator link carried a message
MESSAGE_DELIVERED = "message_delivered"  # asyncsim delivered a pending message
SHARD_RETRY = "shard_retry"  # a shard attempt failed and was retried
SHARD_ABANDONED = "shard_abandoned"  # a shard exhausted its attempts

EVENT_TYPES: FrozenSet[str] = frozenset(
    {
        SPAN_BEGIN,
        SPAN_END,
        COIN_FLIP,
        SET_ADMITTED,
        ELEMENT_COVERED,
        LEVEL_PROMOTED,
        SET_SPECIAL,
        SET_TRACKED,
        ELEMENT_MARKED,
        PATCH_APPLIED,
        SPACE_SAMPLE,
        COUNTER,
        RUN_FAILED,
        STREAM_SANITIZED,
        DEGRADATION,
        MESSAGE_SENT,
        MESSAGE_DELIVERED,
        SHARD_RETRY,
        SHARD_ABANDONED,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    Attributes
    ----------
    seq:
        0-based position of this event in its trace; the total order of
        the trace (no timestamps — see the module determinism contract).
    span:
        ``seq`` of the innermost enclosing :data:`SPAN_BEGIN` event, or
        ``-1`` for events outside any span.
    etype:
        One of :data:`EVENT_TYPES`.
    attrs:
        Flat JSON-compatible payload.  Span events carry ``kind``; span
        ends additionally carry the counters accumulated in the span.
    """

    seq: int
    span: int
    etype: str
    attrs: Dict[str, AttrValue] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        """The span kind for span events, ``""`` otherwise."""
        value = self.attrs.get("kind", "")
        return value if isinstance(value, str) else ""
