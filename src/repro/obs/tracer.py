"""Tracers: the no-op default, the recording implementation, JSONL io.

Three layers, mirroring the space meter's design philosophy (the
observability substrate must not distort what it observes):

* :class:`NullTracer` — the default everywhere.  ``enabled`` is a class
  attribute ``False`` and every method is a no-op, so hot paths guard
  event construction behind ``if tracer.enabled:`` and pay one
  attribute load when tracing is off.  The singleton is
  :data:`NULL_TRACER`.
* :class:`RecordingTracer` — an in-memory event buffer with nestable
  spans and per-span counters.  Events carry sequence numbers, never
  wall-clock timestamps, so traces are seed-deterministic.
* :class:`TraceCollector` — a thread-safe registry of per-cell
  recording tracers for grid runs; its merged JSONL output is sorted by
  cell label, so ``max_workers=4`` emits byte-identical bytes to
  ``max_workers=1``.

JSONL format: one JSON object per event, sorted keys, no whitespace —
``{"attrs":{...},"seq":0,"span":-1,"type":"span_begin"}`` — making
byte-level trace comparison meaningful across runs and platforms.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.events import (
    COUNTER,
    EVENT_TYPES,
    SPAN_BEGIN,
    SPAN_END,
    SPAN_KINDS,
    AttrValue,
    TraceEvent,
)


class _NullSpan:
    """Reusable no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer: zero allocation, zero branching cost.

    ``enabled`` is ``False`` at the *class* level, so the hot-path guard
    ``if tracer.enabled:`` compiles to one attribute load and a falsy
    test — no event dictionaries are ever built when tracing is off.
    """

    enabled = False

    def span(self, kind: str, **attrs: AttrValue) -> _NullSpan:
        return _NULL_SPAN

    def event(self, etype: str, **attrs: AttrValue) -> None:
        return None

    def count(self, name: str, delta: int = 1) -> None:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


#: Shared default instance; algorithms reference this when no tracer is set.
NULL_TRACER = NullTracer()


class _RecordedSpan:
    """Context manager closing one span of a :class:`RecordingTracer`."""

    __slots__ = ("_tracer", "_kind")

    def __init__(self, tracer: "RecordingTracer", kind: str) -> None:
        self._tracer = tracer
        self._kind = kind

    def __enter__(self) -> "_RecordedSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._end_span(self._kind)
        return None


class RecordingTracer:
    """Collects :class:`TraceEvent` records with nested spans and counters.

    Counters (:meth:`count`) accumulate per open span and are flushed
    into that span's ``span_end`` attrs, keeping high-frequency signals
    (coin flips, covered elements) one dict update per occurrence
    instead of one event each.  Counts made outside any span are flushed
    as a trailing ``counter`` event by :meth:`finish`.

    Not thread-safe by design: one tracer observes one single-threaded
    algorithm run.  Grid runs give every cell its own tracer via
    :class:`TraceCollector`.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._span_stack: List[int] = []
        self._counter_stack: List[Dict[str, int]] = []
        self._root_counters: Dict[str, int] = {}
        self._finished = False

    # -- emission ------------------------------------------------------

    def span(self, kind: str, **attrs: AttrValue) -> _RecordedSpan:
        """Open a span of ``kind``; close it by exiting the context."""
        if kind not in SPAN_KINDS:
            raise ValueError(
                f"unknown span kind {kind!r}; known: {sorted(SPAN_KINDS)}"
            )
        seq = len(self.events)
        self._append(SPAN_BEGIN, {"kind": kind, **attrs})
        self._span_stack.append(seq)
        self._counter_stack.append({})
        return _RecordedSpan(self, kind)

    def event(self, etype: str, **attrs: AttrValue) -> None:
        """Record one point event of type ``etype``."""
        if etype not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {etype!r}; known: {sorted(EVENT_TYPES)}"
            )
        if etype in (SPAN_BEGIN, SPAN_END):
            raise ValueError("span events are emitted via span(), not event()")
        self._append(etype, dict(attrs))

    def count(self, name: str, delta: int = 1) -> None:
        """Accumulate ``delta`` into counter ``name`` of the open span."""
        counters = (
            self._counter_stack[-1] if self._counter_stack else self._root_counters
        )
        counters[name] = counters.get(name, 0) + delta

    # -- lifecycle -----------------------------------------------------

    def finish(self) -> List[TraceEvent]:
        """Close the trace: flush root counters, return the events.

        Idempotent; open spans are *not* auto-closed (a dangling span is
        an instrumentation bug the tests should see).
        """
        if not self._finished:
            if self._root_counters:
                self._append(
                    COUNTER,
                    {k: self._root_counters[k] for k in sorted(self._root_counters)},
                )
                self._root_counters = {}
            self._finished = True
        return self.events

    @property
    def open_spans(self) -> int:
        """Number of spans currently open (0 for a well-formed finished trace)."""
        return len(self._span_stack)

    def to_jsonl(self) -> str:
        """This trace as canonical JSONL (calls :meth:`finish`)."""
        return events_to_jsonl(self.finish())

    # -- internals -----------------------------------------------------

    def _append(self, etype: str, attrs: Dict[str, AttrValue]) -> None:
        span = self._span_stack[-1] if self._span_stack else -1
        self.events.append(
            TraceEvent(seq=len(self.events), span=span, etype=etype, attrs=attrs)
        )

    def _end_span(self, kind: str) -> None:
        if not self._span_stack:
            raise ValueError("span_end without a matching span_begin")
        begin_seq = self._span_stack.pop()
        counters = self._counter_stack.pop()
        attrs: Dict[str, AttrValue] = {"kind": kind, "begin": begin_seq}
        for name in sorted(counters):
            attrs[name] = counters[name]
        # The end event belongs to the *enclosing* span, mirroring begin.
        self.events.append(
            TraceEvent(
                seq=len(self.events),
                span=self._span_stack[-1] if self._span_stack else -1,
                etype=SPAN_END,
                attrs=attrs,
            )
        )

    def __repr__(self) -> str:
        return f"RecordingTracer(events={len(self.events)})"


# -- JSONL serialisation ---------------------------------------------------


def event_to_json(event: TraceEvent, cell: Optional[str] = None) -> str:
    """One event as a canonical (sorted-keys, compact) JSON line."""
    payload: Dict[str, object] = {
        "seq": event.seq,
        "span": event.span,
        "type": event.etype,
        "attrs": event.attrs,
    }
    if cell is not None:
        payload["cell"] = cell
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def events_to_jsonl(events: Iterable[TraceEvent], cell: Optional[str] = None) -> str:
    """Serialize ``events`` to JSONL text (one canonical line each)."""
    lines = [event_to_json(event, cell=cell) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_jsonl(text: str) -> List[TraceEvent]:
    """Parse JSONL text back into :class:`TraceEvent` records.

    The inverse of :func:`events_to_jsonl` for single-cell traces; for
    merged multi-cell files use :func:`parse_jsonl_cells`.
    """
    events: List[TraceEvent] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"trace line {line_number} is not valid JSON: {error}"
            ) from error
        try:
            events.append(
                TraceEvent(
                    seq=int(payload["seq"]),
                    span=int(payload["span"]),
                    etype=str(payload["type"]),
                    attrs=dict(payload["attrs"]),
                )
            )
        except KeyError as error:
            raise ValueError(
                f"trace line {line_number} misses required key {error}"
            ) from error
    return events


def parse_jsonl_cells(text: str) -> Dict[str, List[TraceEvent]]:
    """Parse a merged multi-cell JSONL file into per-cell event lists.

    Lines without a ``cell`` key land under the ``""`` label.
    """
    cells: Dict[str, List[TraceEvent]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        label = str(payload.get("cell", ""))
        cells.setdefault(label, []).append(
            TraceEvent(
                seq=int(payload["seq"]),
                span=int(payload["span"]),
                etype=str(payload["type"]),
                attrs=dict(payload["attrs"]),
            )
        )
    return cells


def write_trace(path, events: Sequence[TraceEvent]) -> None:
    """Write ``events`` to ``path`` as canonical JSONL."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(events))


def read_trace(path) -> List[TraceEvent]:
    """Read a single-cell JSONL trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read())


# -- multi-cell collection -------------------------------------------------


class _AdoptedCell:
    """A cell holding already-finished events (e.g. from another process).

    Quacks like a finished :class:`RecordingTracer` for the collector's
    purposes: :meth:`finish` returns the adopted event list verbatim.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self._events = list(events)

    def finish(self) -> List[TraceEvent]:
        return self._events


class TraceCollector:
    """Thread-safe registry of per-cell tracers for grid runs.

    Worker threads call :meth:`tracer_for` with a cell label unique to
    their grid cell; each call installs a *fresh* tracer under that
    label (so a retried cell's trace reflects the attempt that produced
    the recorded result, not a mix).  Cells recorded in *another
    process* — a :class:`ProcessPoolExecutor` shard worker — cannot
    share a tracer object; they serialize their finished events and the
    parent installs them with :meth:`adopt` / :meth:`adopt_jsonl`.
    :meth:`to_jsonl` merges all cells sorted by label — the output is
    independent of completion order, of the worker count, and of
    whether a cell was recorded in-process or adopted across a process
    boundary.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, object] = {}
        self._lock = threading.Lock()

    def tracer_for(self, label: str) -> RecordingTracer:
        """A fresh tracer registered under ``label`` (replacing any prior)."""
        tracer = RecordingTracer()
        with self._lock:
            self._cells[label] = tracer
        return tracer

    def adopt(self, label: str, events: Sequence[TraceEvent]) -> None:
        """Install already-finished ``events`` as cell ``label``.

        The cross-process counterpart of :meth:`tracer_for`: a worker
        process finishes its own :class:`RecordingTracer`, ships the
        events (or their JSONL) back, and the parent adopts them.
        Adopted cells serialize byte-identically to cells recorded
        in-process, because :meth:`to_jsonl` re-serializes the same
        event records through the same canonical encoder.
        """
        cell = _AdoptedCell(events)
        with self._lock:
            self._cells[label] = cell

    def adopt_jsonl(self, label: str, text: str) -> None:
        """Parse canonical JSONL ``text`` and adopt it as cell ``label``."""
        self.adopt(label, parse_jsonl(text))

    def labels(self) -> List[str]:
        """All registered cell labels, sorted."""
        with self._lock:
            return sorted(self._cells)

    def events_for(self, label: str) -> List[TraceEvent]:
        """The (finished) events of cell ``label``."""
        with self._lock:
            tracer = self._cells[label]
        return tracer.finish()

    def to_jsonl(self) -> str:
        """All cells merged as JSONL, sorted by cell label."""
        chunks = []
        for label in self.labels():
            chunks.append(events_to_jsonl(self.events_for(label), cell=label))
        return "".join(chunks)

    def write(self, path) -> None:
        """Write the merged JSONL to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)
