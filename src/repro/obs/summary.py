"""Trace summarisation: turn a JSONL event stream back into numbers.

The consumer side of the tracing layer: :func:`summarize` folds a flat
event list into a :class:`TraceSummary` (span populations, event-type
histogram, counter totals, nesting depth, per-epoch rows for
Algorithm 1), and :meth:`TraceSummary.render` prints it for the
``repro-setcover trace`` CLI.  Round-tripping — serialize, parse,
summarise — is the acceptance path the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.obs.events import (
    COUNTER,
    SPAN_BEGIN,
    SPAN_END,
    SPAN_EPOCH,
    SPAN_SUBEPOCH,
    TraceEvent,
)

#: Counter keys every span_end carries besides flushed counters.
_SPAN_END_META = ("kind", "begin")


@dataclass
class TraceSummary:
    """Aggregate view of one trace.

    Attributes
    ----------
    total_events:
        Length of the event list.
    span_counts:
        ``span kind -> number of spans`` (counted at ``span_begin``).
    event_counts:
        ``event type -> occurrences`` (span delimiters included).
    counter_totals:
        Flushed counters summed across every ``span_end`` and trailing
        ``counter`` event — e.g. total ``coin_flip`` draws of the run.
    max_depth:
        Deepest span nesting observed (run → epoch → subepoch = 3).
    unbalanced_spans:
        ``span_begin`` events never matched by an end (0 for a
        well-formed trace).
    epoch_rows:
        One ``(algorithm_index, epoch_index, subepochs, counters)``
        tuple per Algorithm-1 epoch span, in trace order.
    """

    total_events: int = 0
    span_counts: Dict[str, int] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    counter_totals: Dict[str, int] = field(default_factory=dict)
    max_depth: int = 0
    unbalanced_spans: int = 0
    epoch_rows: List[Tuple[int, int, int, Dict[str, int]]] = field(
        default_factory=list
    )

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"events: {self.total_events}"]
        lines.append(f"max span depth: {self.max_depth}")
        if self.unbalanced_spans:
            lines.append(f"UNBALANCED spans: {self.unbalanced_spans}")
        if self.span_counts:
            spans = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.span_counts.items())
            )
            lines.append(f"spans: {spans}")
        if self.event_counts:
            events = ", ".join(
                f"{etype}={count}"
                for etype, count in sorted(self.event_counts.items())
            )
            lines.append(f"event types: {events}")
        if self.counter_totals:
            counters = ", ".join(
                f"{name}={total}"
                for name, total in sorted(self.counter_totals.items())
            )
            lines.append(f"counters: {counters}")
        if self.epoch_rows:
            lines.append("epochs (A(i), epoch j, subepochs, counters):")
            for algorithm_index, epoch_index, subepochs, counters in self.epoch_rows:
                shown = ", ".join(
                    f"{k}={v}" for k, v in sorted(counters.items())
                )
                lines.append(
                    f"  A({algorithm_index}) epoch {epoch_index}: "
                    f"{subepochs} subepoch(s){'; ' + shown if shown else ''}"
                )
        return "\n".join(lines)


def summarize(events: Sequence[TraceEvent]) -> TraceSummary:
    """Fold ``events`` into a :class:`TraceSummary`."""
    summary = TraceSummary(total_events=len(events))
    depth = 0
    # seq of each open span_begin -> (kind, attrs) for epoch bookkeeping.
    open_spans: Dict[int, TraceEvent] = {}
    subepochs_per_epoch: Dict[int, int] = {}
    # Counters of closed descendant spans, rolled up to the nearest
    # still-open epoch: Algorithm 1 flushes coin flips per *subepoch*,
    # but the row users read is per epoch.
    epoch_accumulators: Dict[int, Dict[str, int]] = {}

    def nearest_open_epoch(parent_seq: int) -> int:
        seq = parent_seq
        while seq != -1 and seq in open_spans:
            if open_spans[seq].kind == SPAN_EPOCH:
                return seq
            seq = open_spans[seq].span
        return -1

    for event in events:
        summary.event_counts[event.etype] = (
            summary.event_counts.get(event.etype, 0) + 1
        )
        if event.etype == SPAN_BEGIN:
            kind = event.kind
            summary.span_counts[kind] = summary.span_counts.get(kind, 0) + 1
            depth += 1
            summary.max_depth = max(summary.max_depth, depth)
            open_spans[event.seq] = event
            if kind == SPAN_SUBEPOCH and event.span in open_spans:
                subepochs_per_epoch[event.span] = (
                    subepochs_per_epoch.get(event.span, 0) + 1
                )
        elif event.etype == SPAN_END:
            depth = max(0, depth - 1)
            begin_seq = event.attrs.get("begin", -1)
            begin = open_spans.pop(int(begin_seq), None)
            counters = {
                name: int(value)
                for name, value in event.attrs.items()
                if name not in _SPAN_END_META and isinstance(value, (int, float))
            }
            for name, value in counters.items():
                summary.counter_totals[name] = (
                    summary.counter_totals.get(name, 0) + value
                )
            if begin is not None and begin.kind == SPAN_EPOCH:
                rolled = epoch_accumulators.pop(begin.seq, {})
                for name, value in counters.items():
                    rolled[name] = rolled.get(name, 0) + value
                summary.epoch_rows.append(
                    (
                        int(begin.attrs.get("algorithm_index", -1)),
                        int(begin.attrs.get("epoch_index", -1)),
                        subepochs_per_epoch.get(begin.seq, 0),
                        rolled,
                    )
                )
            elif begin is not None and counters:
                epoch_seq = nearest_open_epoch(begin.span)
                if epoch_seq != -1:
                    bucket = epoch_accumulators.setdefault(epoch_seq, {})
                    for name, value in counters.items():
                        bucket[name] = bucket.get(name, 0) + value
        elif event.etype == COUNTER:
            for name, value in event.attrs.items():
                if isinstance(value, (int, float)):
                    summary.counter_totals[name] = summary.counter_totals.get(
                        name, 0
                    ) + int(value)
    summary.unbalanced_spans = len(open_spans)
    return summary
