"""Experiment ``merge-latency``: tournament vs chain on the logical clock.

The chain relays its protocol state through W parties — a critical path
of ``W-1`` sequential hand-offs — while the tournament merge pairs
states bottom-up in ``⌈log₂ W⌉`` rounds of *independent* hand-offs the
async scheduler delivers as one batch per round.  Both move exactly
``W-1`` messages; what differs is the dependency depth, and the price
the tree pays is message size (a leaf ships witnesses for every element
it holds) and, under fixed τ, cover quality (leaves act blind against
the full universe, duplicating coverage the chain's shared state would
have suppressed).  Adaptive τ re-estimation —
``τ = √(|uncovered| / merged_peers)``, so leaves defer greedy and picks
happen only where evidence has accumulated — recovers most of that
cover quality without giving back the latency win.

Sweep W × {chain, tree} × {fixed, adaptive} τ, recording cover size,
max message words, and critical-path steps; verify every run and assert
async/sync cover parity on the side.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import aggregate
from repro.analysis.tables import render_scatter
from repro.distributed import run_distributed
from repro.distributed.asyncsim import run_distributed_async
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.types import make_rng

EXPERIMENT_ID = "merge-latency"
TITLE = "Merge latency: tournament's O(log W) rounds vs the chain's O(W)"
PAPER_CLAIM = (
    "the t-party protocol's state merge is associative enough to fold "
    "as a binary tree: the same W-1 messages delivered in ceil(log2 W) "
    "independent rounds cut the dependency-bound critical path from "
    "Theta(W) to Theta(log W), trading larger early messages and — "
    "unless tau is re-estimated mid-merge — cover quality"
)

_CELLS = (
    ("chain", False),
    ("chain", True),
    ("tree", False),
    ("tree", True),
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 3 if quick else 6
    n = 100
    m = 500 if quick else 1000
    opt_size = 10
    worker_values = [2, 4, 8] if quick else [2, 4, 8, 16, 32]

    rows: List[List[object]] = []
    points = []
    parity_checked = 0
    steps_by_cell: Dict[str, Dict[int, float]] = {}
    cover_by_cell: Dict[str, Dict[int, float]] = {}

    for workers in worker_values:
        for coordinator, adaptive in _CELLS:
            mode = "adaptive" if adaptive else "fixed"
            cell = f"{coordinator}/{mode}"
            steps, covers, max_words = [], [], []
            for _ in range(replications):
                s = rng.getrandbits(63)
                planted = planted_partition_instance(
                    n, m, opt_size=opt_size, seed=s
                )
                result = run_distributed_async(
                    planted.instance,
                    workers=workers,
                    algorithm="kk",
                    strategy="by-set",
                    coordinator=coordinator,
                    adaptive_threshold=adaptive,
                    seed=s,
                    backend="serial",
                    schedule_seed=s,
                )
                result.verify(planted.instance)
                sync = run_distributed(
                    planted.instance,
                    workers=workers,
                    algorithm="kk",
                    strategy="by-set",
                    coordinator=coordinator,
                    adaptive_threshold=adaptive,
                    seed=s,
                    backend="serial",
                )
                assert result.cover == sync.cover, (
                    f"async/sync parity broken: {cell} W={workers}"
                )
                parity_checked += 1
                steps.append(result.diagnostics["logical_steps"])
                covers.append(float(result.cover_size))
                max_words.append(float(result.max_message_words))
            agg_steps = aggregate(steps)
            agg_cover = aggregate(covers)
            steps_by_cell.setdefault(cell, {})[workers] = agg_steps.mean
            cover_by_cell.setdefault(cell, {})[workers] = agg_cover.mean
            rows.append(
                [
                    workers,
                    coordinator,
                    mode,
                    str(agg_cover),
                    f"{aggregate(max_words).mean:.0f}",
                    str(agg_steps),
                ]
            )
            marker = ("T" if adaptive else "t") if coordinator == "tree" \
                else ("C" if adaptive else "c")
            points.append(
                (f"{marker}{workers}", float(workers), agg_steps.mean)
            )

    chart = render_scatter(
        points,
        x_label="W (shards)",
        y_label="logical steps to completion (mean)",
        title=(
            "merge critical path (c/C=chain, t/T=tree; upper=adaptive; "
            "digit=W):"
        ),
    )

    w_hi = max(worker_values)
    chain_steps = steps_by_cell["chain/fixed"][w_hi]
    tree_steps = steps_by_cell["tree/fixed"][w_hi]
    speedup = chain_steps / tree_steps if tree_steps else 0.0
    fixed_blowup = (
        cover_by_cell["tree/fixed"][w_hi]
        / cover_by_cell["chain/fixed"][w_hi]
        if cover_by_cell["chain/fixed"][w_hi]
        else 0.0
    )
    adaptive_blowup = (
        cover_by_cell["tree/adaptive"][w_hi]
        / cover_by_cell["chain/fixed"][w_hi]
        if cover_by_cell["chain/fixed"][w_hi]
        else 0.0
    )
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=[
            "W",
            "coordinator",
            "tau",
            "cover size",
            "max message words",
            "critical-path steps",
        ],
        rows=rows,
        extra_text=chart,
        findings={
            "tree_speedup_at_Whi": speedup,
            "tree_fixed_cover_blowup_at_Whi": fixed_blowup,
            "tree_adaptive_cover_blowup_at_Whi": adaptive_blowup,
            "parity_runs_checked": float(parity_checked),
        },
        notes=[
            "chain and tree move the same W-1 messages; only the "
            "dependency structure differs, so the logical-step gap is "
            "pure critical path",
            f"at W={w_hi} the tree completes {speedup:.1f}× faster on "
            f"the logical clock; its fixed-τ cover is "
            f"{fixed_blowup:.1f}× the chain's (blind leaves duplicate "
            f"coverage) while adaptive τ holds the blowup to "
            f"{adaptive_blowup:.1f}×",
            "every async run's cover is identical to its synchronous "
            "twin — the delivery schedule is operational, never semantic",
        ],
    )
