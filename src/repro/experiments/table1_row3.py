"""Experiment ``table1-row3``: Algorithm 2 (Theorem 4).

Paper claim (Table 1 row 3 / Theorem 4): for α = Ω̃(√n), a one-pass
algorithm with expected approximation O(α·log m) and space Õ(m·n/α²)
in adversarial order.

Sweep α at fixed (n, m): the level-map component of the state should
shrink like α⁻² (fitted exponent ≈ −2) while the cover grows roughly
linearly in α.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.metrics import aggregate, fit_power_law
from repro.core.adversarial import LowSpaceAdversarialAlgorithm
from repro.experiments.base import ExperimentReport
from repro.generators.planted import planted_partition_instance
from repro.streaming.orders import RoundRobinInterleaveOrder
from repro.streaming.stream import ReplayableStream
from repro.types import make_rng

EXPERIMENT_ID = "table1-row3"
TITLE = "Algorithm 2: α-approx with Õ(m·n/α²) space, adversarial order"
PAPER_CLAIM = (
    "Theorem 4: for α = Ω̃(√n), expected approximation O(α·log m) using "
    "space Õ(m·n/α²)"
)


def run(quick: bool = True, seed: int = 0) -> ExperimentReport:
    rng = make_rng(seed)
    replications = 3 if quick else 8

    n = 256 if quick else 1024
    m = 4096 if quick else 16384
    sqrt_n = math.sqrt(n)
    multipliers = [1, 2, 4] if quick else [1, 2, 4, 8, 16]
    alphas = [mult * 2 * sqrt_n for mult in multipliers]

    rows: List[List[object]] = []
    level_means: List[float] = []
    cover_means: List[float] = []

    for alpha in alphas:
        level_peaks, covers, peaks = [], [], []
        for _ in range(replications):
            s = rng.getrandbits(63)
            planted = planted_partition_instance(
                n, m, opt_size=16, seed=s
            )
            stream = ReplayableStream(
                planted.instance, RoundRobinInterleaveOrder(seed=s)
            )
            algo = LowSpaceAdversarialAlgorithm(alpha=alpha, seed=s)
            result = algo.run(stream.fresh())
            result.verify(planted.instance)
            level_peaks.append(
                max(1.0, result.diagnostics["level_map_peak"])
            )
            covers.append(float(result.cover_size))
            peaks.append(float(result.space.peak_words))
        level = aggregate(level_peaks)
        cover = aggregate(covers)
        level_means.append(level.mean)
        cover_means.append(cover.mean)
        rows.append(
            [
                f"{alpha:.0f}",
                f"{alpha / sqrt_n:.1f}·√n",
                str(level),
                str(aggregate(peaks)),
                str(cover),
            ]
        )

    level_exponent, _ = fit_power_law(alphas, level_means)
    cover_exponent, _ = fit_power_law(alphas, cover_means)
    predicted_level_1 = m * n / (alphas[0] ** 2)

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        headers=["alpha", "alpha/√n", "level-map peak", "total peak", "cover"],
        rows=rows,
        findings={
            "level_map_vs_alpha_exponent": level_exponent,  # theory: ~-2
            "cover_vs_alpha_exponent": cover_exponent,  # theory: ~+1
            "level_map_at_min_alpha": level_means[0],
            "mn_over_alpha2_at_min_alpha": predicted_level_1,
        },
        notes=[
            "the level map (sets promoted at least once) is the component "
            "Theorem 4 bounds by Õ(m·n/α²); exponent ~-2 confirms it",
            "cover grows ~linearly with α: the approximation/space tradeoff",
        ],
    )
